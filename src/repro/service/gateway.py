"""The partitioned serving gateway: scatter, gather, merge — exactly.

:class:`Gateway` is the front-end half of the multi-process serving
topology. It owns ``N`` executor worker processes
(:mod:`repro.service.executor`), each holding candidate-row partitions of
every distributed dataset with shard-local prepared state. Placement is
consistent-hash based (:class:`~repro.service.partition.HashRing` over
``"name/partition"`` keys with bounded load), so the partition → executor
map is deterministic and stable across gateway restarts.

A query scatters to the executors owning the dataset's partitions — one
pipe round trip per executor, issued concurrently — and the gateway
merges the per-partition results into the full answer:

* binary ``certain_label`` / ``check`` gather per-row **min/max tallies**
  (folded executor-side with the associative algebra of
  :func:`repro.core.shards.merge_minmax_block`), concatenate them across
  the disjoint row spans, and decide with the reference
  :func:`~repro.core.shards.binary_minmax_label` — bit-identical to the
  single-process MinMax path.
* every other flavor × kind gathers raw **similarity blocks** over each
  partition's stacked candidates; concatenation in partition order
  restores the exact global similarity matrix (each similarity depends
  only on its own candidate's features), and the gateway runs the very
  same scan decisions the in-process backends run.

Robustness is part of the contract, not an afterthought: every executor
request carries a timeout and a bounded retry budget; a dead or wedged
executor is SIGKILLed and respawned with its partitions re-prepared from
the gateway's authoritative copy, without touching in-flight requests on
surviving executors (per-executor locks, per-executor scatter threads). A
query that still cannot be served — or that races a redistribution
(stale fingerprint) — raises :class:`GatewayUnavailable`, which the
broker treats as "execute locally instead": partitioned serving degrades
to single-process serving, never to a wrong or dropped answer.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any

import numpy as np

from repro.core.batch_engine import _counts_from_scan
from repro.core.label_uncertainty import label_uncertain_counts
from repro.core.planner import (
    CPQuery,
    QueryPlan,
    QueryResult,
    _conditioned_weights,
    _counts_to_kind,
    _restricted_dataset,
    _weighted_to_kind,
)
from repro.core.scan import _scan_from_sims, candidate_index_arrays
from repro.core.shards import binary_minmax_label
from repro.core.topk_prob import topk_inclusion_counts
from repro.core.weighted import weighted_prediction_probabilities
from repro.obs import Observability
from repro.obs.tracing import trace_span
from repro.service.executor import executor_main
from repro.service.partition import (
    HashRing,
    RowPartition,
    merge_minmax_tallies,
    merge_sim_blocks,
    plan_row_partitions,
)
from repro.utils.validation import check_positive_int

__all__ = ["GatewayError", "GatewayUnavailable", "Gateway"]


class GatewayError(RuntimeError):
    """A partitioned execution failed in a way retries could not mask."""


class GatewayUnavailable(GatewayError):
    """The gateway cannot serve this query exactly right now.

    Raised on executor loss beyond the retry budget and on snapshot races
    (an executor's partitions are at a different dataset fingerprint than
    the query's). The broker's contract is to catch this and fall back to
    local single-process execution — same exact values, one process.
    """


class _ExecutorDown(RuntimeError):
    """Internal: one pipe round trip failed (dead/wedged executor)."""


class _ExecutorHandle:
    """The gateway-side state of one executor worker process."""

    __slots__ = (
        "executor_id",
        "process",
        "conn",
        "lock",
        "restarts",
        "requests",
        "errors",
        "latency_total_s",
        "last_latency_s",
        "last_seen",
    )

    def __init__(self, executor_id: int) -> None:
        self.executor_id = executor_id
        self.process = None
        self.conn = None
        self.lock = threading.RLock()
        self.restarts = -1  # first spawn brings it to 0
        self.requests = 0
        self.errors = 0
        self.latency_total_s = 0.0
        self.last_latency_s: float | None = None
        # Monotonic timestamp of the last proof of life (spawn, successful
        # round trip, or monitor observation); /healthz reports its age.
        self.last_seen: float | None = None


class _DistributedDataset:
    """The gateway's authoritative record of one distributed dataset.

    Keeps the candidate sets themselves (references, not copies) so a
    respawned executor's partitions can be re-prepared without consulting
    the registry.
    """

    __slots__ = ("name", "fingerprint", "partitions", "assignment", "candidate_sets")

    def __init__(
        self,
        name: str,
        fingerprint: str,
        partitions: tuple[RowPartition, ...],
        assignment: dict[int, int],
        candidate_sets: list[np.ndarray],
    ) -> None:
        self.name = name
        self.fingerprint = fingerprint
        self.partitions = partitions
        self.assignment = assignment
        self.candidate_sets = candidate_sets

    def specs_for(self, executor_id: int) -> list[dict]:
        """The ``register`` payload entries owned by ``executor_id``."""
        return [
            {
                "partition_id": partition.index,
                "row_start": partition.start,
                "candidate_sets": self.candidate_sets[partition.start : partition.stop],
            }
            for partition in self.partitions
            if self.assignment[partition.index] == executor_id
        ]


def _preferred_context():
    """Forkserver where available, spawn otherwise.

    Never plain ``fork``: respawns run at arbitrary times from
    request-handling threads (HTTP connection threads, the monitor), and
    forking a multithreaded parent can deadlock the child on locks held
    at fork time (malloc/BLAS/NumPy internals). ``forkserver`` forks from
    a dedicated single-threaded server process instead; preloading the
    executor module there pays the heavy imports once, not per respawn.
    """
    if "forkserver" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("forkserver")
        context.set_forkserver_preload(["repro.service.executor"])
        return context
    return multiprocessing.get_context("spawn")


class Gateway:
    """Partition-parallel query execution across executor worker processes.

    Parameters
    ----------
    n_executors:
        Worker processes to own (``>= 1``).
    partitions_per_executor:
        Target partitions per executor; a dataset is cut into
        ``n_executors * partitions_per_executor`` row spans (clamped to
        its row count). More than one per executor keeps the consistent
        placement balanced when membership changes.
    timeout_s:
        Per-request pipe timeout. A request that exceeds it marks the
        executor dead (it is killed and respawned).
    retries:
        Bounded retry budget per executor request *after* the first
        attempt; each retry respawns the executor first.
    monitor_interval_s:
        The health monitor's poll period: dead executors are respawned
        proactively, not just when a query trips over them. ``0``
        disables the monitor thread.
    obs:
        The :class:`~repro.obs.Observability` bundle the gateway reports
        into (shared with the broker/server by ``make_service``); a bare
        gateway creates its own.
    """

    def __init__(
        self,
        n_executors: int,
        partitions_per_executor: int = 2,
        timeout_s: float = 30.0,
        retries: int = 1,
        ring_replicas: int = 64,
        monitor_interval_s: float = 0.5,
        start: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.n_executors = check_positive_int(n_executors, "n_executors")
        self.partitions_per_executor = check_positive_int(
            partitions_per_executor, "partitions_per_executor"
        )
        if not timeout_s > 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.monitor_interval_s = float(monitor_interval_s)
        self._ctx = _preferred_context()
        self._ring = HashRing(range(self.n_executors), replicas=ring_replicas)
        self._handles = [_ExecutorHandle(i) for i in range(self.n_executors)]
        self._datasets: dict[str, _DistributedDataset] = {}
        self._datasets_lock = threading.Lock()
        self._dist_lock = threading.Lock()
        # Typed instruments replace the old _metrics_lock-guarded ints; the
        # legacy metrics() key set reads them back.
        self.obs = obs if obs is not None else Observability()
        m = self.obs.metrics
        self._c_queries = m.counter(
            "gateway_queries_total", help="queries executed partition-parallel"
        )
        self._c_scatters = m.counter("gateway_scatters_total")
        self._c_respawns = m.counter(
            "gateway_respawns_total", help="executor processes respawned"
        )
        self._c_stale = m.counter("gateway_stale_snapshots_total")
        self._c_unavailable = m.counter(
            "gateway_unavailable_total",
            help="queries abandoned to the local-planner fallback",
        )
        self._h_roundtrip = m.histogram(
            "gateway_roundtrip_seconds", help="one executor pipe round trip"
        )
        m.add_collector(self._collect_gauges)
        self._closed = False
        self._monitor_stop = threading.Event()
        self._monitor: threading.Thread | None = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every executor (idempotent) and the health monitor."""
        if self._closed:
            raise GatewayError("gateway is closed")
        for handle in self._handles:
            with handle.lock:
                if handle.process is None or not handle.process.is_alive():
                    self._respawn_locked(handle)
        if self.monitor_interval_s > 0 and self._monitor is None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="gateway-monitor", daemon=True
            )
            self._monitor.start()

    def _respawn_locked(self, handle: _ExecutorHandle) -> None:
        """(Re)spawn one executor; caller holds ``handle.lock``.

        Kills any previous incarnation, opens a fresh pipe, and re-prepares
        every partition the consistent placement assigns to this executor
        from the gateway's authoritative candidate sets. Only this
        executor's lock is held — queries on surviving executors keep
        flowing while the respawn runs.
        """
        self._kill_locked(handle)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=executor_main,
            args=(child_conn, handle.executor_id),
            name=f"repro-executor-{handle.executor_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.restarts += 1
        handle.last_seen = time.monotonic()
        if handle.restarts > 0:
            self._c_respawns.inc()
        with self._datasets_lock:
            distributed = list(self._datasets.values())
        for dist in distributed:
            specs = dist.specs_for(handle.executor_id)
            if specs:
                self._roundtrip_locked(
                    handle,
                    {
                        "op": "register",
                        "name": dist.name,
                        "fingerprint": dist.fingerprint,
                        "partitions": specs,
                    },
                )

    def _kill_locked(self, handle: _ExecutorHandle) -> None:
        """Tear down one executor's process and pipe; caller holds its lock."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5.0)
            handle.process = None

    def _monitor_loop(self) -> None:
        """Respawn dead executors proactively (detection without traffic)."""
        while not self._monitor_stop.wait(self.monitor_interval_s):
            for handle in self._handles:
                if self._closed:
                    return
                process = handle.process
                if process is not None and process.is_alive():
                    handle.last_seen = time.monotonic()
                if process is not None and not process.is_alive():
                    try:
                        with handle.lock:
                            if (
                                handle.process is not None
                                and not handle.process.is_alive()
                            ):
                                self._respawn_locked(handle)
                    except Exception:  # noqa: BLE001 — next query retries anyway
                        pass

    def close(self) -> None:
        """Shut every executor down. Idempotent; in-flight calls fail fast."""
        if self._closed:
            return
        self._closed = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for handle in self._handles:
            with handle.lock:
                if handle.conn is not None:
                    try:
                        handle.conn.send({"op": "shutdown"})
                    except (OSError, BrokenPipeError, ValueError):
                        pass
                self._kill_locked(handle)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _roundtrip_locked(self, handle: _ExecutorHandle, message: dict) -> dict:
        """One send/recv on the executor's pipe; caller holds its lock."""
        handle.requests += 1
        started = time.perf_counter()
        try:
            handle.conn.send(message)
            if not handle.conn.poll(self.timeout_s):
                raise _ExecutorDown(
                    f"executor {handle.executor_id} timed out after {self.timeout_s}s"
                )
            reply = handle.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            handle.errors += 1
            raise _ExecutorDown(
                f"executor {handle.executor_id} pipe failed: {exc}"
            ) from exc
        except _ExecutorDown:
            handle.errors += 1
            raise
        elapsed = time.perf_counter() - started
        handle.last_latency_s = elapsed
        handle.latency_total_s += elapsed
        handle.last_seen = time.monotonic()
        self._h_roundtrip.observe(elapsed)
        return reply

    def _call(self, handle: _ExecutorHandle, message: dict) -> dict:
        """A request with bounded retry; failures respawn the executor."""
        if self._closed:
            raise GatewayUnavailable("gateway is closed")
        last_error: Exception | None = None
        for _ in range(self.retries + 1):
            with handle.lock:
                try:
                    if handle.process is None or not handle.process.is_alive():
                        self._respawn_locked(handle)
                    reply = self._roundtrip_locked(handle, message)
                except _ExecutorDown as exc:
                    last_error = exc
                    # A wedged-but-alive executor still owes this request its
                    # reply; reusing the pipe would read that stale reply as
                    # the answer to a *later* request. Kill under the lock so
                    # every subsequent attempt respawns with a fresh pipe.
                    self._kill_locked(handle)
                    continue
            if reply.get("ok"):
                return reply
            if reply.get("stale"):
                self._c_stale.inc()
                raise GatewayUnavailable(
                    f"stale snapshot on executor {handle.executor_id}: "
                    f"{reply.get('error')}"
                )
            raise GatewayError(
                f"executor {handle.executor_id} failed: {reply.get('error')}"
            )
        self._c_unavailable.inc()
        raise GatewayUnavailable(
            f"executor {handle.executor_id} unavailable after "
            f"{self.retries + 1} attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------
    def ensure_distributed(
        self, name: str, dataset, fingerprint: str | None = None
    ) -> _DistributedDataset:
        """Distribute ``dataset`` under ``name`` if not already at this
        fingerprint; returns the (re)used distribution record."""
        if fingerprint is None:
            fingerprint = dataset.fingerprint()
        with self._datasets_lock:
            dist = self._datasets.get(name)
        if dist is not None and dist.fingerprint == fingerprint:
            return dist
        with self._dist_lock:
            with self._datasets_lock:
                dist = self._datasets.get(name)
            if dist is not None and dist.fingerprint == fingerprint:
                return dist
            return self._distribute(name, dataset, fingerprint)

    def _distribute(
        self, name: str, dataset, fingerprint: str
    ) -> _DistributedDataset:
        """Partition, place, and push one dataset; holds ``_dist_lock``."""
        candidate_sets = [dataset.candidates(row) for row in range(dataset.n_rows)]
        partitions = plan_row_partitions(
            dataset.n_rows, self.n_executors * self.partitions_per_executor
        )
        placement = self._ring.assign(
            [f"{name}/{partition.index}" for partition in partitions]
        )
        assignment = {
            partition.index: placement[f"{name}/{partition.index}"]
            for partition in partitions
        }
        dist = _DistributedDataset(
            name, fingerprint, partitions, assignment, candidate_sets
        )
        for handle in self._handles:
            specs = dist.specs_for(handle.executor_id)
            if specs:
                self._call(
                    handle,
                    {
                        "op": "register",
                        "name": name,
                        "fingerprint": fingerprint,
                        "partitions": specs,
                    },
                )
        # Commit only after every executor accepted its partitions: a push
        # that dies mid-way must not leave a record claiming the dataset is
        # distributed (queries would scatter into "not prepared" replies).
        # Respawn re-registration reads from committed records only, so a
        # respawn during the push simply retries this register afterwards.
        with self._datasets_lock:
            self._datasets[name] = dist
        return dist

    def drop(self, name: str) -> None:
        """Forget ``name`` everywhere (registry removal hook)."""
        with self._datasets_lock:
            dist = self._datasets.pop(name, None)
        if dist is None:
            return
        for handle in self._handles:
            try:
                self._call(handle, {"op": "drop", "name": name})
            except GatewayError:
                pass  # a dead executor forgets by dying

    # ------------------------------------------------------------------
    # Scatter/gather
    # ------------------------------------------------------------------
    def _scatter(
        self, dist: _DistributedDataset, op: str, payload: dict
    ) -> list[Any]:
        """Issue ``op`` to every executor owning a partition of ``dist``,
        concurrently, and return per-partition results in partition order."""
        self._c_scatters.inc()
        groups: dict[int, list[int]] = {}
        for partition in dist.partitions:
            groups.setdefault(dist.assignment[partition.index], []).append(
                partition.index
            )
        results: dict[int, Any] = {}
        failures: list[Exception] = []
        gather_lock = threading.Lock()
        # Gather threads attach their spans to the scatter span explicitly:
        # thread-local propagation does not cross threading.Thread.
        scatter_span = trace_span(
            "gateway.scatter",
            op=op,
            dataset=dist.name,
            partitions_scattered=len(dist.partitions),
            n_executors=len(groups),
        )

        def gather(executor_id: int, partition_ids: list[int]) -> None:
            message = {
                "op": op,
                "name": dist.name,
                "fingerprint": dist.fingerprint,
                "partition_ids": partition_ids,
                "trace": bool(scatter_span),
                **payload,
            }
            with trace_span(
                "gateway.gather",
                parent=scatter_span,
                executor=executor_id,
                n_partitions=len(partition_ids),
            ) as gspan:
                try:
                    reply = self._call(self._handles[executor_id], message)
                except Exception as exc:  # noqa: BLE001 — re-raised below
                    with gather_lock:
                        failures.append(exc)
                    return
                # Executor-side timings crossed the pipe as plain records;
                # grafting them here renders the distributed execution as
                # one tree.
                for record in reply.get("spans") or ():
                    gspan.adopt(record)
            with gather_lock:
                results.update(reply["partitions"])

        with scatter_span:
            items = sorted(groups.items())
            threads = [
                threading.Thread(target=gather, args=item, daemon=True)
                for item in items[1:]
            ]
            for thread in threads:
                thread.start()
            gather(*items[0])  # run one group on the calling thread
            for thread in threads:
                thread.join()
            scatter_span.set(failures=len(failures))
        if failures:
            for failure in failures:
                if isinstance(failure, GatewayUnavailable):
                    raise failure
            raise failures[0]
        return [results[partition.index] for partition in dist.partitions]

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute_query(
        self, name: str, query: CPQuery, fingerprint: str | None = None
    ) -> QueryResult:
        """Execute ``query`` partition-parallel; bit-identical to local.

        ``query.dataset`` is the authoritative content; it is distributed
        (or re-distributed, if its fingerprint moved) on first use. Raises
        :class:`GatewayUnavailable` when partitioned execution cannot
        proceed — the caller's cue to execute locally instead.
        """
        if self._closed:
            raise GatewayUnavailable("gateway is closed")
        dist = self.ensure_distributed(name, query.dataset, fingerprint)
        self._c_queries.inc()
        with trace_span(
            "gateway.execute",
            dataset=name,
            flavor=query.flavor,
            kind=query.kind,
            n_points=query.n_points,
            n_partitions=len(dist.partitions),
        ) as span:
            if query.flavor == "binary" and query.kind in ("certain_label", "check"):
                values, mode = self._execute_minmax(dist, query), "minmax"
            else:
                values, mode = self._execute_scan(dist, query), "scan"
            span.set(merge_mode=mode)
        n_owning = len({dist.assignment[p.index] for p in dist.partitions})
        plan = QueryPlan(
            backend="gateway",
            reason=(
                f"scatter-gathered over {len(dist.partitions)} partitions "
                f"on {n_owning} executors ({mode} merge)"
            ),
            cost=0.0,
        )
        stats = {
            "gateway": True,
            "merge_mode": mode,
            "n_partitions": len(dist.partitions),
            "n_executors": self.n_executors,
            "n_points": query.n_points,
        }
        return QueryResult(query=query, plan=plan, values=values, stats=stats)

    def _execute_minmax(
        self, dist: _DistributedDataset, query: CPQuery
    ) -> list:
        """Binary Q1 via gathered per-row min/max tallies (pins pre-applied)."""
        tallies = self._scatter(
            dist,
            "minmax",
            {
                "test_X": query.test_X,
                "kernel": query.kernel,
                "pins": query.pins_dict(),
            },
        )
        lo, hi = merge_minmax_tallies(tallies)
        labels = query.dataset.labels
        if lo.shape[1] != labels.shape[0]:
            raise GatewayError(
                f"merged tallies cover {lo.shape[1]} rows, dataset has "
                f"{labels.shape[0]}"
            )
        decisions = [
            binary_minmax_label(lo[index], hi[index], labels, query.k)
            for index in range(query.n_points)
        ]
        if query.kind == "certain_label":
            return decisions
        return [label == query.label for label in decisions]

    def _execute_scan(self, dist: _DistributedDataset, query: CPQuery) -> list:
        """Every other flavor × kind: gather similarity blocks, merge, scan.

        Mirrors :class:`~repro.core.shards.ShardedBackend`'s flavor
        dispatch: same scan construction, same per-point evaluators, same
        kind conversions — only the similarity matrix arrives partition by
        partition instead of being computed here.
        """
        flavor = query.flavor
        pins = query.pins_dict()
        restricted = None
        if flavor in ("binary", "multiclass", "weighted"):
            scan_dataset = query.dataset
            restrict = None
        elif flavor == "topk":
            restricted = _restricted_dataset(query)
            scan_dataset = restricted
            restrict = pins or None
        else:  # label_uncertainty
            restricted = _restricted_dataset(query)
            scan_dataset = restricted.feature_dataset
            restrict = pins or None
        sims = merge_sim_blocks(
            self._scatter(
                dist,
                "sims",
                {"test_X": query.test_X, "kernel": query.kernel, "restrict": restrict},
            )
        )
        rows, cands, counts = candidate_index_arrays(scan_dataset)
        if sims.shape[1] != rows.shape[0]:
            raise GatewayError(
                f"merged similarity blocks cover {sims.shape[1]} candidates, "
                f"the scan layout expects {rows.shape[0]}"
            )
        labels = scan_dataset.labels
        scans = (
            _scan_from_sims(sims[index], rows, cands, labels, counts)
            for index in range(query.n_points)
        )
        if flavor in ("binary", "multiclass"):
            n_labels = query.dataset.n_labels
            per_point = [
                _counts_from_scan(scan, query.k, n_labels, pins) for scan in scans
            ]
            return _counts_to_kind(query, per_point)
        if flavor == "weighted":
            weights = _conditioned_weights(query)
            probs = [
                weighted_prediction_probabilities(
                    query.dataset,
                    query.test_X[index],
                    k=query.k,
                    weights=weights,
                    kernel=query.kernel,
                    scan=scan,
                )
                for index, scan in enumerate(scans)
            ]
            return _weighted_to_kind(query, probs)
        if flavor == "topk":
            return [
                topk_inclusion_counts(
                    restricted,
                    query.test_X[index],
                    k=query.k,
                    kernel=query.kernel,
                    scan=scan,
                )
                for index, scan in enumerate(scans)
            ]
        per_point = [
            label_uncertain_counts(
                restricted,
                query.test_X[index],
                k=query.k,
                kernel=query.kernel,
                scan=scan,
            )
            for index, scan in enumerate(scans)
        ]
        return _counts_to_kind(query, per_point)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def ping(self) -> list[dict]:
        """One health round trip per executor (respawning dead ones)."""
        return [
            self._call(handle, {"op": "ping"}) for handle in self._handles
        ]

    def describe_dataset(self, name: str) -> dict | None:
        """The partition layout of ``name`` (for registry entries), if any."""
        with self._datasets_lock:
            dist = self._datasets.get(name)
        if dist is None:
            return None
        return {
            "fingerprint": dist.fingerprint,
            "n_partitions": len(dist.partitions),
            "partitions": [
                {
                    "partition": partition.index,
                    "rows": [partition.start, partition.stop],
                    "executor": dist.assignment[partition.index],
                }
                for partition in dist.partitions
            ],
        }

    def metrics(self) -> dict:
        """Per-executor health/latency/partition counters for ``/metrics``."""
        with self._datasets_lock:
            distributed = list(self._datasets.values())
        owned: dict[int, int] = {
            handle.executor_id: 0 for handle in self._handles
        }
        for dist in distributed:
            for partition in dist.partitions:
                owned[dist.assignment[partition.index]] += 1
        executors = {}
        for handle in self._handles:
            process = handle.process
            requests = handle.requests
            executors[str(handle.executor_id)] = {
                "pid": process.pid if process is not None else None,
                "alive": bool(process is not None and process.is_alive()),
                "restarts": max(handle.restarts, 0),
                "requests": requests,
                "errors": handle.errors,
                "partitions": owned[handle.executor_id],
                "last_latency_s": handle.last_latency_s,
                "avg_latency_s": (
                    handle.latency_total_s / requests if requests else None
                ),
            }
        totals = {
            "queries": self._c_queries.value,
            "scatters": self._c_scatters.value,
            "respawns": self._c_respawns.value,
            "stale_snapshots": self._c_stale.value,
            "unavailable": self._c_unavailable.value,
        }
        return {
            "n_executors": self.n_executors,
            "partitions_per_executor": self.partitions_per_executor,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            **totals,
            "executors": executors,
            "datasets": {
                dist.name: {
                    "fingerprint": dist.fingerprint,
                    "n_partitions": len(dist.partitions),
                }
                for dist in distributed
            },
        }

    def health(self) -> dict:
        """Per-executor readiness for ``/healthz``.

        ``status`` is ``"ok"`` only while every executor process is
        alive; a dead executor awaiting respawn degrades the whole
        gateway (the broker still serves exactly via local fallback, but
        an operator or load balancer should know capacity is reduced).
        """
        now = time.monotonic()
        executors = []
        degraded = False
        for handle in self._handles:
            process = handle.process
            alive = bool(process is not None and process.is_alive())
            if not alive:
                degraded = True
            executors.append(
                {
                    "executor_id": handle.executor_id,
                    "pid": process.pid if process is not None else None,
                    "alive": alive,
                    "restarts": max(handle.restarts, 0),
                    "last_heartbeat_age_s": (
                        now - handle.last_seen
                        if handle.last_seen is not None
                        else None
                    ),
                }
            )
        return {
            "status": "degraded" if degraded else "ok",
            "n_executors": self.n_executors,
            "executors": executors,
        }

    def _collect_gauges(self, metrics) -> None:
        """Metrics collector: executor liveness levels at snapshot time."""
        alive = sum(
            1
            for handle in self._handles
            if handle.process is not None and handle.process.is_alive()
        )
        metrics.gauge(
            "gateway_executors_alive", help="live executor processes"
        ).set(alive)
        metrics.gauge("gateway_executors_total").set(self.n_executors)

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
