"""repro.service — the concurrent CP query service.

The serving layer above the unified planner: long-lived, concurrent, and
warm. Where every other entry point in the repo prepares a dataset's
distance state, answers one call, and throws the state away, the service
keeps it pinned across requests and callers:

* :mod:`repro.service.registry` — named datasets with warm
  ``PreparedBatch`` / cleaning-session state
  (:class:`DatasetRegistry`, :class:`DatasetEntry`);
* :mod:`repro.service.broker` — :class:`QueryBroker`: admission
  control, micro-batching of concurrent single-point queries into
  planner batch calls, and a TTL'd fingerprint-keyed result cache
  (:class:`TTLResultCache`);
* :mod:`repro.service.http` — the threaded stdlib JSON API
  (``/datasets``, ``/query``, ``/sql``, ``/clean/step``, ``/healthz``,
  ``/metrics``), started by ``repro serve`` or :func:`make_service`;
* :mod:`repro.service.client` — :class:`ServiceClient`, the stdlib
  Python client with exact (bit-identical) value round-tripping;
* :mod:`repro.service.wire` — the JSON wire format both ends share;
* every layer reports into one shared :class:`repro.obs.Observability`
  bundle — typed metrics (``/metrics``, also Prometheus text) and
  request span trees (``/debug/traces``, ``explain="trace"``);
* :mod:`repro.service.gateway` / :mod:`repro.service.executor` /
  :mod:`repro.service.partition` — the partitioned multi-process
  topology (``repro serve --executors N``): a :class:`Gateway` that
  consistent-hash-places candidate-row partitions on executor worker
  processes and scatter-gathers per-partition tallies into bit-identical
  answers, respawning dead executors automatically.

Quickstart (in one process; see ``examples/service_quickstart.py``)::

    from repro.service import DatasetRegistry, ServiceClient, make_service

    registry = DatasetRegistry()
    registry.register_recipe("supreme", n_train=60, n_val=8, seed=0)
    server = make_service(registry)          # ephemeral port, background thread
    client = ServiceClient(server.url)
    counts = client.query("supreme", points="validation")["values"]
    server.close()
"""

from repro.service.broker import AdmissionError, QueryBroker, TTLResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import Gateway, GatewayError, GatewayUnavailable
from repro.service.http import ServiceServer, make_service, serve
from repro.service.partition import HashRing, RowPartition, plan_row_partitions
from repro.service.registry import (
    CoddTableEntry,
    DatasetEntry,
    DatasetRegistry,
    DuplicateDatasetError,
    RegistryError,
    UnknownDatasetError,
)

__all__ = [
    "DatasetRegistry",
    "DatasetEntry",
    "CoddTableEntry",
    "RegistryError",
    "DuplicateDatasetError",
    "UnknownDatasetError",
    "QueryBroker",
    "TTLResultCache",
    "AdmissionError",
    "ServiceServer",
    "make_service",
    "serve",
    "ServiceClient",
    "ServiceError",
    "Gateway",
    "GatewayError",
    "GatewayUnavailable",
    "HashRing",
    "RowPartition",
    "plan_row_partitions",
]
