"""Candidate-row partitioning and consistent-hash placement for the gateway.

The partitioned serving topology (:mod:`repro.service.gateway`) splits a
dataset's *rows* — and with them their candidate sets — across executor
processes. This module is the layout layer underneath it:

* :func:`plan_row_partitions` cuts ``n_rows`` into contiguous, balanced
  :class:`RowPartition` spans. Contiguity is what makes the merge at the
  gateway exact: concatenating per-partition results in partition order
  restores the global stacked-candidate order bit for bit (the kernels
  compute every candidate's similarity from that candidate's features
  alone, so slicing rows never changes a value — the same argument
  ``core.shards`` makes for candidate tiles).
* :class:`HashRing` is a consistent-hash ring (hashlib-backed — Python's
  ``hash()`` is salted per process and useless for stable placement) with
  virtual nodes, plus a *bounded-load* assignment: each partition goes to
  the live node owning its hash point, skipping nodes already at capacity
  ``ceil(n_keys / n_nodes)``. Placement is deterministic across gateway
  restarts and moves only the dead node's partitions when membership
  changes, while staying balanced enough that one executor can never own
  more than its fair share (which the ≥2x throughput bar depends on).
* :func:`merge_minmax_tallies` / :func:`merge_sim_blocks` are the
  gather-side merges, both thin and both lossless: tallies concatenate
  per-row extremes of disjoint row spans (the per-span extremes were
  folded with the associative min/max algebra of
  :func:`repro.core.shards.merge_minmax_block`); similarity blocks
  concatenate disjoint stacked-candidate spans.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "RowPartition",
    "plan_row_partitions",
    "HashRing",
    "merge_minmax_tallies",
    "merge_sim_blocks",
]


@dataclass(frozen=True)
class RowPartition:
    """One contiguous span of dataset rows owned by a single executor."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"partition index must be >= 0, got {self.index}")
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"partition span [{self.start}, {self.stop}) must be non-empty"
            )

    @property
    def n_rows(self) -> int:
        return self.stop - self.start


def plan_row_partitions(n_rows: int, n_partitions: int) -> tuple[RowPartition, ...]:
    """Cut ``n_rows`` into at most ``n_partitions`` contiguous balanced spans.

    Sizes differ by at most one row (the first ``n_rows % n_partitions``
    spans take the extra); more partitions than rows collapse to one span
    per row, so every returned partition is non-empty. The spans cover
    ``[0, n_rows)`` exactly, in order — the contract the gateway's
    concatenation merge relies on.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    n_partitions = min(check_positive_int(n_partitions, "n_partitions"), n_rows)
    base, extra = divmod(n_rows, n_partitions)
    partitions = []
    start = 0
    for index in range(n_partitions):
        size = base + (1 if index < extra else 0)
        partitions.append(RowPartition(index=index, start=start, stop=start + size))
        start += size
    return tuple(partitions)


def _hash_point(token: str) -> int:
    """A stable 64-bit ring position for ``token`` (md5; never ``hash()``)."""
    return int.from_bytes(hashlib.md5(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over executor ids, with virtual nodes.

    ``replicas`` virtual points per node smooth the arc lengths; lookups
    walk clockwise from the key's hash point. :meth:`assign` adds the
    bounded-load rule (skip nodes at capacity), which keeps the placement
    both consistent — removing a node only re-homes keys it owned — and
    balanced — no node exceeds ``ceil(n_keys / n_nodes)`` assignments.
    """

    def __init__(self, nodes: Sequence[int | str], replicas: int = 64) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate nodes in {nodes!r}")
        self.replicas = check_positive_int(replicas, "replicas")
        self.nodes = tuple(nodes)
        points = []
        for node in nodes:
            for replica in range(self.replicas):
                points.append((_hash_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: str) -> int | str:
        """The node owning ``key``'s hash point (clockwise successor)."""
        where = bisect.bisect_right(self._points, _hash_point(key))
        return self._owners[where % len(self._owners)]

    def preference(self, key: str) -> list[int | str]:
        """Every node, ordered by the clockwise walk from ``key``'s point.

        The first entry is :meth:`node_for`; later entries are the
        fallbacks :meth:`assign` spills to when earlier ones are full.
        """
        where = bisect.bisect_right(self._points, _hash_point(key))
        seen: list[int | str] = []
        for step in range(len(self._owners)):
            node = self._owners[(where + step) % len(self._owners)]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return seen

    def assign(self, keys: Iterable[str]) -> dict[str, int | str]:
        """Bounded-load consistent assignment of every key to a node."""
        keys = list(keys)
        capacity = -(-len(keys) // len(self.nodes)) if keys else 0
        loads: dict[int | str, int] = {node: 0 for node in self.nodes}
        assignment: dict[str, int | str] = {}
        for key in keys:
            for node in self.preference(key):
                if loads[node] < capacity:
                    assignment[key] = node
                    loads[node] += 1
                    break
        return assignment


def merge_minmax_tallies(
    tallies: Sequence[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-partition ``(mins, maxs)`` tallies into full-width tallies.

    Each entry covers one partition's row span ``(n_points,
    partition.n_rows)``; entries must arrive in partition order. Spans are
    disjoint, so the merge is plain concatenation — the per-row extremes
    themselves were already folded exactly (associative min/max) inside
    each executor.
    """
    if not tallies:
        raise ValueError("no tallies to merge")
    mins = np.concatenate([lo for lo, _ in tallies], axis=1)
    maxs = np.concatenate([hi for _, hi in tallies], axis=1)
    return mins, maxs


def merge_sim_blocks(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Merge per-partition similarity blocks into the full ``(T, P)`` matrix.

    Blocks cover disjoint, contiguous stacked-candidate spans in partition
    order, so horizontal concatenation restores the exact global stacked
    order — every similarity is the very float the single-process kernel
    call would have produced for that candidate.
    """
    if not blocks:
        raise ValueError("no similarity blocks to merge")
    return np.concatenate(blocks, axis=1)
