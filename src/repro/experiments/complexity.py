"""Empirical complexity verification — regenerates the paper's Figure 4 table.

Figure 4 summarises the asymptotics: SS answers Q1/Q2 in
``O(NM log NM)`` (K=1, binary), MM answers Q1 in ``O(NM)``, and general SS
in ``O(NM (log NM + K^2 log N))``. This harness measures wall-clock times
over sweeps of ``N``, ``M`` and ``K`` and fits the growth exponent, so the
"polynomial over exponentially many worlds" claim is checked empirically
(the brute-force column demonstrates the exponential blow-up it avoids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.engine import sortscan_counts
from repro.core.minmax import minmax_checks_all
from repro.core.multiclass import sortscan_counts_multiclass
from repro.core.sortscan import sortscan_counts_naive
from repro.core.sortscan_tree import sortscan_counts_tree
from repro.utils.rng import ensure_rng
from repro.utils.timing import time_callable

__all__ = ["ComplexityPoint", "random_instance", "measure_runtime", "fit_growth_exponent", "ALGORITHMS"]

ALGORITHMS = {
    "ss-engine": sortscan_counts,
    "ss-naive": sortscan_counts_naive,
    "ss-tree": sortscan_counts_tree,
    "ss-multiclass": sortscan_counts_multiclass,
    "bruteforce": brute_force_counts,
}


@dataclass(frozen=True)
class ComplexityPoint:
    """One measured (instance size, runtime) pair."""

    algorithm: str
    n_rows: int
    m_candidates: int
    k: int
    n_labels: int
    seconds: float


def random_instance(
    n_rows: int,
    m_candidates: int,
    n_labels: int = 2,
    n_features: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> tuple[IncompleteDataset, np.ndarray]:
    """A random dense incomplete dataset and test point for timing runs."""
    rng = ensure_rng(seed)
    sets = [rng.normal(size=(m_candidates, n_features)) for _ in range(n_rows)]
    labels = rng.integers(0, n_labels, size=n_rows)
    labels[:n_labels] = np.arange(n_labels)  # every label occurs
    return IncompleteDataset(sets, labels), rng.normal(size=n_features)


def measure_runtime(
    algorithm: str,
    n_rows: int,
    m_candidates: int,
    k: int = 3,
    n_labels: int = 2,
    repeats: int = 3,
    seed: int = 0,
) -> ComplexityPoint:
    """Best-of-``repeats`` wall-clock time of one algorithm on one instance."""
    if algorithm == "minmax":
        dataset, t = random_instance(n_rows, m_candidates, n_labels=n_labels, seed=seed)
        seconds = time_callable(lambda: minmax_checks_all(dataset, t, k=k), repeats=repeats)
    else:
        try:
            func = ALGORITHMS[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; available: "
                f"{sorted([*ALGORITHMS, 'minmax'])}"
            ) from None
        dataset, t = random_instance(n_rows, m_candidates, n_labels=n_labels, seed=seed)
        seconds = time_callable(lambda: func(dataset, t, k=k), repeats=repeats)
    return ComplexityPoint(
        algorithm=algorithm,
        n_rows=n_rows,
        m_candidates=m_candidates,
        k=k,
        n_labels=n_labels,
        seconds=seconds,
    )


def fit_growth_exponent(sizes: list[int], seconds: list[float]) -> float:
    """Least-squares slope of log(time) vs log(size).

    ~1.0 for the linear-in-N algorithms (MM, SS fast engine at fixed K),
    ~2.0 for the naive per-candidate-DP SortScan.
    """
    if len(sizes) != len(seconds) or len(sizes) < 2:
        raise ValueError("need at least two (size, time) pairs with equal lengths")
    x = np.log(np.asarray(sizes, dtype=np.float64))
    y = np.log(np.maximum(np.asarray(seconds, dtype=np.float64), 1e-9))
    slope, _intercept = np.polyfit(x, y, 1)
    return float(slope)
