"""Cleaning-progress curves — regenerate Figures 9 and 10.

Figure 9 traces, as cleaning proceeds, (a) the fraction of validation
examples CP'ed and (b) the fraction of the test-accuracy gap closed, for
CPClean vs RandomClean. Figure 10 varies the validation-set size and
reports the final gap closed and cleaning effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cleaning.cp_clean import CPCleanStrategy
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.random_clean import RandomCleanStrategy
from repro.cleaning.sequential import CleaningSession
from repro.core.knn import KNNClassifier
from repro.data.task import CleaningTask, build_cleaning_task
from repro.experiments.metrics import gap_closed
from repro.utils.rng import spawn_rngs

__all__ = ["CleaningCurve", "trace_cleaning_curve", "average_random_curves", "ValSizeResult", "sweep_validation_size"]


@dataclass
class CleaningCurve:
    """Per-step progress of one cleaning run (Figure 9's two lines).

    Entry ``i`` of each list describes the state after cleaning ``i``
    examples (entry 0 = no cleaning yet).
    """

    strategy: str
    dataset: str
    fraction_cleaned: list[float] = field(default_factory=list)
    cp_fraction: list[float] = field(default_factory=list)
    gap_closed: list[float] = field(default_factory=list)
    n_dirty: int = 0


def _representative_accuracy(task: CleaningTask, fixed: dict[int, int]) -> float:
    choice = task.default_choice.copy()
    for row, cand in fixed.items():
        choice[row] = cand
    world = task.incomplete.world([int(c) for c in choice])
    clf = KNNClassifier(k=task.k).fit(world, task.train_labels)
    return clf.accuracy(task.test_X, task.test_y)


def trace_cleaning_curve(
    task: CleaningTask,
    strategy: str = "cpclean",
    seed: int | np.random.Generator | None = None,
    max_cleaned: int | None = None,
) -> CleaningCurve:
    """Run one cleaning session, recording CP'ed fraction and gap closed per step."""
    gt_acc = KNNClassifier(k=task.k).fit(task.train_gt_X, task.train_labels).accuracy(
        task.test_X, task.test_y
    )
    default_acc = KNNClassifier(k=task.k).fit(
        task.train_default_X, task.train_labels
    ).accuracy(task.test_X, task.test_y)

    session = CleaningSession(task.incomplete, task.val_X, k=task.k)
    oracle = GroundTruthOracle(task.gt_choice)
    if strategy == "cpclean":
        selector = CPCleanStrategy()
    elif strategy == "random":
        selector = RandomCleanStrategy(seed=seed)
    else:
        raise ValueError(f"strategy must be 'cpclean' or 'random', got {strategy!r}")

    n_dirty = max(len(task.dirty_rows), 1)
    curve = CleaningCurve(strategy=strategy, dataset=task.name, n_dirty=n_dirty)
    curve.fraction_cleaned.append(0.0)
    curve.cp_fraction.append(session.cp_fraction())
    curve.gap_closed.append(
        gap_closed(_representative_accuracy(task, {}), default_acc, gt_acc)
    )

    def record(step) -> None:
        curve.fraction_cleaned.append((step.iteration + 1) / n_dirty)
        curve.cp_fraction.append(session.cp_fraction())
        curve.gap_closed.append(
            gap_closed(
                _representative_accuracy(task, session.fixed), default_acc, gt_acc
            )
        )

    session.run(selector, oracle, max_cleaned=max_cleaned, on_step=record)
    return curve


def average_random_curves(
    task: CleaningTask,
    n_runs: int = 3,
    seed: int | np.random.Generator | None = 0,
    max_cleaned: int | None = None,
) -> CleaningCurve:
    """RandomClean averaged over ``n_runs`` orders (the paper averages 20).

    Runs can stop at different lengths; shorter runs are right-padded with
    their final value before averaging.
    """
    curves = [
        trace_cleaning_curve(task, strategy="random", seed=rng, max_cleaned=max_cleaned)
        for rng in spawn_rngs(seed, n_runs)
    ]
    length = max(len(c.cp_fraction) for c in curves)

    def padded(values: list[float]) -> np.ndarray:
        return np.array(values + [values[-1]] * (length - len(values)))

    merged = CleaningCurve(strategy="random", dataset=task.name, n_dirty=curves[0].n_dirty)
    merged.fraction_cleaned = [i / max(curves[0].n_dirty, 1) for i in range(length)]
    merged.cp_fraction = list(np.mean([padded(c.cp_fraction) for c in curves], axis=0))
    merged.gap_closed = list(np.mean([padded(c.gap_closed) for c in curves], axis=0))
    return merged


@dataclass
class ValSizeResult:
    """One point of Figure 10: outcome of CPClean at a validation-set size."""

    dataset: str
    n_val: int
    gap_closed: float
    examples_cleaned_fraction: float


def sweep_validation_size(
    recipe: str,
    val_sizes: list[int],
    n_train: int = 120,
    n_test: int = 300,
    seed: int = 0,
) -> list[ValSizeResult]:
    """Run CPClean at several ``|Dval|`` and record effort and gap closed."""
    results = []
    for n_val in val_sizes:
        task = build_cleaning_task(
            recipe, n_train=n_train, n_val=n_val, n_test=n_test, seed=seed
        )
        curve = trace_cleaning_curve(task, strategy="cpclean")
        results.append(
            ValSizeResult(
                dataset=recipe,
                n_val=n_val,
                gap_closed=curve.gap_closed[-1],
                examples_cleaned_fraction=curve.fraction_cleaned[-1],
            )
        )
    return results
