"""Experiment harnesses that regenerate the paper's tables and figures."""

from repro.experiments.complexity import (
    ALGORITHMS,
    ComplexityPoint,
    fit_growth_exponent,
    measure_runtime,
    random_instance,
)
from repro.experiments.config import ScaleConfig, get_scale
from repro.experiments.curves import (
    CleaningCurve,
    ValSizeResult,
    average_random_curves,
    sweep_validation_size,
    trace_cleaning_curve,
)
from repro.experiments.end_to_end import EndToEndResult, average_end_to_end, run_end_to_end
from repro.experiments.metrics import gap_closed

__all__ = [
    "gap_closed",
    "ScaleConfig",
    "get_scale",
    "EndToEndResult",
    "run_end_to_end",
    "average_end_to_end",
    "CleaningCurve",
    "trace_cleaning_curve",
    "average_random_curves",
    "ValSizeResult",
    "sweep_validation_size",
    "ComplexityPoint",
    "measure_runtime",
    "random_instance",
    "fit_growth_exponent",
    "ALGORITHMS",
]
