"""End-to-end comparison harness — regenerates the paper's Table 2.

For one dataset recipe and seed: build the cleaning task, evaluate Ground
Truth and Default Cleaning (the bounds), then BoostClean, HoloClean and
CPClean — the latter both run to full validation certainty and truncated at
a 20% cleaning budget, matching the two CPClean columns in Table 2.

The CPClean leg routes through the unified query planner
(:mod:`repro.core.planner`) via :func:`repro.cleaning.cp_clean.run_cp_clean`;
pass ``n_jobs`` to fan its per-row scoring scans out over worker processes
and ``backend`` to force a planner backend for the certainty checks (the
reproduced numbers are identical for every choice of either knob).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cleaning.baselines import default_clean_classifier, ground_truth_classifier
from repro.cleaning.boost_clean import run_boost_clean
from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.holo_clean import run_holo_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.core.knn import KNNClassifier
from repro.data.task import CleaningTask, build_cleaning_task
from repro.experiments.metrics import gap_closed

__all__ = ["EndToEndResult", "run_end_to_end", "average_end_to_end"]


@dataclass
class EndToEndResult:
    """One row of Table 2 (plus the raw accuracies behind it)."""

    dataset: str
    ground_truth_accuracy: float
    default_accuracy: float
    boost_clean_gap: float
    holo_clean_gap: float
    cp_clean_gap: float
    cp_clean_examples_cleaned: float  # fraction of dirty examples cleaned
    cp_clean_budget_gap: float  # gap closed with the 20% budget
    raw: dict = field(default_factory=dict)


def _world_accuracy(task: CleaningTask, fixed: dict[int, int]) -> float:
    """Test accuracy of the representative world of a partially cleaned dataset.

    Cleaned rows take the human answer; still-dirty rows take the candidate
    closest to the default imputation (any world is valid once validation is
    fully CP'ed; this choice also behaves sensibly mid-run).
    """
    choice = task.default_choice.copy()
    for row, cand in fixed.items():
        choice[row] = cand
    world = task.incomplete.world([int(c) for c in choice])
    clf = KNNClassifier(k=task.k).fit(world, task.train_labels)
    return clf.accuracy(task.test_X, task.test_y)


def run_end_to_end(
    recipe: str,
    n_train: int = 120,
    n_val: int = 24,
    n_test: int = 300,
    seed: int = 0,
    budget_fraction: float = 0.2,
    boost_rounds: int = 1,
    task: CleaningTask | None = None,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tile_rows: int | None = None,
    tile_candidates: int | None = None,
) -> EndToEndResult:
    """Run the full Table-2 comparison for one dataset and seed."""
    if task is None:
        task = build_cleaning_task(recipe, n_train=n_train, n_val=n_val, n_test=n_test, seed=seed)

    gt_acc = ground_truth_classifier(task).accuracy(task.test_X, task.test_y)
    default_acc = default_clean_classifier(task).accuracy(task.test_X, task.test_y)

    boost_acc = run_boost_clean(task, n_rounds=boost_rounds).accuracy(task.test_X, task.test_y)

    holo_table = run_holo_clean(task.dirty_train, task.repair_space)
    holo_clf = KNNClassifier(k=task.k).fit(
        task.encoder.encode_table(holo_table), task.train_labels
    )
    holo_acc = holo_clf.accuracy(task.test_X, task.test_y)

    oracle = GroundTruthOracle(task.gt_choice)
    report = run_cp_clean(
        task.incomplete, task.val_X, oracle, k=task.k, n_jobs=n_jobs, backend=backend,
        tile_rows=tile_rows, tile_candidates=tile_candidates,
    )
    cp_acc = _world_accuracy(task, report.final_fixed)

    n_dirty = max(len(task.dirty_rows), 1)
    budget = max(1, round(budget_fraction * n_dirty))
    budget_fixed = {
        step.row: step.chosen_candidate for step in report.steps[:budget]
    }
    cp_budget_acc = _world_accuracy(task, budget_fixed)

    return EndToEndResult(
        dataset=task.name,
        ground_truth_accuracy=gt_acc,
        default_accuracy=default_acc,
        boost_clean_gap=gap_closed(boost_acc, default_acc, gt_acc),
        holo_clean_gap=gap_closed(holo_acc, default_acc, gt_acc),
        cp_clean_gap=gap_closed(cp_acc, default_acc, gt_acc),
        cp_clean_examples_cleaned=report.n_cleaned / n_dirty,
        cp_clean_budget_gap=gap_closed(cp_budget_acc, default_acc, gt_acc),
        raw={
            "boost_accuracy": boost_acc,
            "holo_accuracy": holo_acc,
            "cp_accuracy": cp_acc,
            "cp_budget_accuracy": cp_budget_acc,
            "n_dirty": n_dirty,
            "n_cleaned": report.n_cleaned,
            "cp_fraction_final": report.cp_fraction_final,
        },
    )


def average_end_to_end(
    recipe: str,
    seeds: list[int],
    n_train: int = 120,
    n_val: int = 24,
    n_test: int = 300,
    budget_fraction: float = 0.2,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tile_rows: int | None = None,
    tile_candidates: int | None = None,
) -> EndToEndResult:
    """Average :func:`run_end_to_end` over seeds (reduces small-scale noise)."""
    results = [
        run_end_to_end(
            recipe,
            n_train=n_train,
            n_val=n_val,
            n_test=n_test,
            seed=seed,
            budget_fraction=budget_fraction,
            n_jobs=n_jobs,
            backend=backend,
            tile_rows=tile_rows,
            tile_candidates=tile_candidates,
        )
        for seed in seeds
    ]
    return EndToEndResult(
        dataset=recipe,
        ground_truth_accuracy=float(np.mean([r.ground_truth_accuracy for r in results])),
        default_accuracy=float(np.mean([r.default_accuracy for r in results])),
        boost_clean_gap=float(np.mean([r.boost_clean_gap for r in results])),
        holo_clean_gap=float(np.mean([r.holo_clean_gap for r in results])),
        cp_clean_gap=float(np.mean([r.cp_clean_gap for r in results])),
        cp_clean_examples_cleaned=float(
            np.mean([r.cp_clean_examples_cleaned for r in results])
        ),
        cp_clean_budget_gap=float(np.mean([r.cp_clean_budget_gap for r in results])),
        raw={"seeds": list(seeds), "individual": results},
    )
