"""Experiment scale configuration.

The paper runs on tables with thousands of rows and 1,000-example
validation/test splits on a Xeon server; this reproduction defaults to
laptop scale and exposes one switch. Set the environment variable
``REPRO_SCALE`` to ``quick`` / ``default`` / ``large`` to resize every
benchmark consistently; individual harness functions also accept explicit
sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ScaleConfig", "get_scale"]


@dataclass(frozen=True)
class ScaleConfig:
    """Row counts shared by the experiment harnesses."""

    name: str
    n_train: int
    n_val: int
    n_test: int
    n_seeds: int  # seeds averaged in accuracy comparisons
    random_clean_seeds: int  # RandomClean repetitions in the curves


_SCALES = {
    "quick": ScaleConfig(name="quick", n_train=80, n_val=16, n_test=150, n_seeds=1, random_clean_seeds=2),
    "default": ScaleConfig(name="default", n_train=120, n_val=24, n_test=300, n_seeds=2, random_clean_seeds=3),
    "large": ScaleConfig(name="large", n_train=240, n_val=40, n_test=500, n_seeds=3, random_clean_seeds=5),
}


def get_scale(name: str | None = None) -> ScaleConfig:
    """Resolve the scale: explicit name > ``$REPRO_SCALE`` > ``default``."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    if name not in _SCALES:
        raise ValueError(f"unknown scale {name!r}; available: {sorted(_SCALES)}")
    return _SCALES[name]
