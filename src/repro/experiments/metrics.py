"""Evaluation metrics (paper §5.1 "Performance Measures")."""

from __future__ import annotations

__all__ = ["gap_closed"]


def gap_closed(accuracy: float, default_accuracy: float, ground_truth_accuracy: float) -> float:
    """The paper's headline metric.

    ``gap closed by X = (acc(X) - acc(Default)) / (acc(GroundTruth) - acc(Default))``

    1.0 means the method fully recovers the ground-truth accuracy; negative
    values mean it is *worse* than naive mean/mode imputation. When the
    denominator is degenerate (no gap to close) the metric is defined as 0.
    """
    denominator = ground_truth_accuracy - default_accuracy
    if abs(denominator) < 1e-12:
        return 0.0
    return (accuracy - default_accuracy) / denominator
