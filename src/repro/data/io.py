"""CSV loading and saving for dirty tables.

A downstream user's data does not arrive as a :class:`~repro.data.table.Table`
— it arrives as a CSV with empty cells. This module reads such files into
the library's table model and writes tables back out, so the whole pipeline
(missingness analysis → candidate repairs → CP queries → CPClean) runs on
real files:

* empty cells, ``NA``, ``N/A``, ``NaN``, ``NULL`` and ``?`` (case
  insensitive) are treated as missing;
* a column is numeric when every non-missing cell parses as a float,
  categorical otherwise (categories are label-encoded in first-appearance
  order, with the encoding returned so predictions can be decoded);
* the label column must be complete (Definition 1 assumes certain labels)
  and is label-encoded the same way.

Only the standard library :mod:`csv` module is used — no pandas dependency.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.table import MISSING_CATEGORY, Table

__all__ = ["CsvSchema", "read_csv", "write_csv", "MISSING_TOKENS"]

#: Cell spellings treated as missing (compared case-insensitively, stripped).
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "?"})


def _is_missing(cell: str) -> bool:
    return cell.strip().lower() in MISSING_TOKENS


def _parse_float(cell: str) -> float | None:
    try:
        return float(cell)
    except ValueError:
        return None


@dataclass
class CsvSchema:
    """How a CSV's columns map onto the table model (returned by :func:`read_csv`).

    Attributes
    ----------
    numeric_names / categorical_names:
        Column names per group, in file order within each group.
    label_name:
        The label column's name.
    category_encodings:
        Per categorical column, the list of category strings in code order
        (``encodings[name][code]`` decodes a category).
    label_encoding:
        Label strings in code order.
    """

    numeric_names: list[str] = field(default_factory=list)
    categorical_names: list[str] = field(default_factory=list)
    label_name: str = ""
    category_encodings: dict[str, list[str]] = field(default_factory=dict)
    label_encoding: list[str] = field(default_factory=list)

    def decode_label(self, code: int) -> str:
        """The original label string for an integer class code."""
        return self.label_encoding[code]

    def decode_category(self, column: str, code: int) -> str:
        """The original category string (or ``"<missing>"`` for the sentinel)."""
        if code == MISSING_CATEGORY:
            return "<missing>"
        return self.category_encodings[column][code]


def read_csv(
    path: str | pathlib.Path,
    label_column: str,
    delimiter: str = ",",
) -> tuple[Table, CsvSchema]:
    """Read a (possibly dirty) CSV into a :class:`Table` plus its schema.

    Parameters
    ----------
    path:
        CSV file with a header row.
    label_column:
        Name of the (complete) class-label column.
    delimiter:
        Field separator.

    Raises
    ------
    ValueError
        On a missing header, an unknown label column, a missing label cell,
        or ragged rows.
    """
    path = pathlib.Path(path)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty (no header row)") from None
        rows = list(reader)

    header = [name.strip() for name in header]
    if label_column not in header:
        raise ValueError(f"label column {label_column!r} not in header {header}")
    if len(set(header)) != len(header):
        raise ValueError(f"duplicate column names in header {header}")
    label_idx = header.index(label_column)

    for r, row in enumerate(rows):
        if len(row) != len(header):
            raise ValueError(
                f"row {r + 2} of {path} has {len(row)} fields, header has {len(header)}"
            )

    feature_indices = [i for i in range(len(header)) if i != label_idx]

    # Column typing: numeric iff every non-missing cell parses as a float
    # and at least one non-missing cell exists.
    numeric_cols: list[int] = []
    categorical_cols: list[int] = []
    for i in feature_indices:
        cells = [row[i] for row in rows if not _is_missing(row[i])]
        if cells and all(_parse_float(c) is not None for c in cells):
            numeric_cols.append(i)
        else:
            categorical_cols.append(i)

    n = len(rows)
    numeric = np.full((n, len(numeric_cols)), np.nan, dtype=np.float64)
    for j, i in enumerate(numeric_cols):
        for r, row in enumerate(rows):
            if not _is_missing(row[i]):
                numeric[r, j] = float(row[i])

    categorical = np.full((n, len(categorical_cols)), MISSING_CATEGORY, dtype=np.int64)
    encodings: dict[str, list[str]] = {}
    for j, i in enumerate(categorical_cols):
        codes: dict[str, int] = {}
        order: list[str] = []
        for r, row in enumerate(rows):
            if _is_missing(row[i]):
                continue
            value = row[i].strip()
            if value not in codes:
                codes[value] = len(order)
                order.append(value)
            categorical[r, j] = codes[value]
        encodings[header[i]] = order

    label_codes: dict[str, int] = {}
    label_order: list[str] = []
    labels = np.empty(n, dtype=np.int64)
    for r, row in enumerate(rows):
        cell = row[label_idx]
        if _is_missing(cell):
            raise ValueError(
                f"row {r + 2} of {path}: label column {label_column!r} is missing "
                "(the CP data model assumes certain labels)"
            )
        value = cell.strip()
        if value not in label_codes:
            label_codes[value] = len(label_order)
            label_order.append(value)
        labels[r] = label_codes[value]

    table = Table(
        numeric,
        categorical,
        labels,
        numeric_names=[header[i] for i in numeric_cols],
        categorical_names=[header[i] for i in categorical_cols],
    )
    schema = CsvSchema(
        numeric_names=list(table.numeric_names),
        categorical_names=list(table.categorical_names),
        label_name=label_column,
        category_encodings=encodings,
        label_encoding=label_order,
    )
    return table, schema


def write_csv(
    table: Table,
    path: str | pathlib.Path,
    schema: CsvSchema | None = None,
    missing_token: str = "",
    delimiter: str = ",",
) -> None:
    """Write a :class:`Table` back to CSV.

    With ``schema`` provided, categorical codes and labels are decoded back
    to their original strings; without it they are written as integer codes.
    Missing cells become ``missing_token``.
    """
    path = pathlib.Path(path)
    label_name = schema.label_name if schema is not None else "label"
    header = list(table.numeric_names) + list(table.categorical_names) + [label_name]

    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(header)
        for r in range(table.n_rows):
            row: list[str] = []
            for j in range(table.n_numeric):
                value = table.numeric[r, j]
                row.append(missing_token if np.isnan(value) else repr(float(value)))
            for j in range(table.n_categorical):
                code = int(table.categorical[r, j])
                if code == MISSING_CATEGORY:
                    row.append(missing_token)
                elif schema is not None:
                    row.append(schema.category_encodings[table.categorical_names[j]][code])
                else:
                    row.append(str(code))
            label = int(table.labels[r])
            row.append(schema.decode_label(label) if schema is not None else str(label))
            writer.writerow(row)
