"""Feature-importance estimation by leave-one-attribute-out accuracy loss.

The paper injects missing values "Missing Not At Random": the probability of
an attribute going missing is proportional to its *relative importance*,
measured as the accuracy loss after removing the attribute (§5.1). This
module reproduces that measurement with the library's own KNN substrate.
"""

from __future__ import annotations

import numpy as np

from repro.core.knn import KNNClassifier
from repro.data.preprocess import TableEncoder
from repro.data.table import Table
from repro.utils.rng import ensure_rng

__all__ = ["feature_importances"]


def _drop_attribute(table: Table, attribute: int) -> Table:
    """A copy of ``table`` without the given attribute (numeric first, then categorical)."""
    if attribute < table.n_numeric:
        keep = [j for j in range(table.n_numeric) if j != attribute]
        return Table(
            table.numeric[:, keep],
            table.categorical,
            table.labels,
            [table.numeric_names[j] for j in keep],
            list(table.categorical_names),
        )
    cat_index = attribute - table.n_numeric
    keep = [j for j in range(table.n_categorical) if j != cat_index]
    return Table(
        table.numeric,
        table.categorical[:, keep],
        table.labels,
        list(table.numeric_names),
        [table.categorical_names[j] for j in keep],
    )


def _holdout_accuracy(table: Table, k: int, rng: np.random.Generator) -> float:
    """KNN accuracy on a deterministic holdout split of a complete table."""
    n = table.n_rows
    n_holdout = max(10, n // 4)
    order = rng.permutation(n)
    holdout, train = order[:n_holdout], order[n_holdout:]
    train_table = table.take(train)
    holdout_table = table.take(holdout)
    encoder = TableEncoder().fit(train_table)
    clf = KNNClassifier(k=min(k, train_table.n_rows)).fit(
        encoder.encode_table(train_table), train_table.labels
    )
    return clf.accuracy(encoder.encode_table(holdout_table), holdout_table.labels)


def feature_importances(
    table: Table,
    k: int = 3,
    n_repeats: int = 3,
    max_rows: int = 600,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Relative attribute importances of a *complete* table.

    Returns a probability vector over the ``n_features`` attributes
    (numeric attributes first, categorical after), proportional to the mean
    accuracy drop when the attribute is removed, floored at a small epsilon
    so every attribute keeps a non-zero missing probability.
    """
    if table.dirty_rows().size:
        raise ValueError("feature importances must be measured on a complete table")
    rng = ensure_rng(seed)
    if table.n_rows > max_rows:
        subset = rng.choice(table.n_rows, size=max_rows, replace=False)
        table = table.take(subset)

    n_features = table.n_features
    drops = np.zeros(n_features)
    for _ in range(n_repeats):
        # One split per repeat, shared between the base and every reduced
        # table, so the comparison isolates the attribute's contribution.
        split_seed = int(rng.integers(0, 2**63))
        base = _holdout_accuracy(table, k, np.random.default_rng(split_seed))
        for attribute in range(n_features):
            reduced = _drop_attribute(table, attribute)
            acc = _holdout_accuracy(reduced, k, np.random.default_rng(split_seed))
            drops[attribute] += base - acc
    drops /= n_repeats

    # Negative drops (attribute was noise) are clipped; a floor keeps the
    # distribution supported everywhere.
    floor = 0.02
    weights = np.clip(drops, 0.0, None) + floor
    return weights / weights.sum()
