"""Candidate-repair generation (paper §5.1, the CPClean cleaning model).

For every missing cell, automatic cleaning proposes a small candidate set:

* numeric column — the column's **minimum, 25th percentile, mean, 75th
  percentile and maximum** over the observed values (5 candidates);
* categorical column — the **top-4 most frequent categories** plus a dummy
  **"other"** category (5 candidates).

A row with several missing cells takes the Cartesian product of its cells'
candidates (capped to keep candidate sets bounded; the cap is a knob, the
paper's single-missing rows are unaffected). The resulting per-row repair
lists are what :class:`repro.core.dataset.IncompleteDataset` consumes.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.data.table import MISSING_CATEGORY, Table
from repro.utils.validation import check_positive_int

__all__ = ["RepairSpace", "default_clean"]


def default_clean(table: Table) -> Table:
    """The paper's *Default Cleaning* baseline: mean / most-frequent imputation."""
    clean = table.copy()
    for j in range(table.n_numeric):
        column = table.numeric[:, j]
        observed = column[~np.isnan(column)]
        fill = float(observed.mean()) if observed.size else 0.0
        clean.numeric[np.isnan(column), j] = fill
    for j in range(table.n_categorical):
        column = table.categorical[:, j]
        observed = column[column != MISSING_CATEGORY]
        if observed.size:
            values, counts = np.unique(observed, return_counts=True)
            fill = int(values[np.argmax(counts)])
        else:
            fill = 0
        clean.categorical[column == MISSING_CATEGORY, j] = fill
    return clean


class RepairSpace:
    """Per-column candidate repairs and per-row repair combinations."""

    def __init__(
        self,
        table: Table,
        top_categories: int = 4,
        max_row_candidates: int = 25,
    ) -> None:
        self.table = table
        self.top_categories = check_positive_int(top_categories, "top_categories")
        self.max_row_candidates = check_positive_int(max_row_candidates, "max_row_candidates")

        # Numeric candidates: min / p25 / mean / p75 / max of observed values.
        self.numeric_candidates: list[np.ndarray] = []
        for j in range(table.n_numeric):
            column = table.numeric[:, j]
            observed = column[~np.isnan(column)]
            if observed.size == 0:
                raise ValueError(f"numeric column {j} has no observed values to repair from")
            stats = [
                float(observed.min()),
                float(np.percentile(observed, 25)),
                float(observed.mean()),
                float(np.percentile(observed, 75)),
                float(observed.max()),
            ]
            # Deduplicate while preserving order (constant columns collapse).
            unique: list[float] = []
            for value in stats:
                if not any(abs(value - u) < 1e-12 for u in unique):
                    unique.append(value)
            self.numeric_candidates.append(np.array(unique))

        # Categorical candidates: top-k most frequent + a fresh "other" code.
        self.categorical_candidates: list[list[int]] = []
        self.other_codes: list[int] = []
        for j in range(table.n_categorical):
            column = table.categorical[:, j]
            observed = column[column != MISSING_CATEGORY]
            if observed.size == 0:
                raise ValueError(f"categorical column {j} has no observed values to repair from")
            values, counts = np.unique(observed, return_counts=True)
            # Most frequent first; ties by smaller code for determinism.
            order = np.lexsort((values, -counts))
            top = [int(values[i]) for i in order[: self.top_categories]]
            other = int(values.max()) + 1
            self.other_codes.append(other)
            self.categorical_candidates.append(top + [other])

        self._missing_cells: list[list[tuple[str, int]]] = []
        num_mask = table.numeric_missing_mask()
        cat_mask = table.categorical_missing_mask()
        for row in range(table.n_rows):
            cells: list[tuple[str, int]] = []
            cells.extend(("numeric", j) for j in np.flatnonzero(num_mask[row]))
            cells.extend(("categorical", j) for j in np.flatnonzero(cat_mask[row]))
            self._missing_cells.append(cells)

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """Number of global repair actions (the max candidates of any column)."""
        sizes = [c.shape[0] for c in self.numeric_candidates]
        sizes += [len(c) for c in self.categorical_candidates]
        return max(sizes) if sizes else 0

    def missing_cells(self, row: int) -> list[tuple[str, int]]:
        """The missing cells of ``row`` as ``(kind, column)`` pairs."""
        return list(self._missing_cells[row])

    def cell_candidates(self, kind: str, column: int) -> list[float] | list[int]:
        """Candidate repair values of one column."""
        if kind == "numeric":
            return [float(v) for v in self.numeric_candidates[column]]
        if kind == "categorical":
            return list(self.categorical_candidates[column])
        raise ValueError(f"kind must be 'numeric' or 'categorical', got {kind!r}")

    # ------------------------------------------------------------------
    def row_repairs(self, row: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """All complete raw versions of ``row``: ``[(numeric_row, cat_row), ...]``.

        A clean row yields a single version (itself); a dirty row yields the
        Cartesian product of its cells' candidates, capped at
        ``max_row_candidates`` (deterministically, keeping the head of the
        product order).
        """
        numeric_row = self.table.numeric[row].copy()
        cat_row = self.table.categorical[row].copy()
        cells = self._missing_cells[row]
        if not cells:
            return [(numeric_row, cat_row)]
        per_cell = [self.cell_candidates(kind, col) for kind, col in cells]
        versions: list[tuple[np.ndarray, np.ndarray]] = []
        for combo in itertools.islice(itertools.product(*per_cell), self.max_row_candidates):
            num = numeric_row.copy()
            cat = cat_row.copy()
            for (kind, col), value in zip(cells, combo):
                if kind == "numeric":
                    num[col] = float(value)
                else:
                    cat[col] = int(value)
            versions.append((num, cat))
        return versions

    # ------------------------------------------------------------------
    def apply_global_action(self, action: int) -> Table:
        """Fill every missing cell with its column's ``action``-th candidate.

        This is the repair-policy space the BoostClean baseline selects
        from: action 0 = min / top-1 category, ..., action 2 = mean, etc.
        Columns with fewer candidates clamp the index.
        """
        if not 0 <= action < max(self.n_actions, 1):
            raise ValueError(f"action must be in [0, {self.n_actions}), got {action}")
        clean = self.table.copy()
        for j in range(self.table.n_numeric):
            candidates = self.numeric_candidates[j]
            fill = float(candidates[min(action, candidates.shape[0] - 1)])
            clean.numeric[np.isnan(clean.numeric[:, j]), j] = fill
        for j in range(self.table.n_categorical):
            candidates = self.categorical_candidates[j]
            fill = int(candidates[min(action, len(candidates) - 1)])
            clean.categorical[clean.categorical[:, j] == MISSING_CATEGORY, j] = fill
        return clean
