"""A small mixed-type table container for the cleaning experiments.

The paper's datasets (Table 1) are relational tables with numeric and
categorical attributes, some of whose cells are missing. ``Table`` keeps
the two attribute groups as separate matrices:

* ``numeric`` — ``(n, d_num)`` float64, missing cells are ``NaN``;
* ``categorical`` — ``(n, d_cat)`` int64 category codes, missing cells are
  ``-1`` (categories are non-negative integers).

Labels are always complete (the paper assumes no label uncertainty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Table", "MISSING_CATEGORY"]

#: Sentinel category code for a missing categorical cell.
MISSING_CATEGORY = -1


@dataclass
class Table:
    """A (possibly dirty) mixed-type dataset with class labels."""

    numeric: np.ndarray
    categorical: np.ndarray
    labels: np.ndarray
    numeric_names: list[str] = field(default_factory=list)
    categorical_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.numeric = np.asarray(self.numeric, dtype=np.float64)
        self.categorical = np.asarray(self.categorical, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.numeric.ndim != 2:
            raise ValueError(f"numeric must be 2-D, got shape {self.numeric.shape}")
        if self.categorical.ndim != 2:
            raise ValueError(f"categorical must be 2-D, got shape {self.categorical.shape}")
        n = self.numeric.shape[0]
        if self.categorical.shape[0] != n or self.labels.shape[0] != n:
            raise ValueError(
                "numeric, categorical and labels must agree on the number of rows; got "
                f"{self.numeric.shape[0]}, {self.categorical.shape[0]}, {self.labels.shape[0]}"
            )
        if not self.numeric_names:
            self.numeric_names = [f"num_{j}" for j in range(self.numeric.shape[1])]
        if not self.categorical_names:
            self.categorical_names = [f"cat_{j}" for j in range(self.categorical.shape[1])]
        if len(self.numeric_names) != self.numeric.shape[1]:
            raise ValueError("numeric_names length does not match the numeric width")
        if len(self.categorical_names) != self.categorical.shape[1]:
            raise ValueError("categorical_names length does not match the categorical width")

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return int(self.numeric.shape[0])

    @property
    def n_numeric(self) -> int:
        return int(self.numeric.shape[1])

    @property
    def n_categorical(self) -> int:
        return int(self.categorical.shape[1])

    @property
    def n_features(self) -> int:
        """Total attribute count (the paper's "#Features")."""
        return self.n_numeric + self.n_categorical

    @property
    def n_labels(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    # ------------------------------------------------------------------
    def numeric_missing_mask(self) -> np.ndarray:
        """Boolean ``(n, d_num)`` mask of missing numeric cells."""
        return np.isnan(self.numeric)

    def categorical_missing_mask(self) -> np.ndarray:
        """Boolean ``(n, d_cat)`` mask of missing categorical cells."""
        return self.categorical == MISSING_CATEGORY

    def dirty_rows(self) -> np.ndarray:
        """Indices of rows containing at least one missing cell."""
        dirty = self.numeric_missing_mask().any(axis=1) | self.categorical_missing_mask().any(axis=1)
        return np.flatnonzero(dirty)

    def missing_rate(self) -> float:
        """Fraction of rows with at least one missing cell (Table 1's metric)."""
        if self.n_rows == 0:
            return 0.0
        return float(self.dirty_rows().shape[0]) / self.n_rows

    # ------------------------------------------------------------------
    def copy(self) -> "Table":
        return Table(
            self.numeric.copy(),
            self.categorical.copy(),
            self.labels.copy(),
            list(self.numeric_names),
            list(self.categorical_names),
        )

    def take(self, indices: np.ndarray) -> "Table":
        """A new table with the selected rows (used by the splitters)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(
            self.numeric[indices],
            self.categorical[indices],
            self.labels[indices],
            list(self.numeric_names),
            list(self.categorical_names),
        )

    def __repr__(self) -> str:
        return (
            f"Table(n_rows={self.n_rows}, n_numeric={self.n_numeric}, "
            f"n_categorical={self.n_categorical}, n_labels={self.n_labels}, "
            f"missing_rate={self.missing_rate():.1%})"
        )
