"""Train/validation/test splitting (paper §5.1 experimental setup).

The paper randomly selects 1,000 validation and 1,000 test examples and
trains on the rest; the splitter generalises the three sizes and shuffles
deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["Splits", "train_val_test_split"]


@dataclass
class Splits:
    """The three disjoint row subsets of one experiment."""

    train: Table
    val: Table
    test: Table


def train_val_test_split(
    table: Table,
    n_val: int,
    n_test: int,
    n_train: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> Splits:
    """Randomly partition ``table`` into train/validation/test tables.

    ``n_train=None`` assigns all remaining rows to the training split
    (the paper's protocol).
    """
    n_val = check_positive_int(n_val, "n_val")
    n_test = check_positive_int(n_test, "n_test")
    rng = ensure_rng(seed)
    n = table.n_rows
    if n_train is None:
        n_train = n - n_val - n_test
    else:
        n_train = check_positive_int(n_train, "n_train")
    if n_train < 1 or n_val + n_test + n_train > n:
        raise ValueError(
            f"cannot split {n} rows into train={n_train}, val={n_val}, test={n_test}"
        )
    order = rng.permutation(n)
    val_idx = order[:n_val]
    test_idx = order[n_val : n_val + n_test]
    train_idx = order[n_val + n_test : n_val + n_test + n_train]
    return Splits(train=table.take(train_idx), val=table.take(val_idx), test=table.take(test_idx))
