"""End-to-end construction of a cleaning experiment (paper §5.1 setup).

A :class:`CleaningTask` bundles everything one evaluation run needs:

* the dirty training set as an encoded :class:`IncompleteDataset` whose
  candidate sets come from the automatic repair generator;
* the ground-truth world (as the per-row candidate index a simulated human
  cleaner would pick — the candidate closest to the true value, exactly the
  paper's protocol);
* encoded ground-truth and default-cleaned training matrices (the paper's
  upper and lower accuracy bounds);
* encoded validation and test splits;
* the raw artefacts (tables, repair space, encoder) needed by the
  BoostClean / HoloClean baselines, which operate on raw cells.

The pipeline: generate a complete table from a recipe, split it, measure
feature importances on the training split, inject MNAR missingness driven
by those importances, build the repair space, and encode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.data.importance import feature_importances
from repro.data.missingness import inject_mnar_by_importance
from repro.data.preprocess import TableEncoder
from repro.data.recipes import RecipeInfo, make_table
from repro.data.repairs import RepairSpace, default_clean
from repro.data.splits import train_val_test_split
from repro.data.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["CleaningTask", "build_cleaning_task"]


@dataclass
class CleaningTask:
    """All artefacts of one cleaning-for-ML experiment."""

    name: str
    k: int
    info: RecipeInfo
    # Dirty training data with encoded candidate sets.
    incomplete: IncompleteDataset
    # Candidate index per row the simulated human cleaner returns
    # (closest candidate to the ground truth; 0 for clean rows).
    gt_choice: np.ndarray
    # Candidate index per row closest to the default (mean/mode) imputation;
    # used as the representative world for partially cleaned datasets.
    default_choice: np.ndarray
    # Encoded training matrices and labels.
    train_gt_X: np.ndarray
    train_default_X: np.ndarray
    train_labels: np.ndarray
    # Encoded evaluation splits.
    val_X: np.ndarray
    val_y: np.ndarray
    test_X: np.ndarray
    test_y: np.ndarray
    # Raw artefacts for cell-level baselines.
    gt_train: Table
    dirty_train: Table
    repair_space: RepairSpace
    encoder: TableEncoder
    importances: np.ndarray

    @property
    def dirty_rows(self) -> list[int]:
        """Indices of uncertain training rows."""
        return self.incomplete.uncertain_rows()

    def ground_truth_world(self) -> np.ndarray:
        """Encoded training matrix of the oracle's world (all rows cleaned)."""
        return self.incomplete.world([int(j) for j in self.gt_choice])


def build_cleaning_task(
    recipe: str,
    n_train: int = 120,
    n_val: int = 32,
    n_test: int = 200,
    missing_rate: float | None = None,
    k: int = 3,
    max_row_candidates: int = 25,
    seed: int | np.random.Generator | None = None,
) -> CleaningTask:
    """Build a :class:`CleaningTask` for one of the named recipes.

    ``missing_rate=None`` uses the recipe's Table-1 rate (20% synthetic,
    11.8% for babyproduct).
    """
    n_train = check_positive_int(n_train, "n_train", minimum=max(k, 5))
    n_val = check_positive_int(n_val, "n_val")
    n_test = check_positive_int(n_test, "n_test")
    rng = ensure_rng(seed)

    total = n_train + n_val + n_test
    table, info = make_table(recipe, n_rows=total, seed=rng)
    if missing_rate is None:
        missing_rate = info.paper_missing_rate
    missing_rate = check_fraction(missing_rate, "missing_rate")

    splits = train_val_test_split(table, n_val=n_val, n_test=n_test, n_train=n_train, seed=rng)
    importances = feature_importances(splits.train, k=k, seed=rng)
    injection = dict(info.injection_kwargs)
    sharpness = injection.pop("importance_sharpness", 1.0)
    sharpened = importances**sharpness
    sharpened /= sharpened.sum()
    dirty_train = inject_mnar_by_importance(
        splits.train, sharpened, row_rate=missing_rate, seed=rng, **injection
    )

    repair_space = RepairSpace(dirty_train, max_row_candidates=max_row_candidates)
    encoder = TableEncoder().fit(dirty_train)

    candidate_sets: list[np.ndarray] = []
    for row in range(dirty_train.n_rows):
        versions = repair_space.row_repairs(row)
        numeric = np.stack([num for num, _cat in versions])
        categorical = np.stack([cat for _num, cat in versions])
        candidate_sets.append(encoder.encode_rows(numeric, categorical))
    incomplete = IncompleteDataset(candidate_sets, dirty_train.labels)

    train_gt_X = encoder.encode_table(splits.train)
    train_default_X = encoder.encode_table(default_clean(dirty_train))
    gt_choice = np.zeros(dirty_train.n_rows, dtype=np.int64)
    default_choice = np.zeros(dirty_train.n_rows, dtype=np.int64)
    for row in range(dirty_train.n_rows):
        candidates = incomplete.candidates(row)
        if candidates.shape[0] > 1:
            gt_choice[row] = int(
                np.argmin(np.linalg.norm(candidates - train_gt_X[row], axis=1))
            )
            default_choice[row] = int(
                np.argmin(np.linalg.norm(candidates - train_default_X[row], axis=1))
            )

    return CleaningTask(
        name=recipe,
        k=k,
        info=info,
        incomplete=incomplete,
        gt_choice=gt_choice,
        default_choice=default_choice,
        train_gt_X=train_gt_X,
        train_default_X=train_default_X,
        train_labels=dirty_train.labels.copy(),
        val_X=encoder.encode_table(splits.val),
        val_y=splits.val.labels.copy(),
        test_X=encoder.encode_table(splits.test),
        test_y=splits.test.labels.copy(),
        gt_train=splits.train,
        dirty_train=dirty_train,
        repair_space=repair_space,
        encoder=encoder,
        importances=importances,
    )
