"""Named dataset recipes standing in for the paper's four tables (Table 1).

========  ==========  =========  ========  =====================================
recipe    paper rows  #features  missing   character
========  ==========  =========  ========  =====================================
supreme   3052        7          20% syn.  well-separated, GT accuracy ~0.97
bank      3192        8          20% syn.  hard, GT accuracy ~0.64
puma      8192        8          20% syn.  moderate, GT accuracy ~0.79
baby      3042        7          real      mixed-type products, brand missing
========  ==========  =========  ========  =====================================

The originals are not redistributable / not available offline; these
recipes regenerate tables of the same shape and headline difficulty (see
DESIGN.md §3 for the substitution argument). Every recipe accepts a
``scale`` factor so experiments run at laptop scale by default while the
full Table-1 row counts remain reachable (``scale=1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synth import SyntheticSpec, generate_table
from repro.data.table import Table
from repro.utils.rng import ensure_rng

__all__ = ["RecipeInfo", "RECIPES", "make_table", "recipe_names"]


@dataclass(frozen=True)
class RecipeInfo:
    """Static description of one dataset recipe.

    ``injection_kwargs`` holds the recipe's MNAR-injection parameters
    (cells per dirty row, value bias/mode, importance sharpening) that were
    calibrated so the GroundTruth-vs-DefaultCleaning accuracy profile at
    laptop scale matches the paper's Table 2 shape.
    """

    name: str
    paper_rows: int
    n_numeric: int
    n_categorical: int
    error_type: str  # "synthetic" or "real"-like structural missingness
    paper_missing_rate: float
    spec_kwargs: dict
    injection_kwargs: dict

    @property
    def n_features(self) -> int:
        return self.n_numeric + self.n_categorical


RECIPES: dict[str, RecipeInfo] = {
    # Supreme (Simonoff): very separable; highest headline accuracy.
    "supreme": RecipeInfo(
        name="supreme",
        paper_rows=3052,
        n_numeric=7,
        n_categorical=0,
        error_type="synthetic",
        paper_missing_rate=0.20,
        spec_kwargs=dict(
            structure="concentric",
            class_separation=5.5,
            informative_fraction=0.3,
            label_noise=0.01,
            noise_scale=0.25,
            nuisance_scale=0.35,
        ),
        injection_kwargs=dict(
            cells_per_row=2, value_bias=2.5, value_mode="extreme", importance_sharpness=2.0
        ),
    ),
    # Bank (Delve): hard, low headline accuracy.
    "bank": RecipeInfo(
        name="bank",
        paper_rows=3192,
        n_numeric=8,
        n_categorical=0,
        error_type="synthetic",
        paper_missing_rate=0.20,
        spec_kwargs=dict(
            structure="concentric",
            class_separation=2.4,
            informative_fraction=0.3,
            label_noise=0.15,
            noise_scale=0.3,
            nuisance_scale=0.4,
        ),
        injection_kwargs=dict(
            cells_per_row=2, value_bias=2.5, value_mode="extreme", importance_sharpness=2.0
        ),
    ),
    # Puma (Delve robot-arm dynamics): moderate difficulty, largest table.
    "puma": RecipeInfo(
        name="puma",
        paper_rows=8192,
        n_numeric=8,
        n_categorical=0,
        error_type="synthetic",
        paper_missing_rate=0.20,
        spec_kwargs=dict(
            structure="concentric",
            class_separation=3.2,
            informative_fraction=0.3,
            label_noise=0.10,
            noise_scale=0.25,
            nuisance_scale=0.4,
        ),
        injection_kwargs=dict(
            cells_per_row=2, value_bias=2.5, value_mode="extreme", importance_sharpness=2.0
        ),
    ),
    # BabyProduct (Magellan scrape): mixed types; categorical brand-like
    # column with a skewed frequency profile carries part of the signal,
    # and the (lower) missing rate reflects the real scraper errors.
    "babyproduct": RecipeInfo(
        name="babyproduct",
        paper_rows=3042,
        n_numeric=4,
        n_categorical=3,
        error_type="real",
        paper_missing_rate=0.118,
        spec_kwargs=dict(
            structure="concentric",
            class_separation=3.2,
            informative_fraction=0.7,
            label_noise=0.15,
            noise_scale=0.25,
            nuisance_scale=0.4,
            categories_per_column=9,
            category_skew=1.8,
        ),
        injection_kwargs=dict(
            cells_per_row=3, value_bias=2.5, value_mode="extreme", importance_sharpness=2.0
        ),
    ),
}


def recipe_names() -> list[str]:
    """The four recipe names in the paper's Table-1 order."""
    return ["babyproduct", "supreme", "bank", "puma"]


def make_table(
    recipe: str,
    scale: float = 1.0,
    n_rows: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Table, RecipeInfo]:
    """Generate a complete table for ``recipe``.

    ``n_rows`` overrides the row count directly; otherwise
    ``round(scale * paper_rows)`` rows are generated.
    """
    if recipe not in RECIPES:
        raise ValueError(f"unknown recipe {recipe!r}; available: {sorted(RECIPES)}")
    info = RECIPES[recipe]
    rng = ensure_rng(seed)
    rows = int(n_rows) if n_rows is not None else max(30, round(scale * info.paper_rows))
    spec = SyntheticSpec(
        n_rows=rows,
        n_numeric=info.n_numeric,
        n_categorical=info.n_categorical,
        **info.spec_kwargs,
    )
    return generate_table(spec, rng), info
