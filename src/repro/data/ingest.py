"""From a dirty file to a CP-ready workload.

Glue between :mod:`repro.data.io` (CSV loading) and the core data model:
build the candidate-repair space of a dirty :class:`~repro.data.table.Table`
(§5.1's protocol: numeric min/p25/mean/p75/max, top-4 categories + "other",
Cartesian products per row) and encode everything into an
:class:`~repro.core.dataset.IncompleteDataset`, holding out complete rows as
the validation set the cleaning loop needs.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.data.io import CsvSchema, read_csv
from repro.data.preprocess import TableEncoder
from repro.data.repairs import RepairSpace
from repro.data.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["CsvWorkload", "incomplete_from_dirty_table", "load_csv_workload"]


def incomplete_from_dirty_table(
    table: Table, max_row_candidates: int = 25
) -> tuple[IncompleteDataset, RepairSpace, TableEncoder]:
    """Encode a dirty table into the paper's incomplete-dataset model.

    Every row's candidate set is the Cartesian product of its missing
    cells' per-column repairs (a single candidate when the row is clean),
    one-hot/standardised by a :class:`TableEncoder` fitted on the table.
    """
    repair_space = RepairSpace(table, max_row_candidates=max_row_candidates)
    encoder = TableEncoder().fit(table)
    candidate_sets: list[np.ndarray] = []
    for row in range(table.n_rows):
        versions = repair_space.row_repairs(row)
        numeric = np.stack([num for num, _cat in versions])
        categorical = np.stack([cat for _num, cat in versions])
        candidate_sets.append(encoder.encode_rows(numeric, categorical))
    return IncompleteDataset(candidate_sets, table.labels), repair_space, encoder


@dataclass
class CsvWorkload:
    """Everything a screening/cleaning run needs, loaded from one CSV.

    Attributes
    ----------
    incomplete:
        The training rows (dirty rows plus the clean rows not held out),
        with candidate-repair sets.
    val_X / val_y:
        Held-out *complete* rows (the paper assumes ``Dval`` is clean).
    train_rows / val_rows:
        Original CSV row indices of the two parts.
    table / schema / repair_space / encoder:
        The loaded table and the fitted transformations, for decoding
        results back to the file's vocabulary.
    """

    incomplete: IncompleteDataset
    val_X: np.ndarray
    val_y: np.ndarray
    train_rows: np.ndarray
    val_rows: np.ndarray
    table: Table
    schema: CsvSchema
    repair_space: RepairSpace
    encoder: TableEncoder
    k: int


def load_csv_workload(
    path: str | pathlib.Path,
    label_column: str,
    n_val: int = 32,
    k: int = 3,
    max_row_candidates: int = 25,
    seed: int | np.random.Generator | None = 0,
    delimiter: str = ",",
) -> CsvWorkload:
    """Load a dirty CSV and split it into a CP-ready training/validation pair.

    Up to ``n_val`` *complete* rows are sampled (without replacement) as the
    validation set; every other row — dirty or clean — becomes training
    data with candidate-repair sets.

    Raises
    ------
    ValueError
        If the file has no complete rows to validate on, or no rows left
        to train on after the hold-out.
    """
    n_val = check_positive_int(n_val, "n_val")
    k = check_positive_int(k, "k")
    rng = ensure_rng(seed)

    table, schema = read_csv(path, label_column, delimiter=delimiter)
    dirty = set(table.dirty_rows().tolist())
    clean_rows = np.array(
        [r for r in range(table.n_rows) if r not in dirty], dtype=np.int64
    )
    if clean_rows.size == 0:
        raise ValueError(
            f"{path} has no complete rows; the cleaning loop needs a clean "
            "validation set (Dval is assumed complete)"
        )
    n_held = min(n_val, clean_rows.size)
    val_rows = np.sort(rng.choice(clean_rows, size=n_held, replace=False))
    train_rows = np.array(
        [r for r in range(table.n_rows) if r not in set(val_rows.tolist())],
        dtype=np.int64,
    )
    if train_rows.size < k:
        raise ValueError(
            f"only {train_rows.size} training rows remain after holding out "
            f"{n_held} validation rows; need at least k={k}"
        )

    train_table = table.take(train_rows)
    incomplete, repair_space, encoder = incomplete_from_dirty_table(
        train_table, max_row_candidates=max_row_candidates
    )
    val_table = table.take(val_rows)
    return CsvWorkload(
        incomplete=incomplete,
        val_X=encoder.encode_table(val_table),
        val_y=val_table.labels.copy(),
        train_rows=train_rows,
        val_rows=val_rows,
        table=table,
        schema=schema,
        repair_space=repair_space,
        encoder=encoder,
        k=k,
    )
