"""Data substrates: tables, synthetic recipes, missingness, repairs, encoding."""

from repro.data.importance import feature_importances
from repro.data.ingest import CsvWorkload, incomplete_from_dirty_table, load_csv_workload
from repro.data.io import MISSING_TOKENS, CsvSchema, read_csv, write_csv
from repro.data.missingness import inject_mar, inject_mcar, inject_mnar_by_importance
from repro.data.preprocess import TableEncoder
from repro.data.recipes import RECIPES, RecipeInfo, make_table, recipe_names
from repro.data.repairs import RepairSpace, default_clean
from repro.data.splits import Splits, train_val_test_split
from repro.data.synth import SyntheticSpec, generate_table
from repro.data.table import MISSING_CATEGORY, Table
from repro.data.task import CleaningTask, build_cleaning_task

__all__ = [
    "Table",
    "MISSING_CATEGORY",
    "SyntheticSpec",
    "generate_table",
    "RecipeInfo",
    "RECIPES",
    "make_table",
    "recipe_names",
    "TableEncoder",
    "Splits",
    "train_val_test_split",
    "feature_importances",
    "inject_mcar",
    "inject_mar",
    "inject_mnar_by_importance",
    "RepairSpace",
    "default_clean",
    "CleaningTask",
    "build_cleaning_task",
    "CsvSchema",
    "read_csv",
    "write_csv",
    "MISSING_TOKENS",
    "CsvWorkload",
    "incomplete_from_dirty_table",
    "load_csv_workload",
]
