"""Encoding of mixed-type tables into the KNN feature space.

The KNN substrate and the CP engines work on real vectors with Euclidean
similarity, so raw tables are encoded as:

* numeric attributes — z-score standardised using the *observed* (non-
  missing) training values;
* categorical attributes — one-hot over the categories observed in the
  training split plus one reserved ``other`` slot per column (candidate
  repairs may introduce the "other category" of §5.1, and unseen test
  categories also fall into it).

The encoder is fitted once on the dirty training table and then applied to
ground-truth values, candidate repairs and the validation/test splits, so
every consumer lives in the same geometry.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import MISSING_CATEGORY, Table

__all__ = ["TableEncoder"]


class TableEncoder:
    """Fit on a (possibly dirty) table; encode complete rows into vectors."""

    def __init__(self) -> None:
        self._fitted = False
        self.numeric_means: np.ndarray | None = None
        self.numeric_stds: np.ndarray | None = None
        # Per categorical column: category code -> one-hot slot.
        self.category_maps: list[dict[int, int]] = []
        self.category_widths: list[int] = []

    # ------------------------------------------------------------------
    def fit(self, table: Table) -> "TableEncoder":
        """Learn column statistics from the observed cells of ``table``."""
        means = np.zeros(table.n_numeric)
        stds = np.ones(table.n_numeric)
        for j in range(table.n_numeric):
            observed = table.numeric[:, j]
            observed = observed[~np.isnan(observed)]
            if observed.size:
                means[j] = float(observed.mean())
                std = float(observed.std())
                stds[j] = std if std > 1e-12 else 1.0
        self.numeric_means = means
        self.numeric_stds = stds

        self.category_maps = []
        self.category_widths = []
        for j in range(table.n_categorical):
            observed = table.categorical[:, j]
            observed = observed[observed != MISSING_CATEGORY]
            categories = sorted(int(c) for c in np.unique(observed))
            mapping = {c: slot for slot, c in enumerate(categories)}
            self.category_maps.append(mapping)
            # The last slot of each column is the catch-all "other".
            self.category_widths.append(len(categories) + 1)
        self._fitted = True
        return self

    @property
    def n_output_features(self) -> int:
        self._require_fitted()
        assert self.numeric_means is not None
        return int(self.numeric_means.shape[0]) + sum(self.category_widths)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("encoder is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def encode_rows(self, numeric: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """Encode complete rows (no missing cells) into the KNN feature space."""
        self._require_fitted()
        assert self.numeric_means is not None and self.numeric_stds is not None
        numeric = np.asarray(numeric, dtype=np.float64)
        categorical = np.asarray(categorical, dtype=np.int64)
        if numeric.ndim == 1:
            numeric = numeric.reshape(1, -1)
        if categorical.ndim == 1:
            categorical = categorical.reshape(1, -1)
        n = numeric.shape[0]
        if np.isnan(numeric).any():
            raise ValueError("cannot encode rows containing missing numeric cells")
        if (categorical == MISSING_CATEGORY).any():
            raise ValueError("cannot encode rows containing missing categorical cells")

        pieces = [(numeric - self.numeric_means) / self.numeric_stds]
        for j, (mapping, width) in enumerate(zip(self.category_maps, self.category_widths)):
            onehot = np.zeros((n, width))
            other_slot = width - 1
            for i in range(n):
                slot = mapping.get(int(categorical[i, j]), other_slot)
                onehot[i, slot] = 1.0
            pieces.append(onehot)
        return np.concatenate(pieces, axis=1)

    def encode_table(self, table: Table) -> np.ndarray:
        """Encode a complete table; raises if any cell is missing."""
        return self.encode_rows(table.numeric, table.categorical)
