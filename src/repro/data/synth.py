"""Low-level synthetic data generation for the dataset recipes.

The paper evaluates on four real tables (Table 1). Those files are not
available offline, so :mod:`repro.data.recipes` rebuilds tables with the
same *shape* — mixed numeric/categorical attributes, tunable class
difficulty, attribute correlation — from the primitives here. The
generative model:

1. draw a latent class-dependent Gaussian ``z`` per row (informative
   directions get class-separated means);
2. numeric attributes are rotated, scaled views of ``z`` plus noise
   (so attributes correlate with each other, which the HoloClean-style
   cleaner exploits);
3. categorical attributes are quantile-binned latent directions, with a
   skewed category-frequency profile (so "top-4 + other" repairs are
   meaningful);
4. labels come from the latent class with a configurable flip rate
   (difficulty knob matching each dataset's headline accuracy).
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["SyntheticSpec", "generate_table"]


class SyntheticSpec:
    """Parameters of one synthetic mixed-type classification table."""

    def __init__(
        self,
        n_rows: int,
        n_numeric: int,
        n_categorical: int,
        n_labels: int = 2,
        class_separation: float = 1.6,
        informative_fraction: float = 0.7,
        label_noise: float = 0.05,
        categories_per_column: int = 8,
        category_skew: float = 1.3,
        noise_scale: float = 0.6,
        nuisance_scale: float = 0.5,
        structure: str = "blobs",
    ) -> None:
        self.n_rows = check_positive_int(n_rows, "n_rows")
        self.n_numeric = check_positive_int(n_numeric, "n_numeric", minimum=0)
        self.n_categorical = check_positive_int(n_categorical, "n_categorical", minimum=0)
        if self.n_numeric + self.n_categorical == 0:
            raise ValueError("the table needs at least one attribute")
        self.n_labels = check_positive_int(n_labels, "n_labels", minimum=2)
        if class_separation <= 0:
            raise ValueError(f"class_separation must be positive, got {class_separation}")
        self.class_separation = float(class_separation)
        self.informative_fraction = check_fraction(informative_fraction, "informative_fraction")
        self.label_noise = check_fraction(label_noise, "label_noise")
        self.categories_per_column = check_positive_int(
            categories_per_column, "categories_per_column", minimum=2
        )
        if category_skew <= 0:
            raise ValueError(f"category_skew must be positive, got {category_skew}")
        self.category_skew = float(category_skew)
        if noise_scale < 0:
            raise ValueError(f"noise_scale must be non-negative, got {noise_scale}")
        self.noise_scale = float(noise_scale)
        if nuisance_scale < 0:
            raise ValueError(f"nuisance_scale must be non-negative, got {nuisance_scale}")
        self.nuisance_scale = float(nuisance_scale)
        if structure not in ("blobs", "concentric"):
            raise ValueError(f"structure must be 'blobs' or 'concentric', got {structure!r}")
        self.structure = structure


def _class_means(spec: SyntheticSpec, latent_dim: int, rng: np.random.Generator) -> np.ndarray:
    """Per-class latent means in the informative prefix of the latent space.

    Classes sit at ``+/- (separation / 2)`` along orthonormal directions
    (antipodal pairs first), so any two class means are at least
    ``separation / sqrt(2)`` apart regardless of the draw.
    """
    n_informative = max(1, round(spec.informative_fraction * latent_dim))
    gauss = rng.normal(size=(n_informative, n_informative))
    q, _ = np.linalg.qr(gauss)
    means = np.zeros((spec.n_labels, latent_dim))
    for label in range(spec.n_labels):
        column = (label // 2) % q.shape[1]
        sign = 1.0 if label % 2 == 0 else -1.0
        means[label, :n_informative] = (spec.class_separation / 2.0) * sign * q[:, column]
    return means


def _skewed_bins(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Cumulative quantile edges producing a skewed category-frequency profile."""
    raw = rng.dirichlet(np.full(spec.categories_per_column, 1.0 / spec.category_skew))
    raw = np.sort(raw)[::-1]  # most frequent category first => code 0 is the mode-ish
    return np.cumsum(raw)[:-1]


def generate_table(spec: SyntheticSpec, seed: int | np.random.Generator | None = None) -> Table:
    """Sample a complete :class:`~repro.data.table.Table` from ``spec``."""
    rng = ensure_rng(seed)
    latent_dim = spec.n_numeric + spec.n_categorical
    true_class = rng.integers(0, spec.n_labels, size=spec.n_rows)
    n_informative = max(1, round(spec.informative_fraction * latent_dim))

    if spec.structure == "concentric":
        # Nested-shell classes: class 0 is a tight cluster at the origin of
        # the informative subspace, class l >= 1 a shell at radius
        # ``l * separation``. Extreme attribute values are the hallmark of
        # the outer classes, which is what makes value-dependent
        # missingness plus mean imputation (a pull toward the origin)
        # genuinely label-confusing — see DESIGN.md §3.
        latent = np.zeros((spec.n_rows, latent_dim))
        directions = rng.normal(size=(spec.n_rows, n_informative))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        directions /= np.where(norms > 0, norms, 1.0)
        radii = true_class * spec.class_separation + 0.55 * rng.normal(size=spec.n_rows)
        latent[:, :n_informative] = directions * radii[:, None]
        latent[:, :n_informative] += 0.35 * rng.normal(size=(spec.n_rows, n_informative))
        latent[:, n_informative:] = spec.nuisance_scale * rng.normal(
            size=(spec.n_rows, latent_dim - n_informative)
        )
    else:
        means = _class_means(spec, latent_dim, rng)
        noise_std = np.full(latent_dim, spec.nuisance_scale)
        noise_std[:n_informative] = 1.0
        latent = means[true_class] + noise_std[None, :] * rng.normal(
            size=(spec.n_rows, latent_dim)
        )

    # Numeric attributes: attribute j is primarily latent direction j (so
    # the class signal stays concentrated in the informative attributes and
    # leave-one-out importance is sharp), plus a weak shared mixing term
    # that cross-correlates attributes (exploited by the HoloClean-style
    # cleaner) and observation noise.
    numeric = np.empty((spec.n_rows, 0))
    if spec.n_numeric:
        mixing = rng.normal(size=(latent_dim, spec.n_numeric)) / np.sqrt(latent_dim)
        numeric = (
            latent[:, : spec.n_numeric]
            + 0.25 * (latent @ mixing)
            + spec.noise_scale * rng.normal(size=(spec.n_rows, spec.n_numeric))
        )

    # Categorical attributes: quantile-bin latent direction ``n_numeric + j``
    # through a skewed frequency profile (so earlier categorical columns can
    # be informative when the informative prefix extends past the numeric
    # attributes).
    categorical = np.empty((spec.n_rows, 0), dtype=np.int64)
    if spec.n_categorical:
        columns = []
        for j in range(spec.n_categorical):
            direction = latent[:, spec.n_numeric + j]
            cum = _skewed_bins(spec, rng)
            # Normal-quantile edges; scipy-free approximation via numpy's
            # percentiles of the sampled direction keeps frequencies exact.
            edges = np.quantile(direction, cum)
            columns.append(np.searchsorted(edges, direction).astype(np.int64))
        categorical = np.stack(columns, axis=1)

    labels = true_class.copy()
    n_flips = round(spec.label_noise * spec.n_rows)
    if n_flips:
        flip_rows = rng.choice(spec.n_rows, size=n_flips, replace=False)
        shift = rng.integers(1, spec.n_labels, size=n_flips)
        labels[flip_rows] = (labels[flip_rows] + shift) % spec.n_labels

    return Table(numeric, categorical, labels)
