"""Missing-value injection mechanisms (paper §5.1 "Datasets").

Three textbook mechanisms (Rubin's taxonomy) are provided:

* **MCAR** — cells go missing uniformly at random;
* **MAR**  — the missing probability of a row depends on an *observed*
  driver attribute;
* **MNAR by importance** — the paper's protocol: the probability that an
  attribute goes missing is proportional to its relative feature importance
  (important attributes are "more sensitive", like income in a survey).

All injectors select ``round(row_rate * n)`` rows to dirty (Table 1 reports
the *row* missing rate, e.g. 20%) and dirty one or more cells inside each
selected row. They return a new dirty table; the input (the ground truth)
is never modified.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import MISSING_CATEGORY, Table
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction

__all__ = ["inject_mcar", "inject_mar", "inject_mnar_by_importance"]


def _select_rows(n_rows: int, row_rate: float, rng: np.random.Generator) -> np.ndarray:
    n_dirty = round(row_rate * n_rows)
    if n_dirty == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(n_rows, size=n_dirty, replace=False)


def _dirty_cells(
    table: Table,
    rows: np.ndarray,
    attribute_probs: np.ndarray,
    cells_per_row: int,
    rng: np.random.Generator,
) -> Table:
    """Blank ``cells_per_row`` attribute cells (sampled by ``attribute_probs``) per row."""
    dirty = table.copy()
    n_features = table.n_features
    cells_per_row = min(cells_per_row, n_features)
    for row in rows:
        attributes = rng.choice(
            n_features, size=cells_per_row, replace=False, p=attribute_probs
        )
        for attribute in attributes:
            if attribute < table.n_numeric:
                dirty.numeric[row, attribute] = np.nan
            else:
                dirty.categorical[row, attribute - table.n_numeric] = MISSING_CATEGORY
    return dirty


def inject_mcar(
    table: Table,
    row_rate: float = 0.2,
    cells_per_row: int = 1,
    seed: int | np.random.Generator | None = None,
) -> Table:
    """Missing Completely At Random: uniform rows, uniform attributes."""
    row_rate = check_fraction(row_rate, "row_rate")
    rng = ensure_rng(seed)
    rows = _select_rows(table.n_rows, row_rate, rng)
    probs = np.full(table.n_features, 1.0 / table.n_features)
    return _dirty_cells(table, rows, probs, cells_per_row, rng)


def inject_mar(
    table: Table,
    row_rate: float = 0.2,
    driver_attribute: int = 0,
    cells_per_row: int = 1,
    seed: int | np.random.Generator | None = None,
) -> Table:
    """Missing At Random: rows with larger driver-attribute values are dirtied.

    The driver attribute itself never goes missing (it stays observed, as
    MAR requires).
    """
    row_rate = check_fraction(row_rate, "row_rate")
    if not 0 <= driver_attribute < table.n_numeric:
        raise ValueError(
            f"driver_attribute must be a numeric attribute index in "
            f"[0, {table.n_numeric}), got {driver_attribute}"
        )
    rng = ensure_rng(seed)
    n_dirty = round(row_rate * table.n_rows)
    driver = table.numeric[:, driver_attribute]
    # Softmax-ish weighting over the driver column; ties broken by noise.
    z = (driver - driver.mean()) / (driver.std() + 1e-12)
    weights = np.exp(z)
    weights /= weights.sum()
    rows = rng.choice(table.n_rows, size=n_dirty, replace=False, p=weights)
    probs = np.zeros(table.n_features)
    eligible = [a for a in range(table.n_features) if a != driver_attribute]
    probs[eligible] = 1.0 / len(eligible)
    return _dirty_cells(table, rows, probs, cells_per_row, rng)


def _cell_weights(
    table: Table, importances: np.ndarray, value_bias: float, value_mode: str
) -> np.ndarray:
    """Per-cell missing propensities: importance times a value-dependent factor.

    For numeric attributes the factor grows with the cell's z-score
    (``value_mode="high"`` — the "high income goes unreported" effect) or
    with its absolute z-score (``value_mode="extreme"`` — outliers are what
    scrapers and sensors drop); for categorical attributes with the
    category's rarity. All variants make naive imputation systematically
    biased, which is the property the paper's MNAR protocol is after.
    """
    if value_mode not in ("high", "extreme"):
        raise ValueError(f"value_mode must be 'high' or 'extreme', got {value_mode!r}")
    n, n_features = table.n_rows, table.n_features
    weights = np.empty((n, n_features))
    for attribute in range(n_features):
        if attribute < table.n_numeric:
            column = table.numeric[:, attribute]
            z = (column - column.mean()) / (column.std() + 1e-12)
            if value_mode == "extreme":
                z = np.abs(z)
            factor = np.exp(value_bias * z)
        else:
            column = table.categorical[:, attribute - table.n_numeric]
            values, counts = np.unique(column, return_counts=True)
            freq = {int(v): c / n for v, c in zip(values, counts)}
            rarity = np.array([1.0 - freq[int(c)] for c in column])
            factor = np.exp(value_bias * rarity)
        weights[:, attribute] = importances[attribute] * factor
    return weights


def inject_mnar_by_importance(
    table: Table,
    importances: np.ndarray,
    row_rate: float = 0.2,
    cells_per_row: int = 1,
    value_bias: float = 1.5,
    value_mode: str = "high",
    seed: int | np.random.Generator | None = None,
) -> Table:
    """The paper's Missing-Not-At-Random protocol.

    ``importances`` is a probability vector over the ``n_features``
    attributes (see :func:`repro.data.importance.feature_importances`);
    more important attributes are proportionally more likely to go missing.
    Within an attribute, extreme values (large z-scores; rare categories)
    are more likely to go missing (``value_bias`` controls the strength, 0
    disables it), so that naive imputation is systematically biased — the
    "Missing Not At Random" assumption of §5.1.
    """
    row_rate = check_fraction(row_rate, "row_rate")
    importances = np.asarray(importances, dtype=np.float64)
    if importances.shape != (table.n_features,):
        raise ValueError(
            f"importances must have shape ({table.n_features},), got {importances.shape}"
        )
    if (importances < 0).any() or importances.sum() <= 0:
        raise ValueError("importances must be non-negative and sum to a positive value")
    if value_bias < 0:
        raise ValueError(f"value_bias must be non-negative, got {value_bias}")
    rng = ensure_rng(seed)

    n_dirty = round(row_rate * table.n_rows)
    if n_dirty == 0:
        return table.copy()
    weights = _cell_weights(table, importances / importances.sum(), value_bias, value_mode)

    # Rows with high total cell propensity are the ones that go dirty.
    row_weights = weights.sum(axis=1)
    row_probs = row_weights / row_weights.sum()
    rows = rng.choice(table.n_rows, size=n_dirty, replace=False, p=row_probs)

    dirty = table.copy()
    cells_per_row = min(cells_per_row, table.n_features)
    for row in rows:
        probs = weights[row] / weights[row].sum()
        attributes = rng.choice(table.n_features, size=cells_per_row, replace=False, p=probs)
        for attribute in attributes:
            if attribute < table.n_numeric:
                dirty.numeric[row, attribute] = np.nan
            else:
                dirty.categorical[row, attribute - table.n_numeric] = MISSING_CATEGORY
    return dirty
