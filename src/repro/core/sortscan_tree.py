"""SS-DC — SortScan with divide-and-conquer support maintenance (Algorithm A.1).

The scan structure is identical to :mod:`repro.core.engine`, but label
supports are maintained in per-label segment trees
(:class:`repro.core.segment_tree.PolySegmentTree`): each scan step updates
one leaf (``O(K^2 log N)``) and evaluates the boundary row's tree with that
row's leaf temporarily replaced by the "must be in top-K" polynomial ``z``.

This is the paper-faithful ``O(NM (log NM + K^2 log N))`` algorithm from
Appendix A.2. The division-based engine produces identical outputs with a
smaller per-step cost; both are kept and cross-validated.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.segment_tree import PolySegmentTree
from repro.core.tally import tallies_with_prediction
from repro.utils.validation import check_positive_int

__all__ = ["sortscan_counts_tree", "LabelTrees"]


class LabelTrees:
    """Per-label segment trees over the rows of that label."""

    def __init__(self, row_labels: np.ndarray, row_counts: np.ndarray, k: int, n_labels: int) -> None:
        self.k = k
        self.n_labels = n_labels
        self.row_counts = row_counts
        self.row_labels = row_labels
        # Position of each row inside its label's tree.
        self.slot = np.zeros(row_labels.shape[0], dtype=np.int64)
        rows_per_label = [0] * n_labels
        for n, label in enumerate(row_labels):
            self.slot[n] = rows_per_label[int(label)]
            rows_per_label[int(label)] += 1
        self.trees = [PolySegmentTree(count, k) for count in rows_per_label]
        # Initially alpha = 0 everywhere: every row's factor is m_n * z.
        for n in range(row_labels.shape[0]):
            tree = self.trees[int(row_labels[n])]
            tree.set_linear_leaf(int(self.slot[n]), 0, int(row_counts[n]))
        self.alpha = np.zeros(row_labels.shape[0], dtype=np.int64)
        # The boundary-query polynomial "z" (base condition 2 of App. A.2).
        self._z_poly = [0] * (k + 1)
        if k >= 1:
            self._z_poly[1] = 1

    def advance(self, row: int) -> None:
        """One more candidate of ``row`` passed the frontier; refresh its leaf."""
        self.alpha[row] += 1
        a = int(self.alpha[row])
        m = int(self.row_counts[row])
        tree = self.trees[int(self.row_labels[row])]
        tree.set_linear_leaf(int(self.slot[row]), a, m - a)

    def coefficients_with_boundary(self, row: int) -> list[list[int]]:
        """Per-label support arrays with ``row`` forced into the top-K.

        For the boundary row's label the tree is evaluated with the row's
        leaf replaced by ``z``; other labels use their maintained roots.
        The returned entry ``[l][c]`` counts placements of exactly ``c``
        label-``l`` rows in the top-K (including the forced boundary row).
        """
        label_of_row = int(self.row_labels[row])
        arrays = []
        for label in range(self.n_labels):
            tree = self.trees[label]
            if label == label_of_row:
                arrays.append(tree.root_with_leaf(int(self.slot[row]), self._z_poly))
            else:
                arrays.append(tree.root())
        return arrays


def sortscan_counts_tree(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
) -> list[int]:
    """Q2 counts via SS-DC (Algorithm A.1); identical outputs to the engine."""
    k = check_positive_int(k, "k")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)

    n_labels = dataset.n_labels
    tallies = tallies_with_prediction(k, n_labels)
    state = LabelTrees(scan.row_labels, scan.row_counts, k, n_labels)
    result = [0] * n_labels

    for position in range(scan.n_candidates):
        i = int(scan.rows[position])
        state.advance(i)
        coeffs = state.coefficients_with_boundary(i)
        y_i = int(scan.row_labels[i])
        for tally, winner in tallies:
            if tally[y_i] < 1:
                continue
            support = 1
            for label, slots in enumerate(tally):
                support *= coeffs[label][slots]
                if support == 0:
                    break
            result[winner] += support
    return result
