"""The fast incremental SortScan engine (the paper's "Efficient Implementation").

Same outputs as :func:`repro.core.sortscan.sortscan_counts_naive`, but instead
of recomputing the label-support DP from scratch for every boundary candidate,
the engine maintains, per label ``l``, the truncated generating polynomial

    ``P_l(z) = prod_{n: y_n = l} (alpha[n] + (m_n - alpha[n]) z)``

across the scan. Each scan step changes exactly one ``alpha[n]`` by one, so
``P_l`` is updated by dividing out the row's old linear factor and
multiplying in the new one — ``O(K)`` exact big-integer operations (see
:mod:`repro.core.polynomials` for why the truncated division is exact).

Rows with ``alpha[n] == 0`` have the factor ``m_n * z`` (they are *forced*
above the boundary); such factors cannot be divided out of a truncated
polynomial, so they are tracked separately as a per-label shift
(``forced_count``) and scalar multiplier (``forced_scale``).

The paper reaches ``O(K^2 log N)`` per step with the divide-and-conquer tree
(Appendix A.2, implemented in :mod:`repro.core.sortscan_tree`); the division
trick used here achieves ``O(K + |Gamma| |Y|)`` per step, which is strictly
better — both are validated against each other and against brute force.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.polynomials import poly_div_linear, poly_mul_linear, poly_one
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.tally import tallies_with_prediction
from repro.utils.validation import check_positive_int

__all__ = ["sortscan_counts", "LabelPolynomials"]


class LabelPolynomials:
    """Per-label generating polynomials maintained incrementally over a scan.

    This is the mutable state shared by the Q2 engine and the CPClean
    entropy engine. ``skip_row`` allows one row to be excluded from the
    polynomials entirely (used when reasoning about hypothetically cleaned
    rows).
    """

    def __init__(
        self,
        row_labels: np.ndarray,
        row_counts: np.ndarray,
        k: int,
        n_labels: int,
        skip_row: int | None = None,
    ) -> None:
        self.k = k
        self.n_labels = n_labels
        self.row_counts = row_counts
        self.row_labels = row_labels
        self.skip_row = skip_row
        self.alpha = np.zeros(row_labels.shape[0], dtype=np.int64)
        self.polys: list[list[int]] = [poly_one(k) for _ in range(n_labels)]
        self.forced_count = [0] * n_labels
        self.forced_scale = [1] * n_labels
        for n in range(row_labels.shape[0]):
            if skip_row is not None and n == skip_row:
                continue
            label = int(row_labels[n])
            self.forced_count[label] += 1
            self.forced_scale[label] *= int(row_counts[n])

    def advance(self, row: int) -> None:
        """Record that the next candidate of ``row`` passed the scan frontier."""
        self.alpha[row] += 1
        if self.skip_row is not None and row == self.skip_row:
            return
        label = int(self.row_labels[row])
        m = int(self.row_counts[row])
        a = int(self.alpha[row])
        if a == 1:
            # The row leaves the forced-above set and gains a real factor.
            self.forced_count[label] -= 1
            self.forced_scale[label] //= m
            self.polys[label] = poly_mul_linear(self.polys[label], 1, m - 1)
        else:
            self.polys[label] = poly_mul_linear(
                poly_div_linear(self.polys[label], a - 1, m - a + 1), a, m - a
            )

    def coefficients_excluding(self, row: int) -> list[list[int]]:
        """Full per-label tally coefficient arrays with ``row`` divided out.

        Entry ``[l][c]`` counts the ways for rows of label ``l`` (excluding
        ``row`` and the engine-wide ``skip_row``) to place exactly ``c``
        members above the current scan frontier. ``row`` must have
        ``alpha[row] >= 1`` (it is the boundary candidate's row, whose
        candidate was just advanced).
        """
        label_of_row = int(self.row_labels[row])
        arrays = []
        for label in range(self.n_labels):
            base = self.polys[label]
            if label == label_of_row and not (self.skip_row is not None and row == self.skip_row):
                a = int(self.alpha[row])
                m = int(self.row_counts[row])
                if a == 0:
                    raise RuntimeError("boundary row must have been advanced before exclusion")
                base = poly_div_linear(base, a, m - a)
            arrays.append(self._shifted(base, label))
        return arrays

    def coefficients(self) -> list[list[int]]:
        """Full per-label tally coefficient arrays (no extra exclusion)."""
        return [self._shifted(self.polys[label], label) for label in range(self.n_labels)]

    def _shifted(self, base: list[int], label: int) -> list[int]:
        """Apply the forced-above shift and scale to a raw polynomial."""
        shift = self.forced_count[label]
        scale = self.forced_scale[label]
        out = [0] * (self.k + 1)
        for c in range(self.k + 1):
            idx = c - shift
            if 0 <= idx <= self.k and base[idx]:
                out[c] = scale * base[idx]
        return out


def sortscan_counts(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
) -> list[int]:
    """Q2 counts via the fast incremental engine.

    Returns ``r`` with ``r[y] = Q2(D, t, y)``; exact big-integer counts that
    sum to the number of possible worlds ``prod_i m_i``.
    """
    k = check_positive_int(k, "k")
    n = dataset.n_rows
    if k > n:
        raise ValueError(f"k={k} exceeds the number of training rows {n}")
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)

    n_labels = dataset.n_labels
    tallies = tallies_with_prediction(k, n_labels)
    state = LabelPolynomials(scan.row_labels, scan.row_counts, k, n_labels)
    result = [0] * n_labels

    for position in range(scan.n_candidates):
        i = int(scan.rows[position])
        state.advance(i)
        coeffs = state.coefficients_excluding(i)
        y_i = int(scan.row_labels[i])
        for tally, winner in tallies:
            if tally[y_i] < 1:
                continue
            support = 1
            for label, slots in enumerate(tally):
                want = slots - 1 if label == y_i else slots
                support *= coeffs[label][want]
                if support == 0:
                    break
            result[winner] += support

    expected_total = math.prod(int(m) for m in scan.row_counts)
    if sum(result) != expected_total:
        raise AssertionError(
            f"internal error: counts sum to {sum(result)} but there are "
            f"{expected_total} possible worlds"
        )
    return result
