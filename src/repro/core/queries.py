"""The public CP query API: Q1 (checking) and Q2 (counting).

This module is the front door to the counting machinery. Since the planner
refactor it is a thin shim over :mod:`repro.core.planner`: every call
builds a :class:`~repro.core.planner.CPQuery` descriptor and routes it
through :func:`~repro.core.planner.plan_query` /
:func:`~repro.core.planner.execute_query`, so single-point queries inherit
the same backend registry (sequential / batch / incremental / sharded) as batch and
cleaning workloads. The per-point algorithms it can force are summarised
in the paper's Figure 4:

=============  =========================  ===============================
query          algorithm                  complexity (per test example)
=============  =========================  ===============================
Q1, binary     ``minmax`` (Algorithm 2)   ``O(NM + N log K)``
Q1, any |Y|    via Q2                     as Q2
Q2             ``engine`` (fast SS)       ``O(NM (K + log NM + |Gamma|))``
Q2             ``tree`` (SS-DC, A.1)      ``O(NM (log NM + K^2 log N))``
Q2             ``multiclass`` (A.3)       ``O(NM (log NM + |Y|^2 K^3))``
Q2             ``naive`` (Algorithm 1)    ``O(N^2 M K |Y|)`` reference
Q2             ``bruteforce``             ``O(M^N)`` oracle
=============  =========================  ===============================

All Q2 backends return identical exact counts; ``algorithm="auto"`` picks
the fast engine for Q2 and MinMax for binary Q1. ``backend="auto"``
(default) lets the planner choose the execution backend; pass
``"sequential"``, ``"batch"``, ``"incremental"`` or ``"sharded"`` to
force one.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.entropy import certain_label_from_counts
from repro.core.kernels import Kernel
from repro.core.minmax import minmax_check, predictable_labels
from repro.core.planner import Q2_ALGORITHMS, execute_query, get_backend, make_query
from repro.utils.validation import check_in_options, check_vector

__all__ = ["q2", "q2_counts", "q1", "certain_label"]

#: Backwards-compatible alias — the algorithm registry moved to the planner.
_Q2_BACKENDS = Q2_ALGORITHMS


def q2_counts(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
    backend: str = "auto",
) -> list[int]:
    """All Q2 counts at once: ``result[y] = Q2(D, t, y)``.

    The entries are exact and sum to the number of possible worlds.
    """
    algorithm = check_in_options(algorithm, "algorithm", ("auto", *Q2_ALGORITHMS))
    # This is the single-point front door: a matrix would silently answer
    # only its first row, so reject it here (batch callers use the planner
    # or batch_q2_counts).
    t = check_vector(t, "t", length=dataset.n_features)
    query = make_query(
        dataset, t, kind="counts", k=k, kernel=kernel, algorithm=algorithm
    )
    return execute_query(query, backend=backend).values[0]


def q2(
    dataset: IncompleteDataset,
    t: np.ndarray,
    label: int,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
    backend: str = "auto",
) -> int:
    """The counting query ``Q2(D, t, label)`` (Definition 5)."""
    counts = q2_counts(dataset, t, k=k, kernel=kernel, algorithm=algorithm, backend=backend)
    if not 0 <= label < len(counts):
        raise ValueError(f"label {label} outside the label space of size {len(counts)}")
    return counts[label]


def q1(
    dataset: IncompleteDataset,
    t: np.ndarray,
    label: int,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
    backend: str = "auto",
) -> bool:
    """The checking query ``Q1(D, t, label)`` (Definition 4).

    ``algorithm="minmax"`` forces Algorithm 2 (binary labels only);
    ``"auto"`` uses MinMax when the dataset is binary and the counting
    engine otherwise.
    """
    algorithm = check_in_options(algorithm, "algorithm", ("auto", "minmax", *Q2_ALGORITHMS))
    if backend != "auto":
        get_backend(backend)  # consistent validation even on the MM shortcut
    if algorithm == "minmax" or (algorithm == "auto" and dataset.n_labels == 2):
        return minmax_check(dataset, t, label, k=k, kernel=kernel)
    counts = q2_counts(
        dataset,
        t,
        k=k,
        kernel=kernel,
        algorithm="auto" if algorithm == "auto" else algorithm,
        backend=backend,
    )
    if not 0 <= label < len(counts):
        raise ValueError(f"label {label} outside the label space of size {len(counts)}")
    return counts[label] == sum(counts)


def certain_label(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
    backend: str = "auto",
) -> int | None:
    """The certainly-predicted label of ``t``, or ``None`` if not CP'ed.

    Convenience wrapper: a test point is CP'ed iff this returns a label.
    """
    algorithm = check_in_options(algorithm, "algorithm", ("auto", "minmax", *Q2_ALGORITHMS))
    if backend != "auto":
        get_backend(backend)  # consistent validation even on the MM shortcut
    if algorithm == "minmax" or (algorithm == "auto" and dataset.n_labels == 2):
        winners = predictable_labels(dataset, t, k=k, kernel=kernel)
        return winners[0] if len(winners) == 1 else None
    counts = q2_counts(
        dataset,
        t,
        k=k,
        kernel=kernel,
        algorithm="auto" if algorithm == "auto" else algorithm,
        backend=backend,
    )
    return certain_label_from_counts(counts)
