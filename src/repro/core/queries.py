"""The public CP query API: Q1 (checking) and Q2 (counting).

This module is the front door to the counting machinery. It dispatches to
the implementation summarised in the paper's Figure 4:

=============  =========================  ===============================
query          algorithm                  complexity (per test example)
=============  =========================  ===============================
Q1, binary     ``minmax`` (Algorithm 2)   ``O(NM + N log K)``
Q1, any |Y|    via Q2                     as Q2
Q2             ``engine`` (fast SS)       ``O(NM (K + log NM + |Gamma|))``
Q2             ``tree`` (SS-DC, A.1)      ``O(NM (log NM + K^2 log N))``
Q2             ``multiclass`` (A.3)       ``O(NM (log NM + |Y|^2 K^3))``
Q2             ``naive`` (Algorithm 1)    ``O(N^2 M K |Y|)`` reference
Q2             ``bruteforce``             ``O(M^N)`` oracle
=============  =========================  ===============================

All Q2 backends return identical exact counts; ``algorithm="auto"`` picks
the fast engine for Q2 and MinMax for binary Q1.
"""

from __future__ import annotations

import numpy as np

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.engine import sortscan_counts
from repro.core.entropy import certain_label_from_counts
from repro.core.kernels import Kernel
from repro.core.minmax import minmax_check, predictable_labels
from repro.core.multiclass import sortscan_counts_multiclass
from repro.core.sortscan import sortscan_counts_naive
from repro.core.sortscan_tree import sortscan_counts_tree
from repro.utils.validation import check_in_options

__all__ = ["q2", "q2_counts", "q1", "certain_label"]

_Q2_BACKENDS = {
    "engine": sortscan_counts,
    "tree": sortscan_counts_tree,
    "multiclass": sortscan_counts_multiclass,
    "naive": sortscan_counts_naive,
    "bruteforce": brute_force_counts,
}


def q2_counts(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
) -> list[int]:
    """All Q2 counts at once: ``result[y] = Q2(D, t, y)``.

    The entries are exact and sum to the number of possible worlds.
    """
    algorithm = check_in_options(algorithm, "algorithm", ("auto", *_Q2_BACKENDS))
    backend = _Q2_BACKENDS["engine" if algorithm == "auto" else algorithm]
    return backend(dataset, t, k=k, kernel=kernel)


def q2(
    dataset: IncompleteDataset,
    t: np.ndarray,
    label: int,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
) -> int:
    """The counting query ``Q2(D, t, label)`` (Definition 5)."""
    counts = q2_counts(dataset, t, k=k, kernel=kernel, algorithm=algorithm)
    if not 0 <= label < len(counts):
        raise ValueError(f"label {label} outside the label space of size {len(counts)}")
    return counts[label]


def q1(
    dataset: IncompleteDataset,
    t: np.ndarray,
    label: int,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
) -> bool:
    """The checking query ``Q1(D, t, label)`` (Definition 4).

    ``algorithm="minmax"`` forces Algorithm 2 (binary labels only);
    ``"auto"`` uses MinMax when the dataset is binary and the counting
    engine otherwise.
    """
    algorithm = check_in_options(algorithm, "algorithm", ("auto", "minmax", *_Q2_BACKENDS))
    if algorithm == "minmax" or (algorithm == "auto" and dataset.n_labels == 2):
        return minmax_check(dataset, t, label, k=k, kernel=kernel)
    counts = q2_counts(
        dataset, t, k=k, kernel=kernel, algorithm="auto" if algorithm == "auto" else algorithm
    )
    if not 0 <= label < len(counts):
        raise ValueError(f"label {label} outside the label space of size {len(counts)}")
    return counts[label] == sum(counts)


def certain_label(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    algorithm: str = "auto",
) -> int | None:
    """The certainly-predicted label of ``t``, or ``None`` if not CP'ed.

    Convenience wrapper: a test point is CP'ed iff this returns a label.
    """
    algorithm = check_in_options(algorithm, "algorithm", ("auto", "minmax", *_Q2_BACKENDS))
    if algorithm == "minmax" or (algorithm == "auto" and dataset.n_labels == 2):
        winners = predictable_labels(dataset, t, k=k, kernel=kernel)
        return winners[0] if len(winners) == 1 else None
    counts = q2_counts(
        dataset, t, k=k, kernel=kernel, algorithm="auto" if algorithm == "auto" else algorithm
    )
    return certain_label_from_counts(counts)
