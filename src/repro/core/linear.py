"""A small logistic-regression substrate for CP beyond nearest neighbours.

The paper's related work points at Khosravi et al. [24], who study the same
"what do all possible models predict?" question for logistic regression.
Exact CP for logistic regression has no known polynomial algorithm; this
classifier exists so the Monte-Carlo CP estimator
(:mod:`repro.core.montecarlo`) has a non-KNN model to drive — and so the
library demonstrates the paper's claim that the *framework* is
classifier-agnostic even where the efficient algorithms are KNN-specific.

Implementation: multinomial logistic regression trained by full-batch
gradient descent with L2 regularisation. Deterministic given its inputs
(zero initialisation), which keeps CP experiments reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Multinomial logistic regression via batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 200,
        l2: float = 1e-3,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        self.learning_rate = float(learning_rate)
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.l2 = float(l2)
        self._weights: np.ndarray | None = None  # (d + 1, n_labels), bias last

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    @staticmethod
    def _with_bias(X: np.ndarray) -> np.ndarray:
        return np.concatenate([X, np.ones((X.shape[0], 1))], axis=1)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        X = self._with_bias(check_matrix(features, "features"))
        y = np.asarray(labels, dtype=np.int64)
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("labels must be a vector matching the number of rows")
        n_labels = int(y.max()) + 1
        onehot = np.zeros((X.shape[0], n_labels))
        onehot[np.arange(X.shape[0]), y] = 1.0

        weights = np.zeros((X.shape[1], n_labels))
        n = X.shape[0]
        for _ in range(self.n_iterations):
            probabilities = self._softmax(X @ weights)
            gradient = X.T @ (probabilities - onehot) / n + self.l2 * weights
            weights -= self.learning_rate * gradient
        self._weights = weights
        return self

    def _require_fitted(self) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        return self._weights

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        weights = self._require_fitted()
        X = self._with_bias(check_matrix(features, "features", n_cols=weights.shape[0] - 1))
        return self._softmax(X @ weights)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(features)
        labels = np.asarray(labels, dtype=np.int64)
        return float(np.mean(predictions == labels))
