"""Monte-Carlo approximation of CP queries for arbitrary classifiers.

The paper's general-case analysis (§2, "Computational Challenge") shows that
without structural assumptions both CP queries require enumerating
``O(M^N)`` worlds, and its "Moving Forward" section calls for *approximate*
algorithms beyond KNN. This module implements that extension: sample
possible worlds uniformly (or from candidate weights), train the given
classifier on each, and estimate

    ``p_y = Q2(D, t, y) / |I_D|``

with a Hoeffding confidence band. Q1 is answered approximately: "certain"
means every sampled world agreed *and* the band excludes disagreement at
the requested confidence.

Works with any classifier factory — the library's KNN (used to validate the
estimator against exact counts) or e.g. the logistic-regression substrate in
:mod:`repro.core.linear`, mirroring the Khosravi et al. line of work the
paper cites.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.worlds import sample_world_choice
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_matrix, check_positive_int

__all__ = ["MonteCarloEstimate", "estimate_prediction_probabilities", "sample_size_for"]

#: A classifier factory: (features, labels) -> object with predict(X) -> labels.
ClassifierFactory = Callable[[np.ndarray, np.ndarray], object]


class MonteCarloEstimate:
    """Sampled prediction distribution for one or more test points."""

    def __init__(self, votes: np.ndarray, n_samples: int, n_labels: int) -> None:
        self.votes = votes  # (n_test, n_labels) vote counts
        self.n_samples = n_samples
        self.n_labels = n_labels

    def probabilities(self) -> np.ndarray:
        """Estimated ``p_y`` per test point, shape ``(n_test, n_labels)``."""
        return self.votes / self.n_samples

    def half_width(self, confidence: float = 0.95) -> float:
        """Two-sided Hoeffding half-width for every estimated probability."""
        confidence = check_fraction(confidence, "confidence", closed=False)
        return math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * self.n_samples))

    def certain_labels(self, confidence: float = 0.95) -> list[int | None]:
        """Per test point: the label all samples agree on (band-checked), else None.

        This is a *one-sided* approximation of Q1: a returned label can
        still be wrong with probability at most ``1 - confidence`` (some
        unsampled world could disagree); ``None`` is always safe.
        """
        epsilon = self.half_width(confidence)
        results: list[int | None] = []
        for row in self.votes:
            winner = int(np.argmax(row))
            unanimous = row[winner] == self.n_samples
            results.append(winner if unanimous and epsilon < 1.0 else None)
        return results


def sample_size_for(epsilon: float, confidence: float = 0.95) -> int:
    """Samples needed for a Hoeffding band of half-width ``epsilon``."""
    epsilon = check_fraction(epsilon, "epsilon", closed=False)
    confidence = check_fraction(confidence, "confidence", closed=False)
    return math.ceil(math.log(2.0 / (1.0 - confidence)) / (2.0 * epsilon**2))


def estimate_prediction_probabilities(
    dataset: IncompleteDataset,
    test_points: np.ndarray,
    classifier_factory: ClassifierFactory,
    n_samples: int = 200,
    seed: int | np.random.Generator | None = None,
) -> MonteCarloEstimate:
    """Estimate the CP distribution of every test point by world sampling.

    ``classifier_factory(features, labels)`` must return a fitted model with
    a ``predict(test_matrix) -> labels`` method; one model is trained per
    sampled world (``n_samples`` trainings in total).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    test_points = check_matrix(test_points, "test_points", n_cols=dataset.n_features)
    rng = ensure_rng(seed)
    n_labels = dataset.n_labels
    votes = np.zeros((test_points.shape[0], n_labels), dtype=np.int64)
    labels = dataset.labels
    for _ in range(n_samples):
        choice = sample_world_choice(dataset, rng)
        model = classifier_factory(dataset.world(choice), labels)
        predictions = np.asarray(model.predict(test_points), dtype=np.int64)
        if predictions.shape != (test_points.shape[0],):
            raise ValueError(
                "classifier predict() must return one label per test point"
            )
        if predictions.min() < 0 or predictions.max() >= n_labels:
            raise ValueError("classifier predicted a label outside the dataset's label space")
        votes[np.arange(test_points.shape[0]), predictions] += 1
    return MonteCarloEstimate(votes, n_samples, n_labels)
