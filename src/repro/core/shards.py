"""Sharded out-of-core CP query execution: bounded tiles, persistent workers.

Every backend before this one materialises the full candidate-distance
state for a query in one process's memory: ``PreparedBatch`` holds the
dense ``(T, P)`` similarity matrix for ``T`` test points over ``P``
stacked candidates, and the sequential path holds one full ``P``-row per
point. That caps the dataset sizes the screening and cleaning loops can
serve. This module is the execution layer that removes the cap, the same
move ProvSQL-style provenance engines make when exact counting must scale:
**tile the evaluation over bounded memory and merge exactly**.

* :func:`plan_tiles` / :class:`TilePlan` split the test-point × candidate
  space into a grid of tiles: at most ``tile_rows`` test points and
  ``tile_candidates`` stacked candidates are resident at once.
* :class:`ShardedExecutor` streams one query family through that grid.
  Per row tile it fills a **shared-memory** similarity buffer candidate
  tile by candidate tile (one bounded ``kernel.pairwise`` call each) and
  evaluates the tile's points from scans built straight off the buffer
  rows. With ``n_jobs > 1`` the per-point evaluations run on a
  **persistent** forked worker pool: the pool is created once per
  execution, the buffer is an anonymous shared mapping
  (``multiprocessing.RawArray``) created before the fork, so every tile
  the parent writes is immediately visible to all workers — the hand-off
  is zero-copy and nothing is pickled per task but a
  ``(global index, buffer row)`` pair. For consumers that want the
  familiar prepared interface over an out-of-core slice,
  :meth:`ShardedExecutor.tile_batch` wraps a streamed tile in a zero-copy
  :class:`~repro.core.batch_engine.PreparedBatch` (the new
  ``sims_matrix=`` hand-off).
* Binary certainty checks never build even a tile-wide scan:
  :meth:`ShardedExecutor.minmax_labels` keeps only per-row min/max
  similarity tallies (``tile_rows × N``), merged **exactly** across
  candidate tiles (min-of-mins / max-of-maxes — associative, no
  floating-point reordering), and decides Q1 from the merged extremes with
  the very same :func:`~repro.core.knn.top_k_rows` /
  :func:`~repro.core.knn.majority_label` calls as the reference MinMax
  path.
* :class:`ShardedBackend` plugs the executor into the planner registry
  under the name ``"sharded"``, serving **all five task flavors** and all
  three kinds. Its cost model prefers tiled execution once the dense
  similarity matrix would exceed ``memory_budget_bytes``, and defers to
  the ``batch`` backend below that threshold.

Memory model: the resident similarity state is one ``tile_rows × P``
buffer (counting needs a point's full candidate row to sort its scan) plus
the ``tile_rows × tile_candidates`` kernel block being filled; the MinMax
path is bounded by ``tile_rows × N`` tallies and the kernel block only.
Tiling is a layout decision, never a semantic one: every value is
bit-identical to the sequential reference for any ``tile_rows``,
``tile_candidates`` and ``n_jobs`` (``tests/core/test_shards.py`` and the
differential harness in ``tests/core/test_backend_differential.py`` hold
the matrix; ``benchmarks/bench_shards.py`` measures the speedups).
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.batch_engine import (
    PreparedBatch,
    QueryResultCache,
    _counts_from_scan,
    kernel_cache_key,
    resolve_n_jobs,
)
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import majority_label, top_k_rows
from repro.core.label_uncertainty import label_uncertain_counts
from repro.core.planner import (
    FLAVORS,
    KINDS,
    Backend,
    BackendCapabilities,
    CPQuery,
    ExecutionOptions,
    _conditioned_weights,
    _counts_to_kind,
    _point_key,
    _prune_enabled,
    _restricted_dataset,
    _scan_kernel_arg,
    _weighted_to_kind,
    _weights_key,
    register_backend,
)
from repro.core.pruning import (
    accumulate_prune_stats,
    empty_prune_stats,
    pruned_counts_from_scan,
    pruned_decision_from_scan,
    pruned_label_uncertain_counts,
    pruned_topk_counts_from_scan,
    pruned_weighted_probabilities,
)
from repro.core.scan import ScanOrder, _scan_from_sims, stack_candidates
from repro.core.topk_prob import topk_inclusion_counts
from repro.core.weighted import weighted_prediction_probabilities
from repro.utils.validation import check_matrix, check_positive_int

__all__ = [
    "DEFAULT_TILE_ROWS",
    "DEFAULT_TILE_CANDIDATES",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "TilePlan",
    "plan_tiles",
    "merge_minmax_block",
    "binary_minmax_label",
    "ShardedExecutor",
    "ShardedBackend",
]

#: Default test points resident per tile.
DEFAULT_TILE_ROWS = 32

#: Default stacked candidates per kernel block.
DEFAULT_TILE_CANDIDATES = 4096

#: Dense-similarity-matrix size above which the cost model prefers tiling.
DEFAULT_MEMORY_BUDGET_BYTES = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# Tile planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TilePlan:
    """The tile grid over one query's test-point × candidate space.

    ``tile_rows`` / ``tile_candidates`` are the *effective* (clamped) tile
    edges; the spans partition both axes exactly, so every (point,
    candidate) pair belongs to exactly one tile regardless of whether the
    boundaries align with a dataset row's candidate segment.
    """

    n_points: int
    n_candidates: int
    tile_rows: int
    tile_candidates: int

    @staticmethod
    def _spans(total: int, size: int) -> tuple[tuple[int, int], ...]:
        return tuple(
            (start, min(start + size, total)) for start in range(0, total, size)
        )

    @property
    def row_tiles(self) -> tuple[tuple[int, int], ...]:
        """``(start, stop)`` spans over the test points."""
        return self._spans(self.n_points, self.tile_rows)

    @property
    def candidate_tiles(self) -> tuple[tuple[int, int], ...]:
        """``(start, stop)`` spans over the stacked candidate order."""
        return self._spans(self.n_candidates, self.tile_candidates)

    @property
    def n_row_tiles(self) -> int:
        return len(self.row_tiles)

    @property
    def n_candidate_tiles(self) -> int:
        return len(self.candidate_tiles)

    @property
    def n_tiles(self) -> int:
        """Total kernel blocks the grid produces."""
        return self.n_row_tiles * self.n_candidate_tiles

    @property
    def tile_buffer_bytes(self) -> int:
        """Bytes of the resident per-row-tile similarity buffer."""
        return self.tile_rows * self.n_candidates * 8

    @property
    def dense_bytes(self) -> int:
        """Bytes the dense (untiled) similarity matrix would occupy."""
        return self.n_points * self.n_candidates * 8


def plan_tiles(
    n_points: int,
    n_candidates: int,
    tile_rows: int = DEFAULT_TILE_ROWS,
    tile_candidates: int = DEFAULT_TILE_CANDIDATES,
) -> TilePlan:
    """Build the :class:`TilePlan` for a workload, validating the knobs.

    Tile edges must be positive; edges larger than the workload collapse to
    one tile on that axis (so any configuration is valid for any dataset).
    """
    if n_points < 0 or n_candidates < 0:
        raise ValueError("n_points and n_candidates must be non-negative")
    tile_rows = check_positive_int(tile_rows, "tile_rows")
    tile_candidates = check_positive_int(tile_candidates, "tile_candidates")
    return TilePlan(
        n_points=n_points,
        n_candidates=n_candidates,
        tile_rows=min(tile_rows, max(n_points, 1)),
        tile_candidates=min(tile_candidates, max(n_candidates, 1)),
    )


# ---------------------------------------------------------------------------
# The exact min/max tally-merge algebra
# ---------------------------------------------------------------------------
#
# These two helpers are the whole of the MinMax "tally" contract: fold
# similarity blocks into per-row extreme tallies (merge), decide Q1 from
# the merged extremes (decision). They are shared by the tile-streaming
# executor below and the partitioned service gateway
# (:mod:`repro.service.gateway`), which merges tallies produced in
# *different processes* — the algebra is what makes that merge lossless.


def merge_minmax_block(
    mins: np.ndarray,
    maxs: np.ndarray,
    block: np.ndarray,
    rows: np.ndarray,
    offsets: np.ndarray,
    c0: int,
    c1: int,
) -> None:
    """Fold one candidate-block of similarities into running min/max tallies.

    ``block`` holds similarities for stacked-candidate positions
    ``[c0, c1)`` (shape ``(n_points, c1 - c0)``); ``rows`` maps each
    stacked position to its dataset row and ``offsets`` is the row →
    first-stacked-position table. ``mins`` / ``maxs`` (shape
    ``(n_points, n_rows)``) are updated in place for the rows the block
    touches. The merge is exact for any block boundaries: min and max are
    associative and commutative, so min-of-mins / max-of-maxes over a row's
    segments equals the min/max over the whole row — no floating-point
    reordering is introduced.
    """
    first = int(rows[c0])
    last = int(rows[c1 - 1])
    starts = (np.maximum(offsets[first : last + 1], c0) - c0).astype(np.intp)
    np.minimum(
        mins[:, first : last + 1],
        np.minimum.reduceat(block, starts, axis=1),
        out=mins[:, first : last + 1],
    )
    np.maximum(
        maxs[:, first : last + 1],
        np.maximum.reduceat(block, starts, axis=1),
        out=maxs[:, first : last + 1],
    )


def binary_minmax_label(
    lo: np.ndarray, hi: np.ndarray, labels: np.ndarray, k: int
) -> int | None:
    """The Q1 verdict for one point from merged per-row extreme tallies.

    ``lo`` / ``hi`` are the per-row min/max similarities (pins already
    applied as ``lo == hi == pinned similarity``). Binary label spaces
    only; uses the very same :func:`~repro.core.knn.top_k_rows` /
    :func:`~repro.core.knn.majority_label` calls as the reference MinMax
    path, so the verdict is bit-identical to it.
    """
    winners = []
    for target in range(2):
        extremes = np.where(labels == target, hi, lo)
        top = top_k_rows(extremes, k)
        if majority_label(labels[top], tally_size=2) == target:
            winners.append(target)
    return winners[0] if len(winners) == 1 else None


# ---------------------------------------------------------------------------
# The persistent-pool plumbing
# ---------------------------------------------------------------------------

#: The executor context of the active pooled run. Set in the parent before
#: the pool forks so workers inherit it; the similarity buffer inside it is
#: an anonymous *shared* mapping, so tiles the parent writes after the fork
#: are visible to every worker without copies or pickling. Guarded by
#: ``_SHARD_LOCK`` for the pool's whole lifetime so two concurrent sharded
#: executions cannot see each other's state.
_SHARD_STATE: Any = None
_SHARD_LOCK = threading.Lock()


def _shard_point_worker(task: tuple[int, int]) -> tuple[int, Any]:
    """Pool worker: evaluate one test point from the shared tile buffer."""
    global_index, buffer_row = task
    return global_index, _SHARD_STATE.run_point(global_index, buffer_row)


class _ShardContext:
    """What a pooled run shares with its workers (by fork, never pickled)."""

    __slots__ = ("buffer", "rows", "cands", "labels", "counts", "evaluate")

    def __init__(self, buffer, rows, cands, labels, counts, evaluate) -> None:
        self.buffer = buffer
        self.rows = rows
        self.cands = cands
        self.labels = labels
        self.counts = counts
        self.evaluate = evaluate

    def run_point(self, global_index: int, buffer_row: int) -> Any:
        scan = _scan_from_sims(
            self.buffer[buffer_row], self.rows, self.cands, self.labels, self.counts
        )
        return self.evaluate(scan, global_index)


# ---------------------------------------------------------------------------
# The tile-streaming executor
# ---------------------------------------------------------------------------


class ShardedExecutor:
    """Streams one ``(dataset, test matrix, k, kernel)`` family tile by tile.

    The executor owns the tile grid and the streaming loops; what to do
    with each point is injected (``evaluate(scan, index)`` for scan-based
    evaluation, or the built-in exact min/max merge for binary certainty).
    Only the requested point indices are evaluated and only their row tiles
    are streamed — a fully cached tile costs nothing.
    """

    def __init__(
        self,
        dataset: IncompleteDataset,
        test_X: np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
        tile_rows: int = DEFAULT_TILE_ROWS,
        tile_candidates: int = DEFAULT_TILE_CANDIDATES,
        n_jobs: int | None = 1,
    ) -> None:
        self.dataset = dataset
        self.k = check_positive_int(k, "k")
        if self.k > dataset.n_rows:
            raise ValueError(
                f"k={self.k} exceeds the number of training rows {dataset.n_rows}"
            )
        self.kernel = resolve_kernel(kernel)
        self.test_X = check_matrix(test_X, "test_X", n_cols=dataset.n_features)
        stacked, rows, cands, counts = stack_candidates(dataset)
        self._stacked = stacked
        self._rows = rows
        self._cands = cands
        self._counts = counts
        self._offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        self._labels = dataset.labels.copy()
        self.plan = plan_tiles(
            int(self.test_X.shape[0]),
            int(rows.shape[0]),
            tile_rows=tile_rows,
            tile_candidates=tile_candidates,
        )
        self.n_jobs = resolve_n_jobs(n_jobs)
        #: Row tiles actually streamed (observability; benchmarks assert on it).
        self.n_tiles_streamed = 0

    @property
    def n_points(self) -> int:
        return self.plan.n_points

    # ------------------------------------------------------------------
    def _fill_tile(self, view: np.ndarray, r0: int, r1: int) -> None:
        """Fill ``view`` with the tile's similarities, one bounded block at a time."""
        tile_X = self.test_X[r0:r1]
        for c0, c1 in self.plan.candidate_tiles:
            view[:, c0:c1] = self.kernel.pairwise(self._stacked[c0:c1], tile_X)

    def _tiles_with(
        self, indices: Iterable[int]
    ) -> list[tuple[tuple[int, int], list[int]]]:
        """The row tiles containing ``indices``, each with its members."""
        size = self.plan.tile_rows
        groups: dict[int, list[int]] = {}
        for index in sorted(set(indices)):
            if not 0 <= index < self.n_points:
                raise IndexError(
                    f"point index {index} out of range for {self.n_points} points"
                )
            groups.setdefault(index // size, []).append(index)
        out = []
        for tile_index in sorted(groups):
            r0 = tile_index * size
            r1 = min(r0 + size, self.n_points)
            out.append(((r0, r1), groups[tile_index]))
        return out

    # ------------------------------------------------------------------
    def map_points(
        self,
        evaluate: Callable[[ScanOrder, int], Any],
        indices: Iterable[int],
    ) -> dict[int, Any]:
        """``evaluate(scan, index)`` for each requested point, tile-streamed.

        The scan order handed to ``evaluate`` is bit-identical to
        ``compute_scan_order(dataset, test_X[index], kernel)`` — same
        similarities (candidate tiling never splits the per-element feature
        reduction), same tie-break. With ``n_jobs > 1`` on a platform that
        can fork, evaluations run on a persistent worker pool reading the
        shared tile buffer; otherwise in process, building the identical
        scans off a private buffer. Results are identical either way.
        """
        tiles = self._tiles_with(indices)
        if not tiles:
            return {}
        n_missing = sum(len(members) for _, members in tiles)
        use_pool = (
            self.n_jobs > 1
            and n_missing > 1
            and sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if not use_pool:
            return self._map_in_process(evaluate, tiles)
        return self._map_pooled(evaluate, tiles, n_missing)

    def _map_in_process(self, evaluate, tiles) -> dict[int, Any]:
        results: dict[int, Any] = {}
        buffer = np.empty((self.plan.tile_rows, self.plan.n_candidates))
        for (r0, r1), members in tiles:
            view = buffer[: r1 - r0]
            self._fill_tile(view, r0, r1)
            for index in members:
                # The same scan construction the pooled workers use — one
                # code path, zero copies off the buffer row.
                scan = _scan_from_sims(
                    view[index - r0], self._rows, self._cands, self._labels, self._counts
                )
                results[index] = evaluate(scan, index)
            self.n_tiles_streamed += 1
        return results

    def tile_batch(self, r0: int, r1: int) -> PreparedBatch:
        """A zero-copy :class:`PreparedBatch` over one streamed row tile.

        Fills a fresh buffer for test points ``[r0, r1)`` and wraps it via
        ``sims_matrix=`` — nothing recomputed, nothing copied. This is the
        hand-off for consumers that want the familiar prepared interface
        (per-point queries, row similarities) over an out-of-core slice;
        the executor's own paths build scans straight off the buffer.
        """
        if not 0 <= r0 < r1 <= self.n_points:
            raise IndexError(
                f"tile [{r0}, {r1}) out of range for {self.n_points} points"
            )
        sims = np.empty((r1 - r0, self.plan.n_candidates))
        self._fill_tile(sims, r0, r1)
        return PreparedBatch(
            self.dataset,
            self.test_X[r0:r1],
            k=self.k,
            kernel=self.kernel,
            sims_matrix=sims,
        )

    def _map_pooled(self, evaluate, tiles, n_missing: int) -> dict[int, Any]:
        global _SHARD_STATE
        results: dict[int, Any] = {}
        with _SHARD_LOCK:
            # An anonymous shared mapping: created before the fork, written
            # by the parent per tile, read by every worker — zero-copy.
            raw = multiprocessing.RawArray(
                "d", self.plan.tile_rows * self.plan.n_candidates
            )
            buffer = np.frombuffer(raw, dtype=np.float64).reshape(
                self.plan.tile_rows, self.plan.n_candidates
            )
            _SHARD_STATE = _ShardContext(
                buffer, self._rows, self._cands, self._labels, self._counts, evaluate
            )
            context = multiprocessing.get_context("fork")
            n_workers = min(self.n_jobs, n_missing)
            pool = context.Pool(processes=n_workers)
            try:
                for (r0, r1), members in tiles:
                    self._fill_tile(buffer[: r1 - r0], r0, r1)
                    tasks = [(index, index - r0) for index in members]
                    # ~4 chunks per worker, as in fanout_map: coarse enough
                    # to amortise queue trips, fine enough to steal work.
                    chunksize = max(1, -(-len(tasks) // (n_workers * 4)))
                    for index, value in pool.imap_unordered(
                        _shard_point_worker, tasks, chunksize=chunksize
                    ):
                        results[index] = value
                    self.n_tiles_streamed += 1
            finally:
                pool.close()
                pool.join()
                _SHARD_STATE = None
        return results

    # ------------------------------------------------------------------
    def minmax_labels(
        self, pins: Mapping[int, int], indices: Iterable[int]
    ) -> dict[int, int | None]:
        """The CP'ed label (or ``None``) per point via exact min/max merging.

        Binary label spaces only. Per candidate tile the per-row extreme
        similarities are tallied with ``reduceat`` over the block's (possibly
        partial) row segments and merged into running ``tile_rows × N``
        min/max tallies — an exact merge, since min and max are associative.
        The merged extremes feed the same top-K/majority decision as
        :meth:`PreparedQuery.certain_label_minmax`, so labels are
        bit-identical to the reference. The full ``P``-wide similarity row
        is never materialised.
        """
        if self.dataset.n_labels != 2:
            raise ValueError("minmax_labels requires a binary label space")
        counts = self._counts
        pin_items = sorted(dict(pins).items())
        for row, cand in pin_items:
            if not 0 <= row < self.dataset.n_rows:
                raise IndexError(
                    f"pinned row {row} out of range for {self.dataset.n_rows} rows"
                )
            if not 0 <= cand < int(counts[row]):
                raise IndexError(
                    f"pinned candidate {cand} out of range for row {row} "
                    f"with {int(counts[row])} candidates"
                )
        pin_positions = [int(self._offsets[row]) + cand for row, cand in pin_items]
        labels = self._labels
        n_rows = self.dataset.n_rows
        results: dict[int, int | None] = {}
        for (r0, r1), members in self._tiles_with(indices):
            height = r1 - r0
            mins = np.full((height, n_rows), np.inf)
            maxs = np.full((height, n_rows), -np.inf)
            pinned_sims = np.empty((height, len(pin_items)))
            for c0, c1 in self.plan.candidate_tiles:
                block = self.kernel.pairwise(
                    self._stacked[c0:c1], self.test_X[r0:r1]
                )
                merge_minmax_block(
                    mins, maxs, block, self._rows, self._offsets, c0, c1
                )
                for slot, position in enumerate(pin_positions):
                    if c0 <= position < c1:
                        pinned_sims[:, slot] = block[:, position - c0]
            for index in members:
                local = index - r0
                lo, hi = mins[local], maxs[local]
                for slot, (row, _) in enumerate(pin_items):
                    lo[row] = hi[row] = pinned_sims[local, slot]
                results[index] = binary_minmax_label(lo, hi, labels, self.k)
            self.n_tiles_streamed += 1
        return results


# ---------------------------------------------------------------------------
# The planner backend
# ---------------------------------------------------------------------------

_MISS = object()


class ShardedBackend(Backend):
    """Tile-streaming out-of-core execution behind the registry name ``sharded``.

    Serves all five task flavors and all three kinds with results
    bit-identical to the sequential reference. Counting and the
    weighted/top-k/label-uncertain flavors evaluate per-point scans built
    from the streamed tile buffer (pooled across ``n_jobs`` workers);
    binary certainty checks use the exact per-tile min/max merge and touch
    no scan at all. Results are cached per point in a fingerprint-keyed
    LRU, so a cleaning session's repeated queries skip their tiles
    entirely.

    ``tile_rows`` / ``tile_candidates`` are defaults a query can override
    through :class:`ExecutionOptions`; ``memory_budget_bytes`` is the
    dense-matrix size above which :meth:`estimate_cost` prefers this
    backend over the dense ``batch`` path.
    """

    name = "sharded"
    capabilities = BackendCapabilities(
        flavors=frozenset(FLAVORS),
        kinds=frozenset(KINDS),
        batchable=True,
        incremental=False,
        exact=True,
        algorithms=frozenset({"auto", "engine"}),
    )

    def __init__(
        self,
        tile_rows: int = DEFAULT_TILE_ROWS,
        tile_candidates: int = DEFAULT_TILE_CANDIDATES,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
        cache_size: int = 4096,
    ) -> None:
        self.tile_rows = check_positive_int(tile_rows, "tile_rows")
        self.tile_candidates = check_positive_int(tile_candidates, "tile_candidates")
        self.memory_budget_bytes = check_positive_int(
            memory_budget_bytes, "memory_budget_bytes"
        )
        self.cache = QueryResultCache(maxsize=cache_size)
        #: Stats of the most recent execution (observability; see benchmarks).
        self.last_stats: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    def _tiling(self, options: ExecutionOptions) -> tuple[int, int]:
        tile_rows = (
            self.tile_rows
            if options.tile_rows is None
            else check_positive_int(options.tile_rows, "tile_rows")
        )
        tile_candidates = (
            self.tile_candidates
            if options.tile_candidates is None
            else check_positive_int(options.tile_candidates, "tile_candidates")
        )
        return tile_rows, tile_candidates

    def estimate_cost(self, query, options):
        jobs = min(resolve_n_jobs(options.n_jobs), max(query.n_points, 1))
        per_point = query.workload_size() / max(query.n_points, 1)
        if query.workload_size() * 8 > self.memory_budget_bytes:
            cost = per_point * (0.55 + 0.45 * query.n_points / jobs)
            return cost, "dense distance state exceeds the memory budget; tile it"
        cost = per_point * (0.7 + 0.5 * query.n_points / jobs)
        return cost, "tile streaming (dense state fits in memory)"

    def _resolve_cache(self, options: ExecutionOptions) -> QueryResultCache | None:
        if options.cache is True:
            return self.cache
        if isinstance(options.cache, QueryResultCache):
            return options.cache
        return None

    # ------------------------------------------------------------------
    def execute(self, query, options=None):
        options = options or ExecutionOptions()
        tile_rows, tile_candidates = self._tiling(options)
        prune = _prune_enabled(query, options)
        totals = empty_prune_stats() if prune else None
        flavor = query.flavor
        if flavor in ("binary", "multiclass"):
            values, scan_dataset, lazy = self._execute_counting(
                query, options, tile_rows, tile_candidates, prune, totals
            )
        elif flavor == "weighted":
            values, scan_dataset, lazy = self._execute_weighted(
                query, options, tile_rows, tile_candidates, prune, totals
            )
        elif flavor == "topk":
            values, scan_dataset, lazy = self._execute_topk(
                query, options, tile_rows, tile_candidates, prune, totals
            )
        else:
            values, scan_dataset, lazy = self._execute_label_uncertain(
                query, options, tile_rows, tile_candidates, prune, totals
            )
        if lazy.executor is not None:
            plan = lazy.executor.plan
            n_tiles_streamed = lazy.executor.n_tiles_streamed
        else:
            # Every point was cache-served: no executor was built (and no
            # candidates stacked); derive the grid for the stats directly.
            plan = plan_tiles(
                query.n_points,
                int(np.sum(scan_dataset.candidate_counts())),
                tile_rows=tile_rows,
                tile_candidates=tile_candidates,
            )
            n_tiles_streamed = 0
        self.last_stats = {
            "flavor": query.flavor,
            "kind": query.kind,
            "n_points": plan.n_points,
            "n_candidates": plan.n_candidates,
            "tile_rows": plan.tile_rows,
            "tile_candidates": plan.tile_candidates,
            "n_row_tiles": plan.n_row_tiles,
            "n_candidate_tiles": plan.n_candidate_tiles,
            "n_tiles_streamed": n_tiles_streamed,
            "tile_buffer_bytes": plan.tile_buffer_bytes,
            "dense_bytes": plan.dense_bytes,
            "prune": prune,
        }
        if totals:
            self.last_stats.update(totals)
        return values

    @staticmethod
    def _strip_stats(
        mapping: Mapping[int, tuple[Any, dict]], totals: dict | None
    ) -> dict[int, Any]:
        """Split pruned ``(value, stats)`` results: fold stats, keep values.

        Keeps the cache layer stats-free, so pruned and unpruned runs share
        entries (their values are bit-identical).
        """
        out: dict[int, Any] = {}
        for index, (value, stats) in mapping.items():
            if totals is not None:
                accumulate_prune_stats(totals, stats)
            out[index] = value
        return out

    # ------------------------------------------------------------------
    def _cached_points(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        tag: str,
        fingerprint: str,
        extra_key: tuple,
        compute: Callable[[list[int]], Mapping[int, Any]],
    ) -> list:
        """Serve per-point values from cache; stream only the missing tiles."""
        cache = self._resolve_cache(options)
        kernel_key = kernel_cache_key(query.kernel)
        n = query.n_points
        results: list = [None] * n
        keys: list[tuple | None] = [None] * n
        missing: list[int] = []
        for index in range(n):
            if cache is not None:
                keys[index] = (
                    tag,
                    fingerprint,
                    _point_key(query.test_X[index]),
                    query.k,
                    kernel_key,
                    extra_key,
                )
                hit = cache.get(keys[index], _MISS)
                if hit is not _MISS:
                    results[index] = list(hit) if isinstance(hit, list) else hit
                    continue
            missing.append(index)
        if missing:
            for index, value in compute(missing).items():
                results[index] = value
                if cache is not None:
                    cache.put(
                        keys[index], list(value) if isinstance(value, list) else value
                    )
        return results

    class _LazyExecutor:
        """Builds the (stacking-heavy) executor only if a point misses the cache."""

        def __init__(self, factory: Callable[[], "ShardedExecutor"]) -> None:
            self._factory = factory
            self.executor: ShardedExecutor | None = None

        def __call__(self) -> "ShardedExecutor":
            if self.executor is None:
                self.executor = self._factory()
            return self.executor

    def _lazy_executor(
        self,
        dataset: IncompleteDataset,
        query: CPQuery,
        options: ExecutionOptions,
        tile_rows: int,
        tile_candidates: int,
    ) -> "ShardedBackend._LazyExecutor":
        return self._LazyExecutor(
            lambda: ShardedExecutor(
                dataset,
                query.test_X,
                k=query.k,
                kernel=query.kernel,
                tile_rows=tile_rows,
                tile_candidates=tile_candidates,
                n_jobs=options.n_jobs,
            )
        )

    # ------------------------------------------------------------------
    def _execute_counting(
        self, query, options, tile_rows, tile_candidates, prune, totals
    ):
        fixed = query.pins_dict()
        fixed_key = tuple(sorted(fixed.items()))
        lazy = self._lazy_executor(
            query.dataset, query, options, tile_rows, tile_candidates
        )
        if query.kind in ("certain_label", "check") and query.dataset.n_labels == 2:
            # The MM shortcut: exact Q1 from merged min/max tallies alone.
            # Pruning never enters — no scan is built to prune.
            labels = self._cached_points(
                query,
                options,
                tag="sh-mm",
                fingerprint=query.fingerprint(),
                extra_key=fixed_key,
                compute=lambda missing: lazy().minmax_labels(fixed, missing),
            )
            if query.kind == "certain_label":
                return labels, query.dataset, lazy
            return [label == query.label for label in labels], query.dataset, lazy

        n_labels = query.dataset.n_labels
        if prune and query.kind in ("certain_label", "check"):
            # Multiclass decisions (binary took the MM branch): the pruned
            # early-terminating decision kernel, cached under its own tag —
            # the verdict carries less information than the counts.
            implementation = _scan_kernel_arg(options)

            def _decide(scan: ScanOrder, index: int) -> tuple[int | None, dict]:
                decision, stats = pruned_decision_from_scan(
                    scan, query.k, n_labels, fixed, implementation=implementation
                )
                return decision.certain_label, stats

            labels = self._cached_points(
                query,
                options,
                tag="sh-q2d",
                fingerprint=query.fingerprint(),
                extra_key=fixed_key,
                compute=lambda missing: self._strip_stats(
                    lazy().map_points(_decide, missing), totals
                ),
            )
            if query.kind == "certain_label":
                return labels, query.dataset, lazy
            return [label == query.label for label in labels], query.dataset, lazy

        if prune:
            compute = lambda missing: self._strip_stats(
                lazy().map_points(
                    lambda scan, index: pruned_counts_from_scan(
                        scan, query.k, n_labels, fixed
                    ),
                    missing,
                ),
                totals,
            )
        else:
            compute = lambda missing: lazy().map_points(
                lambda scan, index: _counts_from_scan(scan, query.k, n_labels, fixed),
                missing,
            )
        counts = self._cached_points(
            query,
            options,
            tag="sh-q2",
            fingerprint=query.fingerprint(),
            extra_key=fixed_key,
            compute=compute,
        )
        return _counts_to_kind(query, counts), query.dataset, lazy

    def _execute_weighted(
        self, query, options, tile_rows, tile_candidates, prune, totals
    ):
        weights = _conditioned_weights(query)
        dataset = query.dataset
        lazy = self._lazy_executor(dataset, query, options, tile_rows, tile_candidates)
        if prune:
            compute = lambda missing: self._strip_stats(
                lazy().map_points(
                    lambda scan, index: pruned_weighted_probabilities(
                        dataset,
                        query.test_X[index],
                        weights,
                        query.k,
                        kernel=query.kernel,
                        scan=scan,
                    ),
                    missing,
                ),
                totals,
            )
        else:
            compute = lambda missing: lazy().map_points(
                lambda scan, index: weighted_prediction_probabilities(
                    dataset,
                    query.test_X[index],
                    k=query.k,
                    weights=weights,
                    kernel=query.kernel,
                    scan=scan,
                ),
                missing,
            )
        probs = self._cached_points(
            query,
            options,
            tag="sh-wt",
            fingerprint=query.fingerprint(),
            extra_key=(_weights_key(weights),),
            compute=compute,
        )
        return _weighted_to_kind(query, probs), dataset, lazy

    def _execute_topk(self, query, options, tile_rows, tile_candidates, prune, totals):
        restricted = _restricted_dataset(query)
        lazy = self._lazy_executor(
            restricted, query, options, tile_rows, tile_candidates
        )
        if prune:
            compute = lambda missing: self._strip_stats(
                lazy().map_points(
                    lambda scan, index: pruned_topk_counts_from_scan(scan, query.k),
                    missing,
                ),
                totals,
            )
        else:
            compute = lambda missing: lazy().map_points(
                lambda scan, index: topk_inclusion_counts(
                    restricted,
                    query.test_X[index],
                    k=query.k,
                    kernel=query.kernel,
                    scan=scan,
                ),
                missing,
            )
        values = self._cached_points(
            query,
            options,
            tag="sh-topk",
            fingerprint=restricted.fingerprint(),
            extra_key=(),
            compute=compute,
        )
        return values, restricted, lazy

    def _execute_label_uncertain(
        self, query, options, tile_rows, tile_candidates, prune, totals
    ):
        restricted = _restricted_dataset(query)
        lazy = self._lazy_executor(
            restricted.feature_dataset, query, options, tile_rows, tile_candidates
        )
        if prune:
            compute = lambda missing: self._strip_stats(
                lazy().map_points(
                    lambda scan, index: pruned_label_uncertain_counts(
                        restricted,
                        query.test_X[index],
                        k=query.k,
                        kernel=query.kernel,
                        scan=scan,
                    ),
                    missing,
                ),
                totals,
            )
        else:
            compute = lambda missing: lazy().map_points(
                lambda scan, index: label_uncertain_counts(
                    restricted,
                    query.test_X[index],
                    k=query.k,
                    kernel=query.kernel,
                    scan=scan,
                ),
                missing,
            )
        counts = self._cached_points(
            query,
            options,
            tag="sh-lu",
            fingerprint=restricted.fingerprint(),
            extra_key=(),
            compute=compute,
        )
        return _counts_to_kind(query, counts), restricted.feature_dataset, lazy


register_backend(ShardedBackend())
