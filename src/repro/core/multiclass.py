"""SS-DC-MC — counting polynomial in the number of classes (Algorithm A.3).

Enumerating label tallies costs ``O(C(|Y|+K-1, K))``, which explodes for
large label spaces. Appendix A.3 replaces the enumeration with a second
dynamic program: for a candidate winning label ``l`` with tally ``c``, count
the assignments of the remaining ``K - c`` top-K slots to the other labels
such that no other label beats ``l``.

Our vote tie-break (smallest label wins) sharpens the paper's "no label has
tally above c" condition into per-label bounds: a label ``l' < l`` must stay
at most ``c - 1`` (it would win ties), while ``l' > l`` may reach ``c``.

The per-label support arrays come from the same incremental polynomial state
as the fast engine, so the overall complexity is
``O(NM (K + log NM + |Y|^2 K^3))`` — polynomial in ``|Y|`` as promised.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.engine import LabelPolynomials
from repro.core.kernels import Kernel
from repro.core.scan import ScanOrder, compute_scan_order
from repro.utils.validation import check_positive_int

__all__ = ["sortscan_counts_multiclass", "count_bounded_assignments"]


def count_bounded_assignments(arrays: list[list[int]], bounds: list[int], total: int) -> int:
    """Ways to pick per-array slot counts summing to ``total`` within ``bounds``.

    ``arrays[j][n]`` is the number of ways the ``j``-th label places exactly
    ``n`` rows in the top-K; ``bounds[j]`` caps that label's tally. This is
    the recurrence ``D`` of Eq. (A.4), evaluated iteratively.
    """
    if total < 0:
        return 0
    # dp[k] = ways for the labels processed so far to fill exactly k slots.
    dp = [0] * (total + 1)
    dp[0] = 1
    for coeffs, bound in zip(arrays, bounds):
        new = [0] * (total + 1)
        limit = min(bound, len(coeffs) - 1)
        for filled in range(total + 1):
            acc = dp[filled]
            if acc == 0:
                continue
            for n in range(0, min(limit, total - filled) + 1):
                ways = coeffs[n]
                if ways:
                    new[filled + n] += acc * ways
        dp = new
    return dp[total]


def sortscan_counts_multiclass(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
) -> list[int]:
    """Q2 counts via SS-DC-MC; identical outputs to the tally-enumeration engines."""
    k = check_positive_int(k, "k")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)

    n_labels = dataset.n_labels
    state = LabelPolynomials(scan.row_labels, scan.row_counts, k, n_labels)
    result = [0] * n_labels

    for position in range(scan.n_candidates):
        i = int(scan.rows[position])
        state.advance(i)
        coeffs = state.coefficients_excluding(i)
        y_i = int(scan.row_labels[i])

        # Full tally distribution per label, accounting for the boundary row
        # (which forces one member of label y_i into the top-K).
        tally_ways: list[list[int]] = []
        for label in range(n_labels):
            if label == y_i:
                shifted = [0] * (k + 1)
                for c in range(1, k + 1):
                    shifted[c] = coeffs[label][c - 1]
                tally_ways.append(shifted)
            else:
                tally_ways.append(coeffs[label])

        for winner in range(n_labels):
            ways_winner = tally_ways[winner]
            others = [tally_ways[label] for label in range(n_labels) if label != winner]
            other_labels = [label for label in range(n_labels) if label != winner]
            for c in range(1, k + 1):
                own = ways_winner[c]
                if own == 0:
                    continue
                bounds = [c - 1 if label < winner else c for label in other_labels]
                assignments = count_bounded_assignments(others, bounds, k - c)
                if assignments:
                    result[winner] += own * assignments
    return result
