"""Parallel batch CP query executor with prepared-distance caching.

The per-point query path (:mod:`repro.core.prepared`,
:mod:`repro.core.engine`) answers one certain-prediction query at a time:
each :class:`~repro.core.prepared.PreparedQuery` recomputes candidate
similarities row by row, sorts them, and runs the SortScan counting loop in
pure Python. That is the right shape for interactive use but not for the
batch workloads this library actually serves — screening a whole test set,
or CPClean re-evaluating the same validation points after every cleaning
step. This module is the batch execution layer above the per-query kernel:

* :class:`PreparedBatch` extends the prepared layer across an entire test
  set: the full candidate-distance matrix is computed in **one** vectorised
  :meth:`~repro.core.kernels.Kernel.pairwise` call over the stacked
  candidate matrix, and per-point scan orders are derived from its rows on
  demand (bit-identical to :func:`repro.core.scan.compute_scan_order`).
* :class:`BatchQueryExecutor` runs the counting query over every test point
  through a tuned scan kernel (:func:`_counts_from_scan` — same exact
  big-integer algorithm as :class:`~repro.core.engine.LabelPolynomials`,
  restructured to avoid per-position allocations and NumPy scalar boxing)
  and can fan the per-point scans out across a ``multiprocessing`` worker
  pool: ``n_jobs`` forked workers pull index chunks from a shared task
  queue (:func:`fanout_map`), inheriting the prepared arrays read-only
  through copy-on-write fork memory, so nothing is pickled per task except
  the tiny result vectors.
* :class:`QueryResultCache` is an LRU result cache keyed by
  ``(dataset fingerprint, test-point hash, k, kernel, pins)``. Repeated
  queries — the common case in CPClean's sequential cleaning loop, which
  re-checks validation certainty round after round — are served without
  recomputation, and any change to the dataset changes its
  :meth:`~repro.core.dataset.IncompleteDataset.fingerprint`, so stale
  entries can never be returned.

All outputs are verified bit-identical to the sequential per-point path
(``tests/core/test_batch_engine.py``); ``benchmarks/bench_batch_engine.py``
measures the speedup on Table 2-style workloads.

Since the planner refactor this module is the substrate of the ``batch``
backend (:class:`repro.core.planner.BatchParallelBackend`), which extends
the same shared-preparation + fan-out + caching treatment to the weighted,
top-k and label-uncertain task flavors; new code should reach it through
:func:`repro.core.planner.execute_query` rather than constructing
executors directly.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import sys
import threading
import uuid
from collections import OrderedDict
from collections.abc import Callable, Iterable, Mapping, Sequence
from functools import lru_cache
from math import prod
from typing import Any

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.entropy import certain_label_from_counts
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import majority_label, top_k_rows
from repro.core.polynomials import poly_one
from repro.core.prepared import PreparedQuery
from repro.core.scan import (
    ScanOrder,
    _scan_from_sims,
    candidate_index_arrays,
    stack_candidates,
)
from repro.core.tally import tallies_with_prediction
from repro.utils.validation import check_matrix, check_positive_int

__all__ = [
    "QueryResultCache",
    "PreparedBatch",
    "BatchQueryExecutor",
    "batch_q2_counts",
    "batch_certain_labels",
    "fanout_map",
    "resolve_n_jobs",
    "kernel_cache_key",
]


# ---------------------------------------------------------------------------
# Worker-pool plumbing
# ---------------------------------------------------------------------------

#: State handed to forked workers. Set by :func:`fanout_map` in the parent
#: immediately before the fork so children inherit it through copy-on-write
#: memory; never pickled, never mutated by workers. Guarded by
#: ``_FANOUT_LOCK`` so concurrent fan-outs (e.g. two executors on different
#: threads) cannot read each other's state.
_FANOUT_STATE: Any = None
_FANOUT_LOCK = threading.Lock()


def get_fanout_state() -> Any:
    """The shared read-only state of the current :func:`fanout_map` call."""
    return _FANOUT_STATE


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request: ``None``/negative means all CPUs."""
    if n_jobs is None or n_jobs < 0:
        return os.cpu_count() or 1
    if n_jobs == 0:
        raise ValueError("n_jobs must be positive, negative (all CPUs) or None")
    return n_jobs


def fanout_map(
    worker: Callable[[Any], Any],
    items: Iterable[Any],
    n_jobs: int | None = 1,
    state: Any = None,
    chunksize: int | None = None,
) -> list[Any]:
    """Apply ``worker`` to every item, optionally across forked processes.

    ``worker`` must be a module-level function; it reads the shared
    ``state`` through :func:`get_fanout_state` (workers inherit it via
    fork, so large arrays are shared read-only rather than pickled). Items
    are distributed in chunks through ``imap_unordered`` — idle workers
    steal the next chunk off the shared queue, so an unlucky chunk of slow
    queries cannot stall the whole batch. Results are returned in
    completion order; workers should tag results with their item when the
    caller needs to reassemble.

    Falls back to an in-process loop when ``n_jobs == 1``, when there is
    nothing to parallelise over, or when the platform cannot fork safely.
    Sharing-by-inheritance is only sound under the ``fork`` start method,
    and bare fork-without-exec is only reliable on Linux (on macOS,
    forked children of a process that has touched Accelerate/Objective-C
    runtimes can abort — the reason CPython made ``spawn`` the default
    there), so the pool is gated to Linux with ``fork`` available.

    Concurrent :func:`fanout_map` calls from different threads are
    serialised on an internal lock — the state hand-off is a process-wide
    slot, and two interleaved fan-outs must not see each other's state.
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    use_pool = (
        n_jobs > 1
        and len(items) > 1
        and sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    )
    global _FANOUT_STATE
    with _FANOUT_LOCK:
        _FANOUT_STATE = state
        try:
            if not use_pool:
                return [worker(item) for item in items]
            context = multiprocessing.get_context("fork")
            n_workers = min(n_jobs, len(items))
            if chunksize is None:
                # ~4 chunks per worker: coarse enough to amortise queue
                # trips, fine enough that work can be stolen when chunks
                # are uneven.
                chunksize = max(1, -(-len(items) // (n_workers * 4)))
            with context.Pool(processes=n_workers) as pool:
                return list(pool.imap_unordered(worker, items, chunksize=chunksize))
        finally:
            _FANOUT_STATE = None


# ---------------------------------------------------------------------------
# The tuned batch counting kernel
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _tally_plans(
    k: int, n_labels: int
) -> tuple[tuple[tuple[int, tuple[tuple[int, int], ...]], ...], ...]:
    """Per boundary-row label: the tally loop, pre-resolved.

    ``plans[y]`` lists ``(winner, wants)`` for every tally with
    ``tally[y] >= 1``, where ``wants`` pairs each label with the
    coefficient index it must contribute (the boundary row's own label
    needs one slot fewer). Hoisting this out of the scan loop removes the
    per-position tally filtering of the reference engine.
    """
    plans = []
    for y in range(n_labels):
        plan = []
        for tally, winner in tallies_with_prediction(k, n_labels):
            if tally[y] < 1:
                continue
            wants = tuple(
                (label, slots - 1 if label == y else slots)
                for label, slots in enumerate(tally)
            )
            plan.append((winner, wants))
        plans.append(tuple(plan))
    return tuple(plans)


def _counts_from_scan(
    scan: ScanOrder,
    k: int,
    n_labels: int,
    fixed: Mapping[int, int] | None = None,
) -> list[int]:
    """Q2 counts from a precomputed scan order — the batch engine's kernel.

    Exactly the incremental algorithm of
    :func:`repro.core.engine.sortscan_counts` /
    :meth:`repro.core.prepared.PreparedQuery.counts` (same big-integer
    polynomial updates in the same order, so results are bit-identical),
    restructured for batch throughput: scan arrays are converted to plain
    Python lists once, the per-position tally loop uses the precomputed
    :func:`_tally_plans`, the linear-factor updates run in place on the
    coefficient lists (no per-step allocations or calls into
    :mod:`repro.core.polynomials`), and the forced-shift bookkeeping is
    applied on the fly instead of materialising shifted coefficient arrays
    at every boundary position. The truncated divisions are exact by
    construction (see :mod:`repro.core.polynomials`); the closing
    sum-over-worlds assertion would catch any violation.
    """
    rows = scan.rows.tolist()
    cands = scan.cands.tolist()
    row_labels = scan.row_labels.tolist()
    counts = scan.row_counts.tolist()
    pinned: list[int] | None = None
    if fixed:
        pinned = [-1] * len(counts)
        for row, cand in fixed.items():
            if not 0 <= cand < counts[row]:
                raise IndexError(
                    f"fixed candidate {cand} out of range for row {row} "
                    f"with {counts[row]} candidates"
                )
            counts[row] = 1
            pinned[row] = cand

    plans = _tally_plans(k, n_labels)
    n = len(row_labels)
    alpha = [0] * n
    polys = [poly_one(k) for _ in range(n_labels)]
    forced_count = [0] * n_labels
    forced_scale = [1] * n_labels
    for i in range(n):
        forced_count[row_labels[i]] += 1
        forced_scale[row_labels[i]] *= counts[i]
    result = [0] * n_labels

    for pos in range(len(rows)):
        i = rows[pos]
        if pinned is not None:
            pin = pinned[i]
            if pin >= 0 and cands[pos] != pin:
                continue
        a = alpha[i] = alpha[i] + 1
        label_i = row_labels[i]
        m = counts[i]
        poly = polys[label_i]
        if a == 1:
            # The row leaves the forced-above set and gains a real factor:
            # poly *= (1 + (m-1) z), in place (descending, so each step
            # reads the not-yet-updated lower coefficient).
            forced_count[label_i] -= 1
            forced_scale[label_i] //= m
            b = m - 1
            for c in range(k, 0, -1):
                poly[c] += b * poly[c - 1]
        else:
            # poly = poly / ((a-1) + (m-a+1) z) * (a + (m-a) z), in place:
            # the exact truncated division runs ascending (each step reads
            # the already-updated lower coefficient), the multiplication
            # descending.
            a0 = a - 1
            b0 = m - a + 1
            poly[0] //= a0
            for c in range(1, k + 1):
                poly[c] = (poly[c] - b0 * poly[c - 1]) // a0
            b = m - a
            for c in range(k, 0, -1):
                poly[c] = a * poly[c] + b * poly[c - 1]
            poly[0] *= a
        # Coefficients with the boundary row's own factor divided out.
        b = m - a
        excluded = [0] * (k + 1)
        excluded[0] = prev = poly[0] // a
        for c in range(1, k + 1):
            excluded[c] = prev = (poly[c] - b * prev) // a
        for winner, wants in plans[label_i]:
            support = 1
            for label, want in wants:
                index = want - forced_count[label]
                if 0 <= index <= k:
                    base = excluded if label == label_i else polys[label]
                    coeff = base[index]
                    if coeff:
                        support *= forced_scale[label] * coeff
                        continue
                support = 0
                break
            if support:
                result[winner] += support

    expected_total = prod(counts)
    if sum(result) != expected_total:
        raise AssertionError(
            f"internal error: counts sum to {sum(result)} but there are "
            f"{expected_total} possible worlds"
        )
    return result


def _counts_worker(index: int) -> tuple[int, list[int]]:
    """Pool worker: count one test point from fork-inherited prepared state."""
    prepared, k, n_labels, fixed = get_fanout_state()
    return index, _counts_from_scan(prepared.scan(index), k, n_labels, fixed)


def _pruned_counts_worker(index: int) -> tuple[int, list[int], dict]:
    """Pool worker: prune-then-count one point straight from the sims row.

    Never touches ``prepared.scan(index)`` — pruning happens *before* the
    sort, which is where the clustered-candidate speedup comes from.
    """
    from repro.core.pruning import pruned_counts_from_sims

    prepared, k, n_labels, fixed = get_fanout_state()
    counts, stats = pruned_counts_from_sims(
        prepared.sims_matrix[index],
        prepared._rows,
        prepared._cands,
        prepared._labels,
        prepared._counts,
        k,
        n_labels,
        fixed,
    )
    return index, counts, stats


def _pruned_decision_worker(index: int) -> tuple[int, int | None, dict]:
    """Pool worker: prune + vectorised decision scan for one point."""
    from repro.core.pruning import pruned_decision_from_sims

    prepared, k, n_labels, fixed, implementation = get_fanout_state()
    decision, stats = pruned_decision_from_sims(
        prepared.sims_matrix[index],
        prepared._rows,
        prepared._cands,
        prepared._labels,
        prepared._counts,
        k,
        n_labels,
        fixed,
        implementation=implementation,
    )
    return index, decision.certain_label, stats


# ---------------------------------------------------------------------------
# The LRU result cache
# ---------------------------------------------------------------------------

_MISS = object()


class QueryResultCache:
    """A bounded LRU cache for CP query results.

    Keys are opaque tuples built by :class:`BatchQueryExecutor` from the
    dataset :meth:`~repro.core.dataset.IncompleteDataset.fingerprint`, the
    test-point hash, ``k``, the kernel and the pinned-row mapping — so a
    hit is only possible for a genuinely identical query, and any change to
    the dataset content invalidates all of its entries by construction.

    One instance can safely be shared across executors (e.g. one cache for
    a whole cleaning session), including across threads — this is the
    contract :class:`repro.service.broker.QueryBroker` relies on. Every
    state transition (lookup + recency bump, insert, LRU eviction, clear,
    the hit/miss counters) happens under one internal lock, so concurrent
    readers and writers can never observe a half-applied eviction or lose
    a counter update; ``tests/core/test_batch_engine.py`` hammers one
    instance from many threads to hold the class to this.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = check_positive_int(maxsize, "maxsize")
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it recently used), or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used on overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> dict[str, int | float]:
        """A snapshot of size and hit/miss counters, for reports and tests."""
        with self._lock:
            size, hits, misses = len(self._entries), self.hits, self.misses
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }


# ---------------------------------------------------------------------------
# PreparedBatch: the vectorised prepared layer
# ---------------------------------------------------------------------------


class PreparedBatch:
    """Shared prepared state for CP queries against an entire test set.

    Extends the per-point prepared layer (:class:`PreparedQuery`): the
    candidate-distance matrix for *all* test points is computed in one
    vectorised kernel call, and per-point scan orders / prepared queries
    are materialised from its rows on demand and cached. All derived state
    is bit-identical to what the per-point path computes, so every consumer
    of :class:`PreparedQuery` can be handed a batch-built instance
    transparently (this is how
    :class:`repro.cleaning.sequential.CleaningSession` gets its queries).
    """

    def __init__(
        self,
        dataset: IncompleteDataset,
        test_X: np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
        sims_matrix: np.ndarray | None = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if self.k > dataset.n_rows:
            raise ValueError(
                f"k={self.k} exceeds the number of training rows {dataset.n_rows}"
            )
        self.dataset = dataset
        self.kernel = resolve_kernel(kernel)
        self.test_X = check_matrix(test_X, "test_X", n_cols=dataset.n_features)
        if sims_matrix is None:
            stacked, rows, cands, counts = stack_candidates(dataset)
        else:
            rows, cands, counts = candidate_index_arrays(dataset)
        self._rows = rows
        self._cands = cands
        self._counts = counts
        # offsets[i] is where row i's candidates start in the stacked order.
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self._labels = dataset.labels.copy()
        if sims_matrix is None:
            # The whole (T, P) candidate-similarity matrix in one kernel call.
            self.sims_matrix = self.kernel.pairwise(stacked, self.test_X)
        else:
            # A caller-computed similarity matrix — the sharded layer hands
            # in views of its streamed tile buffer so a tile-sized
            # PreparedBatch is zero-copy. The caller owns correctness of
            # the values; the shape contract is enforced here.
            sims_matrix = np.asarray(sims_matrix, dtype=np.float64)
            expected = (self.test_X.shape[0], int(rows.shape[0]))
            if sims_matrix.shape != expected:
                raise ValueError(
                    f"sims_matrix must have shape {expected}, got {sims_matrix.shape}"
                )
            self.sims_matrix = sims_matrix
        self._scans: list[ScanOrder | None] = [None] * self.n_points
        self._queries: list[PreparedQuery | None] = [None] * self.n_points

    @property
    def n_points(self) -> int:
        """Number of test points in the batch."""
        return int(self.test_X.shape[0])

    def fingerprint(self) -> str:
        """The underlying dataset's content fingerprint (cache-key component)."""
        return self.dataset.fingerprint()

    # ------------------------------------------------------------------
    def scan(self, index: int) -> ScanOrder:
        """The scan order of test point ``index`` (built lazily, cached).

        Identical to ``compute_scan_order(dataset, test_X[index], kernel)``
        — same similarities, same tie-break — but sorted from the shared
        similarity matrix instead of recomputing distances.
        """
        scan = self._scans[index]
        if scan is None:
            scan = _scan_from_sims(
                self.sims_matrix[index], self._rows, self._cands, self._labels, self._counts
            )
            self._scans[index] = scan
        return scan

    def materialize_scans(self, indices: Sequence[int] | None = None) -> None:
        """Build (and cache) scan orders ahead of a fork.

        Forked pool workers inherit this object copy-on-write, so anything
        they should *share* must exist before the fork — a scan built
        inside a worker would be recomputed per process.
        """
        for index in range(self.n_points) if indices is None else indices:
            self.scan(index)

    def row_sims(self, index: int) -> list[np.ndarray]:
        """Per-row candidate similarities of one point, in candidate order.

        Views into the shared similarity matrix (the layout MinMax checks
        need); no per-point recomputation.
        """
        return np.split(self.sims_matrix[index], self._offsets[1:-1])

    def query(self, index: int) -> PreparedQuery:
        """A :class:`PreparedQuery` for test point ``index`` (cached).

        The instance is indistinguishable from
        ``PreparedQuery(dataset, test_X[index], k, kernel)`` but is built
        from the shared prepared state, skipping the per-point similarity
        pass entirely.
        """
        query = self._queries[index]
        if query is None:
            query = PreparedQuery(
                self.dataset,
                self.test_X[index],
                k=self.k,
                kernel=self.kernel,
                scan=self.scan(index),
                row_sims=self.row_sims(index),
            )
            self._queries[index] = query
        return query

    def queries(self) -> list[PreparedQuery]:
        """All per-point prepared queries (building any not yet materialised)."""
        return [self.query(index) for index in range(self.n_points)]


# ---------------------------------------------------------------------------
# BatchQueryExecutor: cache + fan-out on top of PreparedBatch
# ---------------------------------------------------------------------------


def kernel_cache_key(kernel: Kernel) -> str:
    """A cache-key component identifying the kernel *by value*.

    The key always includes the kernel's concrete class (a subclass that
    merely inherits its parent's parameterised ``__repr__`` must not alias
    the parent's entries — it may compute different similarities). The
    built-in kernels have deterministic value-based reprs
    (``RBFKernel(gamma=2.0)``), so two equal-parameter instances share a
    key. A user-defined kernel that keeps ``object.__repr__`` would be
    keyed by its memory address — and a recycled address could alias two
    different kernels into one cache entry — so such kernels get a
    process-unique token instead: caching still works within one
    executor, but entries are never shared across kernel instances.

    The contract for custom kernels that *do* define ``__repr__``: the
    repr must encode every parameter that changes the similarity values
    (as the built-ins do). Two kernels of the same class whose reprs are
    equal are treated as interchangeable by any shared cache.
    """
    cls = type(kernel)
    identity = f"{cls.__module__}.{cls.__qualname__}"
    if cls.__repr__ is object.__repr__:
        return f"{identity}#{uuid.uuid4().hex}"
    return f"{identity}:{kernel!r}"


#: Backwards-compatible alias (the helper predates the planner making it public).
_kernel_cache_key = kernel_cache_key


class BatchQueryExecutor:
    """Executes CP queries for a whole test set: vectorised, parallel, cached.

    Parameters
    ----------
    dataset, test_X, k, kernel:
        The query family, as in :class:`PreparedQuery` (ignored when
        ``prepared`` is given).
    n_jobs:
        Worker processes for the per-point scan fan-out. ``1`` (default)
        runs in-process; ``None`` or negative uses all CPUs. Parallelism
        requires Linux with the ``fork`` start method and silently
        degrades to in-process execution elsewhere.
    cache:
        ``True`` (default) gives the executor a private
        :class:`QueryResultCache`; pass an instance to share one across
        executors, or ``False``/``None`` to disable result caching.
    prepared:
        An existing :class:`PreparedBatch` to execute against (shares the
        distance matrix with other consumers, e.g. a cleaning session).
    """

    def __init__(
        self,
        dataset: IncompleteDataset | None = None,
        test_X: np.ndarray | None = None,
        k: int = 3,
        kernel: Kernel | str | None = None,
        n_jobs: int | None = 1,
        cache: QueryResultCache | bool | None = True,
        prepared: PreparedBatch | None = None,
    ) -> None:
        if prepared is None:
            if dataset is None or test_X is None:
                raise ValueError("provide either (dataset, test_X) or prepared")
            prepared = PreparedBatch(dataset, test_X, k=k, kernel=kernel)
        self.prepared = prepared
        self.dataset = prepared.dataset
        self.k = prepared.k
        self.kernel = prepared.kernel
        self.n_jobs = resolve_n_jobs(n_jobs)
        if cache is True:
            self.cache: QueryResultCache | None = QueryResultCache()
        elif isinstance(cache, QueryResultCache):
            self.cache = cache
        else:
            self.cache = None
        self._kernel_key = kernel_cache_key(self.kernel)
        self._point_keys = [
            hashlib.sha1(np.ascontiguousarray(t).tobytes()).hexdigest()
            for t in self.prepared.test_X
        ]

    @property
    def n_points(self) -> int:
        """Number of test points in the batch."""
        return self.prepared.n_points

    def _key(self, tag: str, index: int, fixed_key: tuple) -> tuple:
        return (
            tag,
            self.prepared.fingerprint(),
            self._point_keys[index],
            self.k,
            self._kernel_key,
            fixed_key,
        )

    # ------------------------------------------------------------------
    def counts(
        self,
        fixed: Mapping[int, int] | None = None,
        prune: bool = False,
        prune_stats: dict | None = None,
    ) -> list[list[int]]:
        """Exact Q2 counts for every test point, with ``fixed`` rows pinned.

        Equivalent to ``[PreparedQuery(...).counts(fixed) for t in test_X]``
        (bit-identical, tested) but served from the cache where possible,
        and computed with the tuned kernel — fanned out over the worker
        pool when ``n_jobs > 1``.

        With ``prune=True`` the irrelevant-candidate pruning pass runs per
        point *before* the scan sort (see :mod:`repro.core.pruning`); the
        counts are bit-identical, so pruned and unpruned runs share the
        same cache entries. ``prune_stats`` (a dict) accumulates per-point
        pruning telemetry for the points actually computed this call.
        """
        fixed = dict(fixed or {})
        fixed_key = tuple(sorted(fixed.items()))
        results: list[list[int] | None] = [None] * self.n_points
        missing: list[int] = []
        for index in range(self.n_points):
            if self.cache is not None:
                hit = self.cache.get(self._key("q2", index, fixed_key), _MISS)
                if hit is not _MISS:
                    results[index] = list(hit)
                    continue
            missing.append(index)

        if missing:
            n_labels = self.dataset.n_labels
            if prune:
                # The pruned worker reads raw similarity rows; building the
                # sorted scans up front would defeat the point.
                triples = fanout_map(
                    _pruned_counts_worker,
                    missing,
                    n_jobs=self.n_jobs,
                    state=(self.prepared, self.k, n_labels, fixed),
                )
                pairs = self._fold_stats(triples, prune_stats)
            else:
                # Scans must exist before the fork so workers share them
                # copy-on-write instead of rebuilding per process.
                self.prepared.materialize_scans(missing)
                pairs = fanout_map(
                    _counts_worker,
                    missing,
                    n_jobs=self.n_jobs,
                    state=(self.prepared, self.k, n_labels, fixed),
                )
            for index, counts in pairs:
                results[index] = counts
                if self.cache is not None:
                    self.cache.put(self._key("q2", index, fixed_key), list(counts))
        return [list(counts) for counts in results]  # type: ignore[arg-type]

    @staticmethod
    def _fold_stats(
        triples: Iterable[tuple[int, object, dict]],
        prune_stats: dict | None,
    ) -> list[tuple[int, object]]:
        """Strip per-point stats off worker triples, folding them into one dict."""
        from repro.core.pruning import accumulate_prune_stats

        pairs = []
        for index, value, stats in triples:
            if prune_stats is not None:
                accumulate_prune_stats(prune_stats, stats)
            pairs.append((index, value))
        return pairs

    # ------------------------------------------------------------------
    def _minmax_label(self, index: int, fixed: Mapping[int, int]) -> int | None:
        """Vectorised MM check for one point (binary labels only).

        Mirrors :meth:`PreparedQuery.certain_label_minmax`: per-row extreme
        similarities come straight off the shared similarity matrix via
        ``reduceat`` instead of per-row ``min()``/``max()`` calls.
        """
        sims = self.prepared.sims_matrix[index]
        starts = self.prepared._offsets[:-1]
        row_counts = self.prepared._counts
        mins = np.minimum.reduceat(sims, starts)
        maxs = np.maximum.reduceat(sims, starts)
        for row, cand in fixed.items():
            if not 0 <= cand < row_counts[row]:
                raise IndexError(
                    f"fixed candidate {cand} out of range for row {row} "
                    f"with {row_counts[row]} candidates"
                )
            pinned_sim = sims[int(starts[row]) + cand]
            mins[row] = pinned_sim
            maxs[row] = pinned_sim
        labels = self.dataset.labels
        winners = []
        for target in range(2):
            extremes = np.where(labels == target, maxs, mins)
            top = top_k_rows(extremes, self.k)
            if majority_label(labels[top], tally_size=2) == target:
                winners.append(target)
        return winners[0] if len(winners) == 1 else None

    def certain_labels(
        self,
        fixed: Mapping[int, int] | None = None,
        prune: bool = False,
        scan_kernel: str | None = None,
        prune_stats: dict | None = None,
    ) -> list[int | None]:
        """The CP'ed label (or ``None``) of every test point.

        Dispatches exactly like the sequential path: the MM check for
        binary labels, Q2 counts otherwise — so results match
        ``CleaningSession.val_certain_labels`` / ``certain_label`` per
        point bit for bit. ``prune=True`` engages candidate pruning on the
        multiclass path (binary stays on the MM check, which is already a
        maximally early-terminating scan); multiclass decisions then use
        the vectorised decision kernel (``scan_kernel`` selects the
        implementation) under the ``"q2d"`` cache tag, stopping the scan
        as soon as two winners are seen.
        """
        fixed = dict(fixed or {})
        if self.dataset.n_labels != 2:
            if not prune:
                return [
                    certain_label_from_counts(counts) for counts in self.counts(fixed)
                ]
            return self._pruned_decisions(fixed, scan_kernel, prune_stats)
        fixed_key = tuple(sorted(fixed.items()))
        labels: list[int | None] = []
        for index in range(self.n_points):
            key = self._key("mm", index, fixed_key)
            if self.cache is not None:
                hit = self.cache.get(key, _MISS)
                if hit is not _MISS:
                    labels.append(hit)
                    continue
            label = self._minmax_label(index, fixed)
            if self.cache is not None:
                self.cache.put(key, label)
            labels.append(label)
        return labels

    def _pruned_decisions(
        self,
        fixed: dict[int, int],
        scan_kernel: str | None,
        prune_stats: dict | None,
    ) -> list[int | None]:
        """Multiclass decisions via prune + early-terminating decision scan.

        Cached under its own ``"q2d"`` tag: the decision result carries
        less information than the full counts, so it must not shadow
        ``"q2"`` entries.
        """
        fixed_key = tuple(sorted(fixed.items()))
        results: list[int | None] = [None] * self.n_points
        computed = [False] * self.n_points
        missing: list[int] = []
        for index in range(self.n_points):
            if self.cache is not None:
                hit = self.cache.get(self._key("q2d", index, fixed_key), _MISS)
                if hit is not _MISS:
                    results[index] = hit
                    computed[index] = True
                    continue
            missing.append(index)

        if missing:
            triples = fanout_map(
                _pruned_decision_worker,
                missing,
                n_jobs=self.n_jobs,
                state=(self.prepared, self.k, self.dataset.n_labels, fixed, scan_kernel),
            )
            for index, label in self._fold_stats(triples, prune_stats):
                results[index] = label
                computed[index] = True
                if self.cache is not None:
                    self.cache.put(self._key("q2d", index, fixed_key), label)
        if not all(computed):
            raise AssertionError("internal error: unexecuted points in batch")
        return results


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def batch_q2_counts(
    dataset: IncompleteDataset,
    test_X: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    n_jobs: int | None = 1,
    cache: QueryResultCache | bool | None = False,
) -> list[list[int]]:
    """Q2 counts for every row of ``test_X`` through the batch engine.

    One-shot counterpart of ``[q2_counts(dataset, t, k) for t in test_X]``
    with identical results; see :class:`BatchQueryExecutor` for the knobs.
    """
    return BatchQueryExecutor(
        dataset, test_X, k=k, kernel=kernel, n_jobs=n_jobs, cache=cache
    ).counts()


def batch_certain_labels(
    dataset: IncompleteDataset,
    test_X: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    n_jobs: int | None = 1,
    cache: QueryResultCache | bool | None = False,
) -> list[int | None]:
    """The CP'ed label (or ``None``) for every row of ``test_X``.

    One-shot counterpart of ``[certain_label(dataset, t, k) for t in
    test_X]`` with identical results.
    """
    return BatchQueryExecutor(
        dataset, test_X, k=k, kernel=kernel, n_jobs=n_jobs, cache=cache
    ).certain_labels()
