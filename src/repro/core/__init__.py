"""Core CP machinery: data model, KNN substrate, and the query algorithms.

The public entry points are :func:`repro.core.queries.q1`,
:func:`repro.core.queries.q2` / :func:`~repro.core.queries.q2_counts`,
:func:`repro.core.queries.certain_label`, and — for anything beyond a
single point — the unified planner (:func:`repro.core.planner.make_query`,
:func:`~repro.core.planner.plan_query`,
:func:`~repro.core.planner.execute_query` and the backend registry);
everything else is the machinery behind them (see DESIGN.md for the
inventory).
"""

from repro.core.batch_engine import (
    BatchQueryExecutor,
    PreparedBatch,
    QueryResultCache,
    batch_certain_labels,
    batch_q2_counts,
    kernel_cache_key,
)
from repro.core.planner import (
    Backend,
    BackendCapabilities,
    BatchParallelBackend,
    CPQuery,
    ExecutionOptions,
    IncrementalBackend,
    PlanError,
    QueryPlan,
    QueryResult,
    SequentialBackend,
    backend_names,
    capable_backends,
    execute_query,
    get_backend,
    make_query,
    plan_query,
    register_backend,
)
from repro.core.bruteforce import brute_force_check, brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.deltas import (
    CellRepair,
    DeltaMaintainedState,
    RowAppend,
    RowDelete,
    apply_delta_to_dataset,
)
from repro.core.engine import sortscan_counts
from repro.core.incremental import IncrementalCPState
from repro.core.label_uncertainty import (
    LabelUncertainDataset,
    label_uncertain_certain_label,
    label_uncertain_counts,
    label_uncertain_counts_bruteforce,
    label_uncertain_minmax_check,
)
from repro.core.entropy import (
    certain_label_from_counts,
    counts_to_probabilities,
    is_certain_from_counts,
    prediction_entropy,
)
from repro.core.kernels import (
    CosineKernel,
    Kernel,
    LinearKernel,
    NegativeEuclideanKernel,
    RBFKernel,
    resolve_kernel,
)
from repro.core.knn import KNNClassifier, majority_label, top_k_rows
from repro.core.linear import LogisticRegression
from repro.core.minmax import minmax_check, minmax_checks_all, predictable_labels
from repro.core.montecarlo import (
    MonteCarloEstimate,
    estimate_prediction_probabilities,
    sample_size_for,
)
from repro.core.multiclass import sortscan_counts_multiclass
from repro.core.prepared import PreparedQuery
from repro.core.queries import certain_label, q1, q2, q2_counts
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.screening import ScreeningResult, screen_dataset
from repro.core.shards import (
    ShardedBackend,
    ShardedExecutor,
    TilePlan,
    plan_tiles,
)
from repro.core.sortscan import sortscan_counts_naive
from repro.core.sortscan_tree import sortscan_counts_tree
from repro.core.topk_prob import (
    expected_topk_label_histogram,
    most_uncertain_rows,
    topk_inclusion_counts,
    topk_inclusion_probabilities,
)
from repro.core.weighted import (
    condition_weights,
    uniform_candidate_weights,
    weighted_prediction_probabilities,
)
from repro.core.witness import Witness, find_witness

__all__ = [
    "IncompleteDataset",
    "KNNClassifier",
    "majority_label",
    "top_k_rows",
    "Kernel",
    "NegativeEuclideanKernel",
    "RBFKernel",
    "LinearKernel",
    "CosineKernel",
    "resolve_kernel",
    "q1",
    "q2",
    "q2_counts",
    "certain_label",
    "CPQuery",
    "QueryPlan",
    "QueryResult",
    "ExecutionOptions",
    "PlanError",
    "Backend",
    "BackendCapabilities",
    "SequentialBackend",
    "BatchParallelBackend",
    "IncrementalBackend",
    "ShardedBackend",
    "ShardedExecutor",
    "TilePlan",
    "plan_tiles",
    "make_query",
    "plan_query",
    "execute_query",
    "register_backend",
    "get_backend",
    "backend_names",
    "capable_backends",
    "kernel_cache_key",
    "PreparedQuery",
    "PreparedBatch",
    "BatchQueryExecutor",
    "QueryResultCache",
    "batch_q2_counts",
    "batch_certain_labels",
    "ScanOrder",
    "compute_scan_order",
    "brute_force_counts",
    "brute_force_check",
    "sortscan_counts",
    "sortscan_counts_naive",
    "sortscan_counts_tree",
    "sortscan_counts_multiclass",
    "minmax_check",
    "minmax_checks_all",
    "predictable_labels",
    "counts_to_probabilities",
    "prediction_entropy",
    "certain_label_from_counts",
    "is_certain_from_counts",
    "LogisticRegression",
    "MonteCarloEstimate",
    "estimate_prediction_probabilities",
    "sample_size_for",
    "weighted_prediction_probabilities",
    "uniform_candidate_weights",
    "condition_weights",
    "IncrementalCPState",
    "CellRepair",
    "RowAppend",
    "RowDelete",
    "DeltaMaintainedState",
    "apply_delta_to_dataset",
    "LabelUncertainDataset",
    "label_uncertain_counts",
    "label_uncertain_counts_bruteforce",
    "label_uncertain_certain_label",
    "label_uncertain_minmax_check",
    "topk_inclusion_counts",
    "topk_inclusion_probabilities",
    "expected_topk_label_histogram",
    "most_uncertain_rows",
    "ScreeningResult",
    "screen_dataset",
    "Witness",
    "find_witness",
]
