"""Incremental maintenance of CP state across a cleaning session.

CPClean cleans rows one at a time and, after every step, needs fresh Q2
counts for *every* validation point. Recomputing each point from scratch
costs a full SortScan per point. This module maintains the counts
incrementally using an exact pruning rule:

    If a training row can **never** enter the top-K for a test point — its
    most similar candidate is still less similar than the K-th largest of
    the other rows' *guaranteed* (minimum) similarities — then the row's
    candidate choice never affects the prediction in any world. Pinning
    such a row to any candidate divides every Q2 count by exactly ``m_row``.

The division is exact big-integer arithmetic, so the maintained counts stay
bit-for-bit equal to a fresh SortScan (asserted in debug builds and tested
against :class:`~repro.core.prepared.PreparedQuery`). Points where the rule
does not fire fall back to a single-scan recount.

On realistic cleaning workloads most (row, test point) pairs are prunable —
a dirty row is usually far from most validation points — so a cleaning step
touches only a handful of full recounts. :class:`IncrementalCPState` keeps
counters (``n_pruned`` / ``n_recomputed``) so the benchmark
``benchmarks/bench_ablation_incremental.py`` can report the hit rate.

Since the planner refactor this state is a first-class backend: the
``incremental`` entry of the :mod:`repro.core.planner` registry keeps one
instance per query family alive across calls, which is how a
:class:`~repro.cleaning.sequential.CleaningSession` pays one delta update
per cleaning step instead of a full re-preparation
(``benchmarks/bench_planner.py`` measures the resulting steps/sec).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.deltas import row_is_irrelevant
from repro.core.entropy import certain_label_from_counts, prediction_entropy
from repro.core.kernels import Kernel
from repro.core.prepared import PreparedQuery
from repro.core.pruning import (
    accumulate_prune_stats,
    empty_prune_stats,
    pruned_counts_from_scan,
)

__all__ = ["IncrementalCPState"]


class IncrementalCPState:
    """Exact Q2 counts for many test points, maintained across cleaning steps.

    Parameters
    ----------
    dataset:
        The incomplete training set (never mutated; pins are tracked
        internally, mirroring :meth:`IncompleteDataset.restrict_row`).
    test_points:
        The validation points whose counts are maintained, shape
        ``(n_points, d)`` or a sequence of ``(d,)`` vectors.
    k, kernel:
        KNN parameters, as for :func:`repro.core.queries.q2_counts`.
    prune:
        With ``True`` every full (re)count runs through the certificate
        pruning pass of :mod:`repro.core.pruning` first — counts stay
        bit-identical (:meth:`verify` still passes), recounts just touch
        fewer rows. ``prune_stats`` accumulates the per-scan telemetry.
    """

    def __init__(
        self,
        dataset: IncompleteDataset,
        test_points: Sequence[np.ndarray] | np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
        prune: bool = False,
    ) -> None:
        points = np.asarray(test_points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.ndim != 2 or points.shape[1] != dataset.n_features:
            raise ValueError(
                f"test_points must have shape (n_points, {dataset.n_features}), "
                f"got {points.shape}"
            )
        self.dataset = dataset
        self.k = k
        self.prune = bool(prune)
        self.prune_stats = empty_prune_stats()
        self._queries = [PreparedQuery(dataset, points[i], k=k, kernel=kernel) for i in range(points.shape[0])]
        self._fixed: dict[int, int] = {}
        self._counts: list[list[int]] = [
            self._fresh_counts(q, None) for q in self._queries
        ]
        # Per point, per row: min and max candidate similarity (pins collapse
        # both to the pinned similarity).
        self._mins = np.stack([
            np.array([sims.min() for sims in q._row_sims]) for q in self._queries
        ])
        self._maxs = np.stack([
            np.array([sims.max() for sims in q._row_sims]) for q in self._queries
        ])
        self.n_pruned = 0
        self.n_recomputed = 0

    def _fresh_counts(
        self, query: PreparedQuery, fixed: dict[int, int] | None
    ) -> list[int]:
        """One full count of a point: plain scan, or certificate-pruned."""
        if not self.prune:
            return query.counts(fixed)
        counts, stats = pruned_counts_from_scan(
            query._scan, self.k, self.dataset.n_labels, fixed
        )
        accumulate_prune_stats(self.prune_stats, stats)
        return counts

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of maintained test points."""
        return len(self._queries)

    @property
    def fixed(self) -> dict[int, int]:
        """The pins applied so far (row index -> candidate index)."""
        return dict(self._fixed)

    def counts(self, point: int) -> list[int]:
        """Current Q2 counts of test point ``point`` under all pins so far."""
        return list(self._counts[point])

    def counts_all(self) -> list[list[int]]:
        """Current Q2 counts of every maintained point (copies, point order)."""
        return [list(c) for c in self._counts]

    def certain_label(self, point: int) -> int | None:
        """The CP'ed label of point ``point``, or ``None``."""
        return certain_label_from_counts(self._counts[point])

    def entropy(self, point: int) -> float:
        """Prediction entropy of point ``point`` (Equation 3's summand)."""
        return prediction_entropy(self._counts[point])

    def certain_labels(self) -> list[int | None]:
        """CP'ed label per point (``None`` where not certain)."""
        return [certain_label_from_counts(c) for c in self._counts]

    def n_uncertain_points(self) -> int:
        """How many points are not yet CP'ed."""
        return sum(1 for c in self._counts if certain_label_from_counts(c) is None)

    def mean_entropy(self) -> float:
        """The conditional entropy ``H(A_D(Dval) | pins)`` of Equation 3."""
        if not self._counts:
            return 0.0
        return sum(prediction_entropy(c) for c in self._counts) / len(self._counts)

    # ------------------------------------------------------------------
    # The pruning rule
    # ------------------------------------------------------------------
    def _row_irrelevant(self, point: int, row: int) -> bool:
        """True iff ``row`` cannot be in the top-K of ``point`` in any world.

        Criterion: strictly more than ``K - 1`` *other* rows have a
        guaranteed (minimum over remaining candidates) similarity strictly
        above the row's best possible similarity. Then in every world the
        top-K is filled without the row, so its candidate choice never
        changes the prediction. The rule itself lives in
        :func:`repro.core.deltas.row_is_irrelevant`, where the delta layer
        generalises it from pins to appends and deletes.
        """
        return row_is_irrelevant(
            self._mins[point], row, self._maxs[point, row], self.k
        )

    # ------------------------------------------------------------------
    # Cleaning steps
    # ------------------------------------------------------------------
    def pin(self, row: int, candidate: int) -> None:
        """Record that ``row`` was cleaned to its ``candidate``-th value.

        Prunable points get their counts divided by the row's candidate
        count (exact); the rest are recounted with one scan each.
        """
        if row in self._fixed:
            raise ValueError(f"row {row} is already pinned to candidate {self._fixed[row]}")
        m_row = int(self.dataset.candidate_counts()[row])
        if not 0 <= candidate < m_row:
            raise IndexError(
                f"candidate {candidate} out of range for row {row} with {m_row} candidates"
            )
        new_fixed = {**self._fixed, row: candidate}

        for point, query in enumerate(self._queries):
            if m_row == 1:
                self.n_pruned += 1  # nothing can change
            elif self._row_irrelevant(point, row):
                old = self._counts[point]
                divided = [c // m_row for c in old]
                if [c * m_row for c in divided] != old:
                    raise AssertionError(
                        "internal error: pruned counts not divisible by the "
                        f"candidate count {m_row} (point {point}, row {row})"
                    )
                self._counts[point] = divided
                self.n_pruned += 1
            else:
                self._counts[point] = self._fresh_counts(query, new_fixed)
                self.n_recomputed += 1
            # Tighten the similarity envelope either way.
            sim = query._row_sims[row][candidate]
            self._mins[point, row] = sim
            self._maxs[point, row] = sim

        self._fixed = new_fixed

    def pin_many(self, pins: Sequence[tuple[int, int]]) -> None:
        """Apply several ``(row, candidate)`` pins in order."""
        for row, candidate in pins:
            self.pin(row, candidate)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Cross-check every maintained count against a fresh scan (testing aid)."""
        for point, query in enumerate(self._queries):
            fresh = query.counts(self._fixed)
            if fresh != self._counts[point]:
                raise AssertionError(
                    f"incremental counts diverged at point {point}: "
                    f"{self._counts[point]} != {fresh}"
                )
