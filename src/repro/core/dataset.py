"""The incomplete-dataset data model (paper §2, Definitions 1-2).

An :class:`IncompleteDataset` is the paper's ``D = {(C_i, y_i)}``: each
training example ``i`` has a finite *candidate set* ``C_i`` of possible
feature vectors and a known class label ``y_i``. A row with a single
candidate is *certain* (clean); a row with several candidates is *uncertain*
(dirty). The cross product of all candidate choices induces the set of
possible worlds (see :mod:`repro.core.worlds`).

Candidate sets are ragged: each row may have a different number of
candidates. The paper's uniform-``M`` setting is the special case in which
every dirty row has exactly ``M`` candidates.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Sequence

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["IncompleteDataset"]


class IncompleteDataset:
    """An incomplete training set ``D = {(C_i, y_i)}``.

    Parameters
    ----------
    candidate_sets:
        A sequence of ``N`` arrays; entry ``i`` has shape ``(m_i, d)`` and
        lists the candidate feature vectors of row ``i``. ``m_i >= 1``.
    labels:
        Integer class labels of shape ``(N,)``; labels are assumed to be
        ``0 .. n_labels-1`` (use :meth:`from_arrays` helpers upstream to
        encode arbitrary labels).

    Notes
    -----
    Instances are treated as immutable by the query engines; the cleaning
    code derives new datasets via :meth:`with_row_fixed` /
    :meth:`restrict_row` instead of mutating in place.
    """

    def __init__(self, candidate_sets: Sequence[np.ndarray], labels: Sequence[int]) -> None:
        if len(candidate_sets) == 0:
            raise ValueError("an incomplete dataset needs at least one row")
        labels_arr = np.asarray(labels, dtype=np.int64)
        if labels_arr.ndim != 1 or labels_arr.shape[0] != len(candidate_sets):
            raise ValueError(
                f"labels must be a vector of length {len(candidate_sets)}, "
                f"got shape {labels_arr.shape}"
            )
        if labels_arr.min() < 0:
            raise ValueError("labels must be non-negative integers")

        first = check_matrix(candidate_sets[0], "candidate_sets[0]")
        dim = first.shape[1]
        sets: list[np.ndarray] = []
        for i, cand in enumerate(candidate_sets):
            matrix = check_matrix(cand, f"candidate_sets[{i}]", n_cols=dim)
            if matrix.shape[0] < 1:
                raise ValueError(f"candidate_sets[{i}] must contain at least one candidate")
            matrix = matrix.copy()
            matrix.setflags(write=False)
            sets.append(matrix)

        self._candidate_sets = sets
        self._labels = labels_arr.copy()
        self._labels.setflags(write=False)
        self._dim = dim
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of training examples ``N``."""
        return len(self._candidate_sets)

    @property
    def n_features(self) -> int:
        """Feature dimensionality ``d``."""
        return self._dim

    @property
    def labels(self) -> np.ndarray:
        """Read-only label vector of shape ``(N,)``."""
        return self._labels

    @property
    def n_labels(self) -> int:
        """Size of the label space ``|Y|`` (``max label + 1``)."""
        return int(self._labels.max()) + 1

    def candidates(self, row: int) -> np.ndarray:
        """The candidate set ``C_row`` as a read-only ``(m_row, d)`` array."""
        return self._candidate_sets[row]

    def candidate_counts(self) -> np.ndarray:
        """Vector of candidate-set sizes ``m_i`` for every row."""
        return np.array([c.shape[0] for c in self._candidate_sets], dtype=np.int64)

    def label_of(self, row: int) -> int:
        """The (certain) label ``y_row``."""
        return int(self._labels[row])

    def is_certain(self, row: int) -> bool:
        """True iff row ``row`` has exactly one candidate."""
        return self._candidate_sets[row].shape[0] == 1

    def uncertain_rows(self) -> list[int]:
        """Indices of rows with more than one candidate (dirty rows)."""
        return [i for i, c in enumerate(self._candidate_sets) if c.shape[0] > 1]

    def certain_rows(self) -> list[int]:
        """Indices of rows with exactly one candidate (clean rows)."""
        return [i for i, c in enumerate(self._candidate_sets) if c.shape[0] == 1]

    @property
    def n_uncertain(self) -> int:
        """Number of dirty rows."""
        return len(self.uncertain_rows())

    def n_worlds(self) -> int:
        """Exact number of possible worlds ``|I_D| = prod_i m_i`` (big int)."""
        return math.prod(int(c.shape[0]) for c in self._candidate_sets)

    def fingerprint(self) -> str:
        """A content hash of the dataset (candidates + labels), hex-encoded.

        Two datasets with identical candidate sets and labels share a
        fingerprint; any change to a candidate value, a candidate-set size
        or a label produces a different one. Instances are immutable, so
        the hash is computed once and cached — the batch engine uses it to
        key its cross-query result cache
        (:class:`repro.core.batch_engine.QueryResultCache`).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(np.int64(self.n_rows).tobytes())
            digest.update(self._labels.tobytes())
            for candidates in self._candidate_sets:
                digest.update(np.int64(candidates.shape[0]).tobytes())
                digest.update(np.ascontiguousarray(candidates).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"IncompleteDataset(n_rows={self.n_rows}, n_features={self.n_features}, "
            f"n_labels={self.n_labels}, n_uncertain={self.n_uncertain})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_complete(cls, features: np.ndarray, labels: Sequence[int]) -> "IncompleteDataset":
        """Wrap a complete dataset: every row gets a singleton candidate set."""
        matrix = check_matrix(features, "features")
        return cls([matrix[i : i + 1] for i in range(matrix.shape[0])], labels)

    # ------------------------------------------------------------------
    # Derivation (used by cleaning)
    # ------------------------------------------------------------------
    def with_row_fixed(self, row: int, value: np.ndarray) -> "IncompleteDataset":
        """A copy of the dataset in which row ``row`` is certain with ``value``.

        ``value`` must be one of the row's candidates (the *valid dataset*
        assumption of §2: the true value is always in the candidate set).
        """
        value = np.asarray(value, dtype=np.float64).reshape(-1)
        if value.shape[0] != self._dim:
            raise ValueError(f"value must have {self._dim} features, got {value.shape[0]}")
        if not any(np.array_equal(value, cand) for cand in self._candidate_sets[row]):
            raise ValueError(
                f"value is not among the {self._candidate_sets[row].shape[0]} "
                f"candidates of row {row} (the dataset would become invalid)"
            )
        sets = list(self._candidate_sets)
        sets[row] = value.reshape(1, -1)
        return IncompleteDataset(sets, self._labels)

    def restrict_row(self, row: int, candidate_index: int) -> "IncompleteDataset":
        """A copy with row ``row`` restricted to its ``candidate_index``-th candidate."""
        cands = self._candidate_sets[row]
        if not 0 <= candidate_index < cands.shape[0]:
            raise IndexError(
                f"candidate_index {candidate_index} out of range for row {row} "
                f"with {cands.shape[0]} candidates"
            )
        sets = list(self._candidate_sets)
        sets[row] = cands[candidate_index : candidate_index + 1]
        return IncompleteDataset(sets, self._labels)

    def append_row(self, candidates: np.ndarray, label: int) -> "IncompleteDataset":
        """A copy with a new row appended (candidate set + certain label).

        The row lands at index ``n_rows``; existing indices are unchanged.
        Used by :class:`repro.core.deltas.RowAppend`.
        """
        matrix = check_matrix(candidates, "candidates", n_cols=self._dim)
        if matrix.shape[0] < 1:
            raise ValueError("an appended row needs at least one candidate")
        label = int(label)
        if label < 0:
            raise ValueError(f"labels must be non-negative integers, got {label}")
        sets = list(self._candidate_sets) + [matrix]
        labels = np.append(self._labels, np.int64(label))
        return IncompleteDataset(sets, labels)

    def delete_row(self, row: int) -> "IncompleteDataset":
        """A copy with row ``row`` removed (later rows shift down by one).

        Used by :class:`repro.core.deltas.RowDelete`.
        """
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range for {self.n_rows} rows")
        if self.n_rows == 1:
            raise ValueError("cannot delete the last row of a dataset")
        sets = [c for i, c in enumerate(self._candidate_sets) if i != row]
        labels = np.delete(self._labels, row)
        return IncompleteDataset(sets, labels)

    def world(self, choice: Sequence[int]) -> np.ndarray:
        """Materialise the possible world selecting ``choice[i]`` from ``C_i``.

        Returns the ``(N, d)`` feature matrix of the world; labels are shared
        across worlds and available via :attr:`labels`.
        """
        if len(choice) != self.n_rows:
            raise ValueError(f"choice must have length {self.n_rows}, got {len(choice)}")
        rows = []
        for i, j in enumerate(choice):
            cands = self._candidate_sets[i]
            if not 0 <= j < cands.shape[0]:
                raise IndexError(f"choice[{i}]={j} out of range (row has {cands.shape[0]} candidates)")
            rows.append(cands[j])
        return np.stack(rows, axis=0)
