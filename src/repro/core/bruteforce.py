"""Brute-force answers to the CP queries by world enumeration (paper §2).

This is the paper's "naive algorithm": iterate over every possible world,
train the classifier, predict, and tally. Its cost is ``O(M^N)``, so it only
serves as the *ground-truth oracle* for testing the polynomial-time SS and MM
algorithms on small instances.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import KNNClassifier
from repro.core.worlds import DEFAULT_MAX_WORLDS, iter_worlds
from repro.utils.validation import check_positive_int, check_vector

__all__ = ["brute_force_counts", "brute_force_check"]


def brute_force_counts(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> list[int]:
    """Exact ``Q2`` by enumeration: ``result[y]`` counts worlds predicting ``y``.

    The returned list has one entry per label in ``0 .. dataset.n_labels-1``
    and sums to the total number of possible worlds.
    """
    k = check_positive_int(k, "k")
    t = check_vector(t, "t", length=dataset.n_features)
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    kernel = resolve_kernel(kernel)

    counts = [0] * dataset.n_labels
    labels = dataset.labels
    for _choice, features in iter_worlds(dataset, max_worlds=max_worlds):
        clf = KNNClassifier(k=k, kernel=kernel).fit(features, labels)
        counts[clf.predict_one(t)] += 1
    return counts


def brute_force_check(
    dataset: IncompleteDataset,
    t: np.ndarray,
    label: int,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> bool:
    """Exact ``Q1`` by enumeration: true iff every world predicts ``label``."""
    counts = brute_force_counts(dataset, t, k=k, kernel=kernel, max_worlds=max_worlds)
    if not 0 <= label < len(counts):
        raise ValueError(f"label {label} outside the label space of size {len(counts)}")
    total = sum(counts)
    return counts[label] == total
