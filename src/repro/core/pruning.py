"""Exactness-preserving candidate pruning with per-row certificates.

Before a counting scan touches a single polynomial, one vectorised pass
over the candidate similarities can prove that most rows are *irrelevant*:
row ``r`` can never enter any world's top-K set when at least ``k`` other
rows' **worst-case** similarity strictly dominates ``r``'s **best-case**
similarity — in every world those ``k`` rows rank strictly above every
candidate of ``r`` (strict dominance beats any tie-break). This is the
same irrelevance rule the delta-maintenance layer uses for update pruning
(:func:`repro.core.deltas.row_is_irrelevant`), promoted to a first-class
pre-scan pass with an explicit, checkable certificate.

Dropping an irrelevant row is exact, not approximate:

* *membership*: the top-K set of every world is contained in the kept
  rows, so the per-world prediction — and for top-K queries, every kept
  row's membership indicator — is a function of the kept rows' candidate
  choices alone;
* *counting*: each pruned row contributes a free factor of its world
  multiplicity (its candidate count, times its label-set size for
  label-uncertain data), so the full counts equal the reduced-problem
  counts times one exact big-integer ``scale``. Probabilistic (weighted)
  queries marginalise the pruned rows to a factor of exactly 1, so the
  reduced :class:`~fractions.Fraction` probabilities *are* the full ones;
* *order*: kept rows are re-indexed monotonically, so the scan tie-break
  ``(similarity, row desc, cand desc)`` orders the kept positions exactly
  as before and the reduced scan is the subsequence of the original one.

``tests/fuzz/test_pruning.py`` holds both halves of the certificate to the
brute-force world oracle: pruned rows never appear in any world's top-K,
and every query answer is bit-identical with pruning on or off.

The reduced scans feed the exact counting kernels
(:func:`repro.core.batch_engine._counts_from_scan` and friends) for
``counts`` queries, and the vectorised decision kernels of
:mod:`repro.core.scan_kernels` — the generalized Fig-9 early-termination
scan — for ``certain_label``/``check`` queries.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.batch_engine import _counts_from_scan
from repro.core.dataset import IncompleteDataset
from repro.core.scan import ScanOrder
from repro.core.scan_kernels import DecisionScan, decision_winners

__all__ = [
    "PruneCertificate",
    "interval_arrays",
    "batch_interval_arrays",
    "prune_mask",
    "certificate_from_intervals",
    "apply_pins_to_scan",
    "restrict_scan",
    "positive_support_scan",
    "pruned_counts_from_scan",
    "pruned_decision_from_scan",
    "pruned_counts_from_sims",
    "pruned_decision_from_sims",
    "empty_prune_stats",
    "accumulate_prune_stats",
    "pruned_topk_counts_from_scan",
    "pruned_weighted_probabilities",
    "pruned_weighted_decision",
    "pruned_label_uncertain_counts",
    "pruned_label_uncertain_decision",
]


# ---------------------------------------------------------------------------
# Similarity intervals
# ---------------------------------------------------------------------------


def interval_arrays(scan: ScanOrder) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``[min, max]`` candidate similarity of an *effective* scan.

    The scan must have pins folded (every position active), so a pinned
    row's single remaining position collapses its interval to a point.
    """
    n = scan.n_rows
    mins = np.full(n, np.inf, dtype=np.float64)
    maxs = np.full(n, -np.inf, dtype=np.float64)
    np.minimum.at(mins, scan.rows, scan.sims)
    np.maximum.at(maxs, scan.rows, scan.sims)
    return mins, maxs


def batch_interval_arrays(
    sims_matrix: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row intervals for *every* test point at once from a similarity matrix.

    ``sims_matrix`` is the ``(T, P)`` candidate-order similarity matrix of a
    :class:`~repro.core.batch_engine.PreparedBatch`; ``offsets`` its row
    segment starts (``offsets[r]:offsets[r+1]`` is row ``r``). Returns
    ``(mins, maxs)`` of shape ``(T, N)`` — one ``reduceat`` per extreme, no
    per-point work.
    """
    starts = np.asarray(offsets[:-1], dtype=np.intp)
    mins = np.minimum.reduceat(sims_matrix, starts, axis=1)
    maxs = np.maximum.reduceat(sims_matrix, starts, axis=1)
    return mins, maxs


def prune_mask(mins: np.ndarray, maxs: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of provably irrelevant rows.

    Row ``r`` is prunable iff at least ``k`` other rows have
    ``min > maxs[r]``. The self term never fires (``mins[r] <= maxs[r]``),
    so one sort plus one ``searchsorted`` answers all rows at once. The
    rule is exactly :func:`repro.core.deltas.row_is_irrelevant`,
    vectorised.
    """
    sorted_mins = np.sort(mins)
    n_dominating = mins.shape[0] - np.searchsorted(sorted_mins, maxs, side="right")
    return n_dominating >= k


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class PruneCertificate:
    """Witness that dropping ``pruned_rows`` cannot change any answer.

    ``scale`` is the exact number of free world choices the pruned rows
    contribute (product of their world multiplicities — 1 for probability
    queries, where the pruned mass marginalises to 1). ``row_mins`` /
    ``row_maxs`` are the intervals the certificate was issued from;
    :meth:`verify` re-derives the domination argument from them.
    """

    k: int
    keep_rows: np.ndarray
    pruned_rows: np.ndarray
    scale: int
    row_mins: np.ndarray
    row_maxs: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(self.row_mins.shape[0])

    @property
    def n_kept(self) -> int:
        return int(self.keep_rows.shape[0])

    @property
    def n_pruned(self) -> int:
        return int(self.pruned_rows.shape[0])

    def verify(self) -> None:
        """Re-check the domination argument; raises ``AssertionError`` if broken."""
        kept_mins = self.row_mins[self.keep_rows]
        for row in self.pruned_rows.tolist():
            dominated_by = int(np.sum(kept_mins > self.row_maxs[row]))
            if dominated_by < self.k:
                raise AssertionError(
                    f"certificate broken: pruned row {row} is dominated by only "
                    f"{dominated_by} kept rows (need >= {self.k})"
                )
        if self.n_kept < self.k:
            raise AssertionError(
                f"certificate broken: only {self.n_kept} kept rows for k={self.k}"
            )


def certificate_from_intervals(
    mins: np.ndarray,
    maxs: np.ndarray,
    k: int,
    world_counts: Sequence[int] | np.ndarray,
) -> PruneCertificate:
    """Issue a :class:`PruneCertificate` from per-row similarity intervals.

    ``world_counts[r]`` is the world multiplicity the scale absorbs when
    row ``r`` is pruned. The ``k`` rows with the largest worst-case
    similarity can never be pruned (at most ``k - 1`` rows sit strictly
    above any of them), so at least ``k`` rows are always kept.
    """
    n = int(mins.shape[0])
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} rows")
    mask = prune_mask(mins, maxs, k)
    pruned = np.flatnonzero(mask)
    keep = np.flatnonzero(~mask)
    scale = math.prod(int(world_counts[row]) for row in pruned.tolist())
    return PruneCertificate(
        k=k,
        keep_rows=keep,
        pruned_rows=pruned,
        scale=scale,
        row_mins=mins,
        row_maxs=maxs,
    )


# ---------------------------------------------------------------------------
# Scan surgery
# ---------------------------------------------------------------------------


def apply_pins_to_scan(scan: ScanOrder, fixed: Mapping[int, int] | None) -> ScanOrder:
    """Fold pins into the scan: drop non-pinned positions, set counts to 1.

    The counting kernels treat a pin by skipping inactive positions; this
    produces the identical effective problem as an explicit (sub)scan, so
    downstream passes need no pin bookkeeping at all.
    """
    if not fixed:
        return scan
    counts = scan.row_counts.copy()
    pinned = np.full(scan.n_rows, -1, dtype=np.int64)
    for row, cand in fixed.items():
        if not 0 <= cand < counts[row]:
            raise IndexError(
                f"fixed candidate {cand} out of range for row {row} "
                f"with {counts[row]} candidates"
            )
        pinned[row] = cand
        counts[row] = 1
    row_pins = pinned[scan.rows]
    active = (row_pins < 0) | (scan.cands == row_pins)
    return ScanOrder(
        rows=scan.rows[active],
        cands=scan.cands[active],
        sims=scan.sims[active],
        row_labels=scan.row_labels,
        row_counts=counts,
    )


def restrict_scan(scan: ScanOrder, keep_rows: np.ndarray) -> ScanOrder:
    """The scan restricted to ``keep_rows``, with rows re-indexed.

    Keeps the original position order — a subsequence of a total order is
    that total order on the subset, and the monotone row re-indexing
    preserves the ``(similarity, row desc, cand desc)`` tie-break.
    """
    keep_mask = np.zeros(scan.n_rows, dtype=bool)
    keep_mask[keep_rows] = True
    new_index = np.cumsum(keep_mask) - 1
    position_mask = keep_mask[scan.rows]
    return ScanOrder(
        rows=new_index[scan.rows[position_mask]],
        cands=scan.cands[position_mask],
        sims=scan.sims[position_mask],
        row_labels=scan.row_labels[keep_mask],
        row_counts=scan.row_counts[keep_mask],
    )


def positive_support_scan(
    scan: ScanOrder, weights: Sequence[Sequence[Fraction]]
) -> tuple[ScanOrder, list[list[Fraction]]]:
    """Drop zero-weight candidates; re-index surviving candidates per row.

    Worlds containing a zero-weight candidate have probability 0, so the
    positive-support problem has identical probabilities — and pins
    conditioned into point-mass weights are subsumed by this filter. Each
    surviving row's weights still sum to exactly 1.
    """
    positive = np.fromiter(
        (weights[int(r)][int(c)] > 0 for r, c in zip(scan.rows, scan.cands)),
        dtype=bool,
        count=scan.n_candidates,
    )
    counts = scan.row_counts.copy()
    new_cands = scan.cands.copy()
    reduced_weights: list[list[Fraction]] = []
    for row, row_weights in enumerate(weights):
        keep = [j for j, w in enumerate(row_weights) if w > 0]
        counts[row] = len(keep)
        reduced_weights.append([row_weights[j] for j in keep])
        rank = {j: new_j for new_j, j in enumerate(keep)}
        row_positions = np.flatnonzero((scan.rows == row) & positive)
        new_cands[row_positions] = [rank[int(c)] for c in scan.cands[row_positions]]
    reduced = ScanOrder(
        rows=scan.rows[positive],
        cands=new_cands[positive],
        sims=scan.sims[positive],
        row_labels=scan.row_labels,
        row_counts=counts,
    )
    return reduced, reduced_weights


# ---------------------------------------------------------------------------
# Stats plumbing
# ---------------------------------------------------------------------------

#: The counter keys every pruned path reports per point. ``n_candidates``
#: and ``n_scanned`` count candidate positions (post-pin); ``n_pruned`` is
#: their difference; ``early_terminated`` is per-point boolean, accumulated
#: as ``n_early_terminated``.
_POINT_KEYS = ("n_rows", "n_rows_pruned", "n_candidates", "n_pruned", "n_scanned")


def empty_prune_stats() -> dict:
    """A fresh accumulator for :func:`accumulate_prune_stats`."""
    totals = {key: 0 for key in _POINT_KEYS}
    totals["n_points"] = 0
    totals["n_early_terminated"] = 0
    return totals


def accumulate_prune_stats(totals: dict, stats: Mapping) -> dict:
    """Fold one point's prune stats into a running summary (in place)."""
    if not totals:
        totals.update(empty_prune_stats())
    totals["n_points"] += 1
    for key in _POINT_KEYS:
        totals[key] += int(stats.get(key, 0))
    totals["n_early_terminated"] += bool(stats.get("early_terminated", False))
    return totals


# ---------------------------------------------------------------------------
# Pruned query paths
# ---------------------------------------------------------------------------


def _stats(
    effective: ScanOrder,
    certificate: PruneCertificate,
    n_scanned: int,
    early_terminated: bool,
) -> dict:
    reduced_positions = effective.n_candidates - int(
        np.sum(effective.row_counts[certificate.pruned_rows])
    )
    return {
        "n_rows": certificate.n_rows,
        "n_rows_pruned": certificate.n_pruned,
        "n_candidates": effective.n_candidates,
        "n_pruned": effective.n_candidates - reduced_positions,
        "n_scanned": n_scanned,
        "early_terminated": bool(early_terminated),
    }


def _reduced_problem(
    scan: ScanOrder, k: int, fixed: Mapping[int, int] | None
) -> tuple[ScanOrder, ScanOrder, PruneCertificate]:
    """Common prologue: fold pins, issue a certificate, restrict the scan."""
    effective = apply_pins_to_scan(scan, fixed)
    mins, maxs = interval_arrays(effective)
    cert = certificate_from_intervals(mins, maxs, k, effective.row_counts)
    reduced = restrict_scan(effective, cert.keep_rows) if cert.n_pruned else effective
    return effective, reduced, cert


def pruned_counts_from_scan(
    scan: ScanOrder,
    k: int,
    n_labels: int,
    fixed: Mapping[int, int] | None = None,
) -> tuple[list[int], dict]:
    """Q2 counts with irrelevant rows pruned — bit-identical, scaled back.

    Returns ``(counts, stats)`` where ``counts`` equals
    ``_counts_from_scan(scan, k, n_labels, fixed)`` exactly: the reduced
    problem's counts times the certificate's world-multiplicity scale.
    """
    effective, reduced, cert = _reduced_problem(scan, k, fixed)
    counts = _counts_from_scan(reduced, k, n_labels)
    if cert.scale != 1:
        counts = [count * cert.scale for count in counts]
    return counts, _stats(effective, cert, reduced.n_candidates, False)


def pruned_decision_from_scan(
    scan: ScanOrder,
    k: int,
    n_labels: int,
    fixed: Mapping[int, int] | None = None,
    implementation: str | None = None,
) -> tuple[DecisionScan, dict]:
    """The certain-label verdict via prune + vectorised decision scan.

    ``DecisionScan.certain_label`` equals
    ``certain_label_from_counts(_counts_from_scan(scan, ...))`` exactly;
    the scan stops as soon as the verdict is locked.
    """
    effective, reduced, cert = _reduced_problem(scan, k, fixed)
    decision = decision_winners(reduced, k, n_labels, implementation=implementation)
    stats = _stats(effective, cert, decision.positions_scanned, decision.early_terminated)
    return decision, stats


def _reduced_from_sims(
    sims_row: np.ndarray,
    rows: np.ndarray,
    cands: np.ndarray,
    labels: np.ndarray,
    counts: np.ndarray,
    k: int,
    fixed: Mapping[int, int] | None,
) -> tuple[int, ScanOrder, PruneCertificate]:
    """Prune *before* sorting: certificate + reduced scan from raw sims.

    This is the batch backend's fast path — the full scan's
    ``O(P log P)`` lexsort is replaced by a sort of only the surviving
    positions, and the dropped positions never touch the counting kernel.
    The subset sort with the same ``(similarity, row desc, cand desc)``
    keys reproduces the full scan's order on the subset exactly (the order
    is total: ``(row, cand)`` pairs are unique).
    """
    n = int(counts.shape[0])
    eff_counts = np.asarray(counts, dtype=np.int64).copy()
    if fixed:
        pinned = np.full(n, -1, dtype=np.int64)
        for row, cand in fixed.items():
            if not 0 <= cand < eff_counts[row]:
                raise IndexError(
                    f"fixed candidate {cand} out of range for row {row} "
                    f"with {eff_counts[row]} candidates"
                )
            pinned[row] = cand
            eff_counts[row] = 1
        row_pins = pinned[rows]
        active = (row_pins < 0) | (cands == row_pins)
        act_rows, act_cands, act_sims = rows[active], cands[active], sims_row[active]
    else:
        act_rows, act_cands, act_sims = rows, cands, sims_row

    mins = np.full(n, np.inf, dtype=np.float64)
    maxs = np.full(n, -np.inf, dtype=np.float64)
    np.minimum.at(mins, act_rows, act_sims)
    np.maximum.at(maxs, act_rows, act_sims)
    cert = certificate_from_intervals(mins, maxs, k, eff_counts)

    keep_mask = np.zeros(n, dtype=bool)
    keep_mask[cert.keep_rows] = True
    position_mask = keep_mask[act_rows]
    sub_rows = act_rows[position_mask]
    sub_cands = act_cands[position_mask]
    sub_sims = act_sims[position_mask]
    order = np.lexsort((-sub_cands, -sub_rows, sub_sims))
    new_index = np.cumsum(keep_mask) - 1
    reduced = ScanOrder(
        rows=new_index[sub_rows[order]],
        cands=sub_cands[order],
        sims=sub_sims[order],
        row_labels=np.asarray(labels, dtype=np.int64)[keep_mask],
        row_counts=eff_counts[keep_mask],
    )
    return int(act_rows.shape[0]), reduced, cert


def _sims_stats(
    n_effective: int,
    reduced: ScanOrder,
    cert: PruneCertificate,
    n_scanned: int,
    early_terminated: bool,
) -> dict:
    return {
        "n_rows": cert.n_rows,
        "n_rows_pruned": cert.n_pruned,
        "n_candidates": n_effective,
        "n_pruned": n_effective - reduced.n_candidates,
        "n_scanned": n_scanned,
        "early_terminated": bool(early_terminated),
    }


def pruned_counts_from_sims(
    sims_row: np.ndarray,
    rows: np.ndarray,
    cands: np.ndarray,
    labels: np.ndarray,
    counts: np.ndarray,
    k: int,
    n_labels: int,
    fixed: Mapping[int, int] | None = None,
) -> tuple[list[int], dict]:
    """Q2 counts straight from candidate-order similarities, pruned first.

    Bit-identical to ``_counts_from_scan(scan_of(sims_row), ...)``; the
    full sort never happens.
    """
    n_effective, reduced, cert = _reduced_from_sims(
        sims_row, rows, cands, labels, counts, k, fixed
    )
    result = _counts_from_scan(reduced, k, n_labels)
    if cert.scale != 1:
        result = [count * cert.scale for count in result]
    return result, _sims_stats(n_effective, reduced, cert, reduced.n_candidates, False)


def pruned_decision_from_sims(
    sims_row: np.ndarray,
    rows: np.ndarray,
    cands: np.ndarray,
    labels: np.ndarray,
    counts: np.ndarray,
    k: int,
    n_labels: int,
    fixed: Mapping[int, int] | None = None,
    implementation: str | None = None,
) -> tuple[DecisionScan, dict]:
    """Certain-label verdict straight from candidate-order similarities."""
    n_effective, reduced, cert = _reduced_from_sims(
        sims_row, rows, cands, labels, counts, k, fixed
    )
    decision = decision_winners(reduced, k, n_labels, implementation=implementation)
    return decision, _sims_stats(
        n_effective, reduced, cert, decision.positions_scanned, decision.early_terminated
    )


def pruned_topk_counts_from_scan(
    scan: ScanOrder, k: int, fixed: Mapping[int, int] | None = None
) -> tuple[list[int], dict]:
    """Top-K inclusion counts with pruning: pruned rows are *never* members.

    Kept rows' membership depends only on kept rows' choices, so their
    counts are the reduced counts times the scale; pruned rows' counts are
    exactly 0.
    """
    from repro.core.topk_prob import topk_inclusion_counts_from_scan

    effective, reduced, cert = _reduced_problem(scan, k, fixed)
    reduced_counts = topk_inclusion_counts_from_scan(reduced, k)
    result = [0] * effective.n_rows
    for new_index, row in enumerate(cert.keep_rows.tolist()):
        result[row] = reduced_counts[new_index] * cert.scale
    return result, _stats(effective, cert, reduced.n_candidates, False)


def pruned_weighted_probabilities(
    dataset: IncompleteDataset,
    t: np.ndarray,
    weights: Sequence[Sequence[Fraction]],
    k: int,
    kernel=None,
    scan: ScanOrder | None = None,
) -> tuple[list[Fraction], dict]:
    """Weighted label probabilities over the pruned positive-support problem.

    Pins must already be conditioned into the weights
    (:func:`repro.core.weighted.condition_weights` makes them point
    masses); the positive-support filter then subsumes them. The pruned
    rows' weight mass marginalises to exactly 1, so the reduced Fractions
    equal the full ones bit-for-bit.
    """
    from repro.core.scan import compute_scan_order
    from repro.core.weighted import _validate_weights, weighted_prediction_probabilities

    weights = _validate_weights(dataset, list(weights))
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)
    effective, reduced_weights = positive_support_scan(scan, weights)
    mins, maxs = interval_arrays(effective)
    cert = certificate_from_intervals(mins, maxs, k, effective.row_counts)
    if cert.n_pruned == 0:
        probabilities = weighted_prediction_probabilities(
            dataset, t, k=k, weights=list(weights), kernel=kernel, scan=scan
        )
        return probabilities, _stats(effective, cert, effective.n_candidates, False)
    keep = cert.keep_rows.tolist()
    reduced_scan = restrict_scan(effective, cert.keep_rows)
    reduced_dataset = IncompleteDataset(
        [
            dataset.candidates(row)[
                [j for j, w in enumerate(weights[row]) if w > 0]
            ]
            for row in keep
        ],
        [dataset.label_of(row) for row in keep],
    )
    probabilities = weighted_prediction_probabilities(
        reduced_dataset,
        t,
        k=k,
        weights=[reduced_weights[row] for row in keep],
        kernel=kernel,
        scan=reduced_scan,
    )
    # The reduced label space may shrink when only pruned rows carried the
    # top label ids; those labels can never win (the top-K is inside the
    # kept rows), so padding with exact zeros reproduces the full answer.
    result = probabilities + [Fraction(0)] * (dataset.n_labels - len(probabilities))
    return result, _stats(effective, cert, reduced_scan.n_candidates, False)


def pruned_weighted_decision(
    dataset: IncompleteDataset,
    t: np.ndarray,
    weights: Sequence[Sequence[Fraction]],
    k: int,
    kernel=None,
    scan: ScanOrder | None = None,
    implementation: str | None = None,
) -> tuple[DecisionScan, dict]:
    """``p_label == 1`` verdict via the decision kernel, no Fractions at all.

    Over the positive-support problem every world has positive weight, so
    a label's probability is 1 iff it is the only label with nonzero world
    count — the decision kernel's question exactly.
    """
    from repro.core.scan import compute_scan_order
    from repro.core.weighted import _validate_weights

    weights = _validate_weights(dataset, list(weights))
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)
    effective, _ = positive_support_scan(scan, weights)
    mins, maxs = interval_arrays(effective)
    cert = certificate_from_intervals(mins, maxs, k, effective.row_counts)
    reduced = restrict_scan(effective, cert.keep_rows) if cert.n_pruned else effective
    decision = decision_winners(
        reduced, k, dataset.n_labels, implementation=implementation
    )
    stats = _stats(effective, cert, decision.positions_scanned, decision.early_terminated)
    return decision, stats


def pruned_label_uncertain_counts(
    dataset,
    t: np.ndarray,
    k: int,
    kernel=None,
    scan: ScanOrder | None = None,
    fixed: Mapping[int, int] | None = None,
    until_mixed: bool = False,
) -> tuple[list[int], dict]:
    """Label-uncertain Q2 counts over the pruned (feature, label) worlds.

    The irrelevance rule is label-agnostic — a pruned row is outside every
    world's top-K whatever its label — so each pruned row contributes
    ``m_r * |L_r|`` free choices to the scale. The reduced problem shrinks
    the O(N^2)-ish DP on both axes. With ``until_mixed`` the DP stops once
    two labels have support (the certain-label verdict is then locked);
    the returned counts are partial in that case and only the nonzero-set
    is meaningful.
    """
    from repro.core.label_uncertainty import (
        LabelUncertainDataset,
        label_uncertain_counts,
    )
    from repro.core.scan import compute_scan_order

    if scan is None:
        scan = compute_scan_order(dataset.feature_dataset, t, kernel)
    effective = apply_pins_to_scan(scan, fixed)
    label_sizes = [len(label_set) for label_set in dataset.label_sets]
    world_counts = [
        int(m) * size for m, size in zip(effective.row_counts, label_sizes)
    ]
    mins, maxs = interval_arrays(effective)
    cert = certificate_from_intervals(mins, maxs, k, world_counts)
    keep = cert.keep_rows.tolist()
    n_labels = dataset.n_labels
    if cert.n_pruned == 0 and not fixed:
        reduced_dataset, reduced_scan = dataset, effective
    else:
        reduced_scan = restrict_scan(effective, cert.keep_rows)
        reduced_dataset = LabelUncertainDataset(
            [
                dataset.candidates(row)[
                    fixed[row] : fixed[row] + 1
                ]
                if fixed and row in fixed
                else dataset.candidates(row)
                for row in keep
            ],
            [dataset.label_sets[row] for row in keep],
        )
    scan_stats: dict = {}
    counts = label_uncertain_counts(
        reduced_dataset,
        t,
        k=k,
        kernel=kernel,
        scan=reduced_scan,
        until_mixed=until_mixed,
        scan_stats=scan_stats,
    )
    # The reduced label space may be smaller when pruned rows carried the
    # largest label ids; pad back to the full space.
    result = [0] * n_labels
    for label, count in enumerate(counts):
        result[label] = count * cert.scale
    return result, _stats(
        effective,
        cert,
        scan_stats.get("positions_scanned", reduced_scan.n_candidates),
        scan_stats.get("early_terminated", False),
    )


def pruned_label_uncertain_decision(
    dataset,
    t: np.ndarray,
    k: int,
    kernel=None,
    scan: ScanOrder | None = None,
    fixed: Mapping[int, int] | None = None,
) -> tuple[int | None, dict]:
    """The certain label over (feature, label) worlds, with early stop."""
    counts, stats = pruned_label_uncertain_counts(
        dataset, t, k=k, kernel=kernel, scan=scan, fixed=fixed, until_mixed=True
    )
    winners = [label for label, count in enumerate(counts) if count > 0]
    return (winners[0] if len(winners) == 1 else None), stats
