"""Possible-world enumeration and sampling (paper §2, Definition 2).

The set of possible worlds ``I_D`` of an incomplete dataset ``D`` contains
one complete dataset per way of choosing a candidate for every row. The
brute-force oracle iterates over all of them; the samplers support
Monte-Carlo estimation and randomised tests.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.utils.rng import ensure_rng

__all__ = [
    "iter_world_choices",
    "iter_worlds",
    "sample_world_choice",
    "sample_worlds",
    "count_worlds",
]

#: Safety cap for exhaustive enumeration; callers may override explicitly.
DEFAULT_MAX_WORLDS = 2_000_000


def count_worlds(dataset: IncompleteDataset) -> int:
    """Exact number of possible worlds ``|I_D|`` as a Python big int."""
    return dataset.n_worlds()


def iter_world_choices(
    dataset: IncompleteDataset, max_worlds: int = DEFAULT_MAX_WORLDS
) -> Iterator[tuple[int, ...]]:
    """Yield every candidate-choice tuple ``(j_1, ..., j_N)`` of ``dataset``.

    Raises ``ValueError`` when the number of worlds exceeds ``max_worlds`` so
    an accidental exponential enumeration fails fast instead of hanging.
    """
    total = dataset.n_worlds()
    if total > max_worlds:
        raise ValueError(
            f"dataset has {total} possible worlds which exceeds max_worlds={max_worlds}; "
            "use the polynomial-time SS/MM algorithms instead of enumeration"
        )
    ranges = [range(int(m)) for m in dataset.candidate_counts()]
    yield from itertools.product(*ranges)


def iter_worlds(
    dataset: IncompleteDataset, max_worlds: int = DEFAULT_MAX_WORLDS
) -> Iterator[tuple[tuple[int, ...], np.ndarray]]:
    """Yield ``(choice, features)`` for every possible world."""
    for choice in iter_world_choices(dataset, max_worlds=max_worlds):
        yield choice, dataset.world(choice)


def sample_world_choice(
    dataset: IncompleteDataset, seed: int | np.random.Generator | None = None
) -> tuple[int, ...]:
    """Sample a uniformly random possible world's candidate choices."""
    rng = ensure_rng(seed)
    counts = dataset.candidate_counts()
    return tuple(int(rng.integers(0, m)) for m in counts)


def sample_worlds(
    dataset: IncompleteDataset,
    n_samples: int,
    seed: int | np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``n_samples`` feature matrices of uniformly sampled worlds."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    rng = ensure_rng(seed)
    for _ in range(n_samples):
        yield dataset.world(sample_world_choice(dataset, rng))
