"""The unified CP query planner: one front door, pluggable backends.

The repo grew four disconnected dispatch paths for what is really one
family of counting queries over possible worlds: the string-dispatch of
:mod:`repro.core.queries`, the parallel batch engine of
:mod:`repro.core.batch_engine`, the exact incremental maintenance of
:mod:`repro.core.incremental`, and standalone entry points for the
weighted / top-k / label-uncertain task variants. This module replaces the
ad-hoc wiring with a planner-plus-backend architecture, the same move
provenance systems make when they route every probability computation
through one engine layer:

* :class:`CPQuery` (built via :func:`make_query`) is the *descriptor* of a
  query family: the dataset, a test matrix, the query kind
  (``counts`` / ``certain_label`` / ``check``), the task **flavor**
  (``binary``, ``multiclass``, ``weighted``, ``topk``,
  ``label_uncertainty``), ``k``, the kernel, the pins applied so far, an
  optional per-point algorithm override and optional candidate weights.
* :class:`Backend` is the executor protocol. Each backend declares
  :class:`BackendCapabilities` (which flavors and kinds it can serve,
  whether it is batchable / incremental / exact) and estimates its cost
  for a concrete query; a process-wide registry
  (:func:`register_backend` / :func:`get_backend` /
  :func:`backend_names`) makes backends pluggable.
* :func:`plan_query` is the cost-model-lite planner: an explicit backend
  request is validated against capabilities, ``"auto"`` scores every
  capable backend and picks the cheapest (single points stay on the
  sequential path, batches go parallel, warm incremental state wins for
  repeated pinned queries). :func:`execute_query` executes the plan and
  returns a :class:`QueryResult`.

Four backends ship by default (the first three here; the fourth —
``sharded``, the tile-streaming out-of-core executor — lives in
:mod:`repro.core.shards` and registers itself on import):

``sequential``
    The reference path: one :class:`~repro.core.prepared.PreparedQuery`
    scan per test point (or the flavor's per-point kernel). Supports every
    flavor and every published algorithm override — the semantics anchor
    the others are tested against.
``batch``
    Wraps the PR-1 batch layer (:class:`~repro.core.batch_engine.PreparedBatch`
    + :class:`~repro.core.batch_engine.BatchQueryExecutor` +
    :class:`~repro.core.batch_engine.QueryResultCache`): one vectorised
    distance pass for the whole test matrix, a tuned counting kernel, a
    ``fork`` worker-pool fan-out, and fingerprint-keyed result caching —
    now for **all five flavors**, not just binary counting.
``incremental``
    Promotes :class:`~repro.core.incremental.IncrementalCPState` to a
    first-class backend: per query family it keeps the maintained Q2
    counts alive across calls, so a cleaning session that re-queries the
    same validation points with a growing pin set pays one exact pruning
    update per step instead of a full re-preparation.
``sharded``
    The out-of-core tile executor (:class:`repro.core.shards.ShardedBackend`):
    the test-point × candidate space is split into bounded shared-memory
    tiles streamed through a persistent worker pool, so the full distance
    matrix never has to fit in memory at once. The cost model prefers it
    when the dense matrix would exceed the backend's memory budget.

All backends return bit-identical values for any query they both support
(``tests/core/test_planner.py`` holds the full equivalence matrix);
``benchmarks/bench_planner.py`` measures the speedups.

Pin semantics are uniform across flavors: a pin ``(row, candidate)``
restricts that row to one candidate. Counting flavors apply pins natively
inside the scan (the original candidate indices keep the paper's
tie-break); the weighted flavor conditions the prior
(:func:`repro.core.weighted.condition_weights`); the ``topk`` and
``label_uncertainty`` flavors restrict the dataset itself.
"""

from __future__ import annotations

import hashlib
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

import numpy as np

from repro.core.batch_engine import (
    BatchQueryExecutor,
    PreparedBatch,
    QueryResultCache,
    fanout_map,
    get_fanout_state,
    kernel_cache_key,
    resolve_n_jobs,
)
from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.engine import sortscan_counts
from repro.core.entropy import certain_label_from_counts
from repro.core.incremental import IncrementalCPState
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.label_uncertainty import LabelUncertainDataset, label_uncertain_counts
from repro.core.multiclass import sortscan_counts_multiclass
from repro.core.prepared import PreparedQuery
from repro.obs.tracing import trace_span
from repro.core.pruning import (
    accumulate_prune_stats,
    empty_prune_stats,
    pruned_counts_from_scan,
    pruned_decision_from_scan,
    pruned_label_uncertain_counts,
    pruned_label_uncertain_decision,
    pruned_topk_counts_from_scan,
    pruned_weighted_decision,
    pruned_weighted_probabilities,
)
from repro.core.scan import compute_scan_order
from repro.core.sortscan import sortscan_counts_naive
from repro.core.sortscan_tree import sortscan_counts_tree
from repro.core.topk_prob import topk_inclusion_counts
from repro.core.weighted import (
    condition_weights,
    uniform_candidate_weights,
    weighted_prediction_probabilities,
)
from repro.utils.validation import check_in_options, check_positive_int

__all__ = [
    "FLAVORS",
    "KINDS",
    "PRUNE_MODES",
    "SCAN_KERNEL_MODES",
    "Q2_ALGORITHMS",
    "CPQuery",
    "make_query",
    "ExecutionOptions",
    "QueryPlan",
    "QueryResult",
    "PlanError",
    "BackendCapabilities",
    "Backend",
    "register_backend",
    "get_backend",
    "backend_names",
    "capable_backends",
    "plan_query",
    "execute_query",
    "SequentialBackend",
    "BatchParallelBackend",
    "IncrementalBackend",
]

#: The five task flavors the planner serves.
FLAVORS = ("binary", "multiclass", "weighted", "topk", "label_uncertainty")

#: Query kinds: exact per-label counts (Q2), the CP'ed label or ``None``,
#: and the boolean check "is this label certainly predicted?" (Q1).
KINDS = ("counts", "certain_label", "check")

#: Candidate-pruning modes. ``"auto"`` prunes whenever the execution path
#: can consume a certificate (SortScan-family engines with ``k < n_rows``),
#: ``"on"`` demands pruning (a :class:`PlanError` if the query's algorithm
#: cannot honour it), ``"off"`` disables it. Results never change.
PRUNE_MODES = ("auto", "on", "off")

#: Tally/decision kernel implementations accepted by
#: :attr:`ExecutionOptions.scan_kernel` (``"auto"`` picks the import-time
#: default of :mod:`repro.core.scan_kernels`).
SCAN_KERNEL_MODES = ("auto", "numpy", "python")

#: The per-point Q2 engines, by algorithm name. ``"auto"`` / ``"engine"``
#: is the division-based SortScan; the others are the published
#: alternatives kept for cross-validation and teaching. (This registry
#: used to live in :mod:`repro.core.queries`, which now imports it.)
Q2_ALGORITHMS = {
    "engine": sortscan_counts,
    "tree": sortscan_counts_tree,
    "multiclass": sortscan_counts_multiclass,
    "naive": sortscan_counts_naive,
    "bruteforce": brute_force_counts,
}


# ---------------------------------------------------------------------------
# The query descriptor
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class CPQuery:
    """A fully-resolved CP query family: what to compute, not how.

    Built by :func:`make_query` (which validates and infers the fields);
    consumed by the planner and the backends. One descriptor covers a
    whole test matrix — per-point results come back in row order.
    """

    dataset: Any  # IncompleteDataset or LabelUncertainDataset
    test_X: np.ndarray
    kind: str
    flavor: str
    k: int
    kernel: Kernel
    pins: tuple[tuple[int, int], ...] = ()
    label: int | None = None
    algorithm: str = "auto"
    weights: tuple[tuple[Fraction, ...], ...] | None = None

    @property
    def n_points(self) -> int:
        """Number of test points the query covers."""
        return int(self.test_X.shape[0])

    @property
    def n_labels(self) -> int:
        """Size of the label space ``|Y|``."""
        return int(self.dataset.n_labels)

    def pins_dict(self) -> dict[int, int]:
        """The pins as a ``row -> candidate`` mapping."""
        return dict(self.pins)

    def workload_size(self) -> int:
        """``n_points * total candidates`` — the planner's cost unit."""
        return self.n_points * int(np.sum(self.dataset.candidate_counts()))

    def fingerprint(self) -> str:
        """Content fingerprint of the underlying dataset (cache-key part)."""
        return self.dataset.fingerprint()

    def __repr__(self) -> str:
        return (
            f"CPQuery(kind={self.kind!r}, flavor={self.flavor!r}, "
            f"n_points={self.n_points}, k={self.k}, n_pins={len(self.pins)})"
        )


def _normalise_test_X(dataset: Any, test_X: Any) -> np.ndarray:
    points = np.asarray(test_X, dtype=np.float64)
    if points.ndim == 1:
        points = points.reshape(1, -1)
    if points.size == 0:
        points = points.reshape(0, dataset.n_features)
    if points.ndim != 2 or points.shape[1] != dataset.n_features:
        raise ValueError(
            f"test_X must have shape (n_points, {dataset.n_features}), "
            f"got {points.shape}"
        )
    return points


def _normalise_pins(dataset: Any, pins: Any) -> tuple[tuple[int, int], ...]:
    if not pins:
        return ()
    items = sorted(dict(pins).items()) if isinstance(pins, Mapping) else sorted(
        dict((int(r), int(c)) for r, c in pins).items()
    )
    counts = dataset.candidate_counts()
    out = []
    for row, cand in items:
        row, cand = int(row), int(cand)
        if not 0 <= row < dataset.n_rows:
            raise IndexError(f"pinned row {row} out of range for {dataset.n_rows} rows")
        if not 0 <= cand < int(counts[row]):
            raise IndexError(
                f"pinned candidate {cand} out of range for row {row} "
                f"with {int(counts[row])} candidates"
            )
        out.append((row, cand))
    return tuple(out)


def make_query(
    dataset: IncompleteDataset | LabelUncertainDataset,
    test_X: np.ndarray,
    kind: str = "counts",
    flavor: str = "auto",
    k: int = 3,
    kernel: Kernel | str | None = None,
    pins: Mapping[int, int] | Sequence[tuple[int, int]] | None = None,
    label: int | None = None,
    algorithm: str = "auto",
    weights: Sequence[Sequence[Fraction]] | None = None,
) -> CPQuery:
    """Build and validate a :class:`CPQuery`.

    ``flavor="auto"`` infers the task: a
    :class:`~repro.core.label_uncertainty.LabelUncertainDataset` means
    ``label_uncertainty``, explicit ``weights`` mean ``weighted``, and a
    plain dataset is ``binary`` or ``multiclass`` by its label-space size.
    ``kind="check"`` requires ``label``; the ``topk`` flavor only supports
    ``kind="counts"`` (the per-row inclusion counts).
    """
    kind = check_in_options(kind, "kind", KINDS)
    flavor = check_in_options(flavor, "flavor", ("auto", *FLAVORS))
    algorithm = check_in_options(algorithm, "algorithm", ("auto", *Q2_ALGORITHMS))
    k = check_positive_int(k, "k")

    if flavor == "auto":
        if isinstance(dataset, LabelUncertainDataset):
            flavor = "label_uncertainty"
        elif weights is not None:
            flavor = "weighted"
        else:
            flavor = "binary" if dataset.n_labels == 2 else "multiclass"

    if flavor == "label_uncertainty":
        if not isinstance(dataset, LabelUncertainDataset):
            raise ValueError(
                "flavor 'label_uncertainty' requires a LabelUncertainDataset"
            )
    elif isinstance(dataset, LabelUncertainDataset):
        raise ValueError(
            f"flavor {flavor!r} requires an IncompleteDataset; wrap-around via "
            "LabelUncertainDataset.feature_dataset if labels are actually certain"
        )
    if flavor == "binary" and dataset.n_labels != 2:
        raise ValueError(
            f"flavor 'binary' requires 2 labels, dataset has {dataset.n_labels}"
        )
    if weights is not None and flavor != "weighted":
        raise ValueError(f"candidate weights are only valid for flavor 'weighted', not {flavor!r}")
    if flavor == "topk" and kind != "counts":
        raise ValueError("flavor 'topk' only supports kind='counts' (inclusion counts)")

    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")

    if kind == "check":
        if label is None:
            raise ValueError("kind='check' requires a target label")
        if not 0 <= int(label) < dataset.n_labels:
            raise ValueError(
                f"label {label} outside the label space of size {dataset.n_labels}"
            )
        label = int(label)
    else:
        label = None

    weights_tuple: tuple[tuple[Fraction, ...], ...] | None = None
    if weights is not None:
        weights_tuple = tuple(tuple(Fraction(w) for w in row) for row in weights)

    return CPQuery(
        dataset=dataset,
        test_X=_normalise_test_X(dataset, test_X),
        kind=kind,
        flavor=flavor,
        k=k,
        kernel=resolve_kernel(kernel),
        pins=_normalise_pins(dataset, pins),
        label=label,
        algorithm=algorithm,
        weights=weights_tuple,
    )


# ---------------------------------------------------------------------------
# Plans, options, results
# ---------------------------------------------------------------------------


class PlanError(ValueError):
    """No backend can serve the query (or an explicit request is incapable)."""


@dataclass(frozen=True)
class ExecutionOptions:
    """Execution knobs that change wall-clock (and memory), never results.

    ``n_jobs`` fans per-point work out over forked worker processes where
    the backend supports it; ``cache`` selects result caching (``True`` =
    the backend's shared cache, an instance = that cache, ``False``/``None``
    = off); ``prepared`` hands an existing
    :class:`~repro.core.batch_engine.PreparedBatch` to the batch backend so
    a session's vectorised distance state is shared instead of rebuilt.
    ``tile_rows`` / ``tile_candidates`` bound the resident tile of the
    ``sharded`` backend (:mod:`repro.core.shards`); ``None`` keeps the
    backend's configured defaults. Other backends ignore them.

    ``prune`` selects exactness-preserving candidate pruning
    (:mod:`repro.core.pruning`): ``"auto"`` (default) engages it whenever
    the execution path can consume a prune certificate, ``"on"`` requires
    it (planning fails on incompatible algorithm overrides), ``"off"``
    disables it. ``scan_kernel`` picks the tally/decision kernel
    implementation of :mod:`repro.core.scan_kernels` (``"auto"``,
    ``"numpy"`` or ``"python"``). Both are wall-clock knobs only — every
    backend returns bit-identical values in every mode.

    All knobs are validated at construction, with the same rules the CLI
    flags enforce: ``n_jobs`` must be a positive integer, ``-1`` (all
    CPUs) or ``None``; the tile bounds must be positive when given;
    ``prune`` / ``scan_kernel`` must name a known mode.
    """

    n_jobs: int | None = 1
    cache: QueryResultCache | bool | None = True
    prepared: PreparedBatch | None = None
    tile_rows: int | None = None
    tile_candidates: int | None = None
    prune: str = "auto"
    scan_kernel: str = "auto"

    def __post_init__(self) -> None:
        check_in_options(self.prune, "prune", PRUNE_MODES)
        check_in_options(self.scan_kernel, "scan_kernel", SCAN_KERNEL_MODES)
        if self.n_jobs is not None:
            if isinstance(self.n_jobs, bool) or not isinstance(
                self.n_jobs, (int, np.integer)
            ):
                raise TypeError(
                    f"n_jobs must be an integer or None, got {type(self.n_jobs).__name__}"
                )
            if self.n_jobs < 1 and self.n_jobs != -1:
                raise ValueError(
                    f"n_jobs must be a positive integer, -1 (all CPUs) or None, "
                    f"got {self.n_jobs}"
                )
            resolve_n_jobs(self.n_jobs)  # keep the normalisation path exercised
        if self.tile_rows is not None:
            check_positive_int(self.tile_rows, "tile_rows")
        if self.tile_candidates is not None:
            check_positive_int(self.tile_candidates, "tile_candidates")


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision: which backend runs the query, and why."""

    backend: str
    reason: str
    cost: float
    considered: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True, eq=False)
class QueryResult:
    """Per-point values plus the plan that produced them.

    ``values[i]`` belongs to ``test_X[i]``; its type depends on the query:
    exact count vectors (``counts``), labels-or-``None``
    (``certain_label``), booleans (``check``), exact
    :class:`~fractions.Fraction` distributions (``weighted`` counts) or
    per-row inclusion counts (``topk``).

    ``stats`` is the executing backend's observability snapshot for this
    call (pruning counters, early-termination tallies, …). Purely
    informational: empty when the backend reports nothing, and never part
    of equality or caching.
    """

    query: CPQuery
    plan: QueryPlan
    values: list
    stats: dict = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return len(self.values)


# ---------------------------------------------------------------------------
# The backend protocol and registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can serve, declared up front for the planner."""

    flavors: frozenset[str]
    kinds: frozenset[str] = frozenset(KINDS)
    batchable: bool = False
    incremental: bool = False
    exact: bool = True
    algorithms: frozenset[str] = frozenset({"auto"})


class Backend(ABC):
    """An executor for CP queries; subclasses register via :func:`register_backend`."""

    name: str = "abstract"
    capabilities: BackendCapabilities
    #: Observability snapshot of the most recent :meth:`execute` call
    #: (always reassigned whole, never mutated in place, so readers get a
    #: consistent dict). :func:`execute_query` copies it into
    #: :attr:`QueryResult.stats`.
    last_stats: dict = {}

    def supports(self, query: CPQuery) -> bool:
        """True iff the declared capabilities cover this query."""
        caps = self.capabilities
        return (
            query.flavor in caps.flavors
            and query.kind in caps.kinds
            and (query.algorithm == "auto" or query.algorithm in caps.algorithms)
        )

    @abstractmethod
    def estimate_cost(
        self, query: CPQuery, options: ExecutionOptions
    ) -> tuple[float, str]:
        """``(cost, reason)`` in the planner's abstract cost unit."""

    @abstractmethod
    def execute(
        self, query: CPQuery, options: ExecutionOptions | None = None
    ) -> list:
        """Run the query, returning one value per test point (row order)."""


_REGISTRY: OrderedDict[str, Backend] = OrderedDict()


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a backend to the process-wide registry (``replace`` to override)."""
    if not replace and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """The registered backend of that name (:class:`PlanError` if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlanError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def capable_backends(query: CPQuery) -> list[Backend]:
    """Every registered backend whose capabilities cover ``query``."""
    return [backend for backend in _REGISTRY.values() if backend.supports(query)]


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


def plan_query(
    query: CPQuery,
    backend: str = "auto",
    options: ExecutionOptions | None = None,
) -> QueryPlan:
    """Choose the backend for ``query``.

    An explicit ``backend`` name is validated against the backend's
    declared capabilities; ``"auto"`` scores every capable backend with
    its own cost estimate and picks the cheapest (registration order
    breaks ties). Raises :class:`PlanError` when nothing can serve the
    query.
    """
    options = options or ExecutionOptions()
    if options.prune == "on" and query.algorithm not in ("auto", "engine"):
        raise PlanError(
            f"prune='on' cannot be honoured with algorithm {query.algorithm!r}: "
            "the naive / tree / brute-force engines take a whole dataset and "
            "cannot consume a pruned scan (use prune='auto' to skip pruning "
            "silently, or the default engine)"
        )
    if backend != "auto":
        chosen = get_backend(backend)
        if not chosen.supports(query):
            raise PlanError(
                f"backend {backend!r} cannot serve {query!r} "
                f"(capabilities: {chosen.capabilities})"
            )
        cost, _ = chosen.estimate_cost(query, options)
        return QueryPlan(
            backend=chosen.name,
            reason="requested explicitly",
            cost=cost,
            considered=((chosen.name, cost),),
        )

    candidates = capable_backends(query)
    if not candidates:
        raise PlanError(f"no registered backend can serve {query!r}")
    scored = [(*b.estimate_cost(query, options), b) for b in candidates]
    best_cost, best_reason, best = min(scored, key=lambda item: item[0])
    return QueryPlan(
        backend=best.name,
        reason=best_reason,
        cost=best_cost,
        considered=tuple((b.name, cost) for cost, _, b in scored),
    )


def execute_query(
    query: CPQuery,
    backend: str = "auto",
    options: ExecutionOptions | None = None,
) -> QueryResult:
    """Plan and run ``query``; the one call every front door goes through."""
    options = options or ExecutionOptions()
    with trace_span("planner.execute_query") as span:
        plan = plan_query(query, backend, options)
        span.set(
            backend=plan.backend,
            reason=plan.reason,
            flavor=query.flavor,
            kind=query.kind,
            n_points=query.n_points,
        )
        if query.n_points == 0:
            return QueryResult(query=query, plan=plan, values=[])
        chosen = get_backend(plan.backend)
        values = chosen.execute(query, options)
        # Snapshot, not reference: last_stats is per-backend mutable state and
        # the next execute() on the same backend will overwrite it. (Under
        # concurrent callers the snapshot may mix calls — acceptable for an
        # observability-only field.)
        stats = dict(getattr(chosen, "last_stats", {}) or {})
        span.set(
            **{
                key: value
                for key, value in stats.items()
                if isinstance(value, (int, float, bool, str))
            }
        )
    return QueryResult(query=query, plan=plan, values=values, stats=stats)


# ---------------------------------------------------------------------------
# Shared flavor plumbing
# ---------------------------------------------------------------------------


def _restricted_dataset(query: CPQuery) -> Any:
    """The dataset with every pin applied by restriction (flavors without
    native pin support: ``topk`` and ``label_uncertainty``)."""
    dataset = query.dataset
    for row, cand in query.pins:
        dataset = dataset.restrict_row(row, cand)
    return dataset


def _conditioned_weights(query: CPQuery) -> list[list[Fraction]]:
    """The weighted flavor's prior with pins conditioned in as point masses."""
    base = (
        [list(row) for row in query.weights]
        if query.weights is not None
        else uniform_candidate_weights(query.dataset)
    )
    return condition_weights(base, query.pins_dict())


def _counts_to_kind(query: CPQuery, counts_per_point: list[list[int]]) -> list:
    """Derive ``certain_label`` / ``check`` values from exact count vectors."""
    if query.kind == "counts":
        return counts_per_point
    labels = [certain_label_from_counts(counts) for counts in counts_per_point]
    if query.kind == "certain_label":
        return labels
    return [lbl == query.label for lbl in labels]


def _weighted_to_kind(query: CPQuery, probs_per_point: list[list[Fraction]]) -> list:
    if query.kind == "counts":
        return probs_per_point
    certain = [
        next((y for y, p in enumerate(probs) if p == 1), None)
        for probs in probs_per_point
    ]
    if query.kind == "certain_label":
        return certain
    return [lbl == query.label for lbl in certain]


def _prune_enabled(query: CPQuery, options: ExecutionOptions) -> bool:
    """Whether this execution should run the candidate-pruning pass.

    ``"off"`` never prunes; any mode is a no-op for the published
    alternative engines (they take a whole dataset, not a scan).
    ``"auto"`` additionally skips the pass when ``k >= n_rows`` — the
    certificate needs ``k`` *other* dominating rows, so nothing can ever
    be pruned there and the interval pass would be pure overhead.
    """
    if options.prune == "off":
        return False
    if query.algorithm not in ("auto", "engine"):
        return False
    if options.prune == "on":
        return True
    return query.k < query.dataset.n_rows


def _scan_kernel_arg(options: ExecutionOptions) -> str | None:
    """``ExecutionOptions.scan_kernel`` as the kernels' ``implementation=``."""
    return None if options.scan_kernel == "auto" else options.scan_kernel


def _prune_summary(query: CPQuery, prune: bool, totals: dict | None) -> dict:
    """The ``last_stats`` payload: context keys plus accumulated counters."""
    summary = {"flavor": query.flavor, "kind": query.kind, "prune": prune}
    if totals:
        summary.update(totals)
    return summary


def _point_key(t: np.ndarray) -> str:
    return hashlib.sha1(np.ascontiguousarray(t).tobytes()).hexdigest()


def _weights_key(weights: list[list[Fraction]]) -> str:
    """A digest identifying an exact prior by value.

    ``Fraction`` reprs are canonical (always in lowest terms), so equal
    priors hash equal. A digest rather than the weights tuple itself keeps
    cache keys O(1) — a weighted cleaning session issues one differently
    conditioned prior per (row, candidate) pair, and embedding the full
    ``N x M`` matrix in every key would bloat the shared LRU.
    """
    digest = hashlib.sha256()
    for row in weights:
        digest.update(repr(row).encode("ascii"))
        digest.update(b";")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# SequentialBackend — the reference per-point path
# ---------------------------------------------------------------------------


class SequentialBackend(Backend):
    """One prepared scan (or flavor kernel) per test point, in process.

    Supports every flavor, every kind, and every published algorithm
    override — the reference semantics the other backends are held to.
    Counting pins go through :meth:`PreparedQuery.counts`, which keeps the
    paper's tie-break on the original candidate indices; an explicit
    non-default algorithm with pins falls back to dataset restriction
    (those engines take no ``fixed`` argument).
    """

    name = "sequential"
    capabilities = BackendCapabilities(
        flavors=frozenset(FLAVORS),
        kinds=frozenset(KINDS),
        batchable=False,
        incremental=False,
        exact=True,
        algorithms=frozenset({"auto", *Q2_ALGORITHMS}),
    )

    def estimate_cost(self, query, options):
        return float(query.workload_size()), "one prepared scan per test point"

    def execute(self, query, options=None):
        options = options or ExecutionOptions()
        prune = _prune_enabled(query, options)
        totals = empty_prune_stats() if prune else None
        flavor = query.flavor
        if flavor in ("binary", "multiclass"):
            values = self._execute_counting(query, options, prune, totals)
        elif flavor == "weighted":
            values = self._execute_weighted(query, options, prune, totals)
        elif flavor == "topk":
            values = self._execute_topk(query, prune, totals)
        else:
            values = self._execute_label_uncertain(query, prune, totals)
        self.last_stats = _prune_summary(query, prune, totals)
        return values

    # ------------------------------------------------------------------
    def _execute_counting(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prune: bool,
        totals: dict | None,
    ) -> list:
        fixed = query.pins_dict()
        if (
            query.kind in ("certain_label", "check")
            and query.dataset.n_labels == 2
            and query.algorithm in ("auto", "engine")
        ):
            # The MM shortcut (Algorithm 2): no counting at all. Exact, and
            # it matches the counts-based answer bit for bit (tested).
            # Already the maximally early-terminating path — pruning would
            # only add work, so the certificate pass is skipped here.
            labels = [
                PreparedQuery(
                    query.dataset, t, k=query.k, kernel=query.kernel
                ).certain_label_minmax(fixed)
                for t in query.test_X
            ]
            if query.kind == "certain_label":
                return labels
            return [lbl == query.label for lbl in labels]

        if prune:
            # Binary decisions took the MM branch above, so a decision kind
            # here is multiclass: the early-terminating decision kernel
            # answers it without building full counts.
            if query.kind == "counts":
                counts = []
                for t in query.test_X:
                    scan = compute_scan_order(query.dataset, t, query.kernel)
                    point_counts, stats = pruned_counts_from_scan(
                        scan, query.k, query.n_labels, fixed
                    )
                    accumulate_prune_stats(totals, stats)
                    counts.append(point_counts)
                return counts
            labels = []
            for t in query.test_X:
                scan = compute_scan_order(query.dataset, t, query.kernel)
                decision, stats = pruned_decision_from_scan(
                    scan,
                    query.k,
                    query.n_labels,
                    fixed,
                    implementation=_scan_kernel_arg(options),
                )
                accumulate_prune_stats(totals, stats)
                labels.append(decision.certain_label)
            if query.kind == "certain_label":
                return labels
            return [lbl == query.label for lbl in labels]

        if query.algorithm in ("auto", "engine"):
            counts = [
                PreparedQuery(query.dataset, t, k=query.k, kernel=query.kernel).counts(
                    fixed
                )
                for t in query.test_X
            ]
        else:
            engine = Q2_ALGORITHMS[query.algorithm]
            dataset = _restricted_dataset(query) if fixed else query.dataset
            counts = [
                engine(dataset, t, k=query.k, kernel=query.kernel)
                for t in query.test_X
            ]
        return _counts_to_kind(query, counts)

    def _execute_weighted(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prune: bool,
        totals: dict | None,
    ) -> list:
        weights = _conditioned_weights(query)
        if prune:
            if query.kind == "counts":
                probs = []
                for t in query.test_X:
                    point_probs, stats = pruned_weighted_probabilities(
                        query.dataset, t, weights, query.k, kernel=query.kernel
                    )
                    accumulate_prune_stats(totals, stats)
                    probs.append(point_probs)
                return probs
            labels = []
            for t in query.test_X:
                decision, stats = pruned_weighted_decision(
                    query.dataset,
                    t,
                    weights,
                    query.k,
                    kernel=query.kernel,
                    implementation=_scan_kernel_arg(options),
                )
                accumulate_prune_stats(totals, stats)
                labels.append(decision.certain_label)
            if query.kind == "certain_label":
                return labels
            return [lbl == query.label for lbl in labels]
        probs = [
            weighted_prediction_probabilities(
                query.dataset, t, k=query.k, weights=weights, kernel=query.kernel
            )
            for t in query.test_X
        ]
        return _weighted_to_kind(query, probs)

    def _execute_topk(self, query: CPQuery, prune: bool, totals: dict | None) -> list:
        dataset = _restricted_dataset(query)
        if prune:
            values = []
            for t in query.test_X:
                scan = compute_scan_order(dataset, t, query.kernel)
                counts, stats = pruned_topk_counts_from_scan(scan, query.k)
                accumulate_prune_stats(totals, stats)
                values.append(counts)
            return values
        return [
            topk_inclusion_counts(dataset, t, k=query.k, kernel=query.kernel)
            for t in query.test_X
        ]

    def _execute_label_uncertain(
        self, query: CPQuery, prune: bool, totals: dict | None
    ) -> list:
        dataset = _restricted_dataset(query)
        if prune:
            if query.kind == "counts":
                counts = []
                for t in query.test_X:
                    point_counts, stats = pruned_label_uncertain_counts(
                        dataset, t, k=query.k, kernel=query.kernel
                    )
                    accumulate_prune_stats(totals, stats)
                    counts.append(point_counts)
                return counts
            labels = []
            for t in query.test_X:
                label, stats = pruned_label_uncertain_decision(
                    dataset, t, k=query.k, kernel=query.kernel
                )
                accumulate_prune_stats(totals, stats)
                labels.append(label)
            if query.kind == "certain_label":
                return labels
            return [lbl == query.label for lbl in labels]
        counts = [
            label_uncertain_counts(dataset, t, k=query.k, kernel=query.kernel)
            for t in query.test_X
        ]
        return _counts_to_kind(query, counts)


# ---------------------------------------------------------------------------
# BatchParallelBackend — vectorised prep, fan-out, result caching
# ---------------------------------------------------------------------------


def _weighted_worker(index: int) -> tuple[int, list[Fraction]]:
    """Pool worker: weighted probabilities of one point from shared state."""
    prepared, dataset, k, weights, kernel = get_fanout_state()
    probs = weighted_prediction_probabilities(
        dataset,
        prepared.test_X[index],
        k=k,
        weights=weights,
        kernel=kernel,
        scan=prepared.scan(index),
    )
    return index, probs


def _topk_worker(index: int) -> tuple[int, list[int]]:
    """Pool worker: top-K inclusion counts of one point from shared state."""
    prepared, k = get_fanout_state()
    counts = topk_inclusion_counts(
        prepared.dataset,
        prepared.test_X[index],
        k=k,
        kernel=prepared.kernel,
        scan=prepared.scan(index),
    )
    return index, counts


def _label_uncertain_worker(index: int) -> tuple[int, list[int]]:
    """Pool worker: label-uncertain counts of one point from shared state."""
    prepared, dataset, k = get_fanout_state()
    counts = label_uncertain_counts(
        dataset,
        prepared.test_X[index],
        k=k,
        kernel=prepared.kernel,
        scan=prepared.scan(index),
    )
    return index, counts


def _pruned_weighted_worker(index: int) -> tuple[int, list[Fraction], dict]:
    """Pool worker: pruned weighted probabilities (bit-identical, cheaper DP)."""
    prepared, dataset, k, weights, kernel = get_fanout_state()
    probs, stats = pruned_weighted_probabilities(
        dataset,
        prepared.test_X[index],
        weights,
        k,
        kernel=kernel,
        scan=prepared.scan(index),
    )
    return index, probs, stats


def _pruned_topk_worker(index: int) -> tuple[int, list[int], dict]:
    """Pool worker: pruned top-K inclusion counts of one point."""
    prepared, k = get_fanout_state()
    counts, stats = pruned_topk_counts_from_scan(prepared.scan(index), k)
    return index, counts, stats


def _pruned_label_uncertain_worker(index: int) -> tuple[int, list[int], dict]:
    """Pool worker: pruned label-uncertain counts of one point.

    ``until_mixed`` stays off: the cached value must be the full count
    vector so pruned and unpruned calls can share cache entries.
    """
    prepared, dataset, k = get_fanout_state()
    counts, stats = pruned_label_uncertain_counts(
        dataset,
        prepared.test_X[index],
        k=k,
        kernel=prepared.kernel,
        scan=prepared.scan(index),
    )
    return index, counts, stats


class BatchParallelBackend(Backend):
    """The batch execution layer behind one registry name.

    Counting queries run through :class:`BatchQueryExecutor` exactly as in
    PR 1; the weighted, top-k and label-uncertain flavors get the same
    treatment — one shared :class:`PreparedBatch` per
    ``(dataset, test matrix, k, kernel)`` family (kept in a small LRU, or
    handed in via :attr:`ExecutionOptions.prepared`), per-point scans
    derived from the shared similarity matrix, ``fork`` fan-out across
    ``n_jobs`` workers, and a fingerprint-keyed result cache shared across
    calls.
    """

    name = "batch"
    capabilities = BackendCapabilities(
        flavors=frozenset(FLAVORS),
        kinds=frozenset(KINDS),
        batchable=True,
        incremental=False,
        exact=True,
        algorithms=frozenset({"auto", "engine"}),
    )

    def __init__(self, cache_size: int = 4096, prepared_cache_size: int = 4) -> None:
        self.cache = QueryResultCache(maxsize=cache_size)
        self._prepared: OrderedDict[tuple, PreparedBatch] = OrderedDict()
        self._prepared_cache_size = check_positive_int(
            prepared_cache_size, "prepared_cache_size"
        )
        self._lock = threading.Lock()

    def estimate_cost(self, query, options):
        jobs = min(resolve_n_jobs(options.n_jobs), max(query.n_points, 1))
        per_point = query.workload_size() / max(query.n_points, 1)
        cost = per_point * (0.6 + 0.5 * query.n_points / jobs)
        return cost, "vectorised preparation + parallel per-point scans"

    # ------------------------------------------------------------------
    def _resolve_cache(self, options: ExecutionOptions) -> QueryResultCache | None:
        if options.cache is True:
            return self.cache
        if isinstance(options.cache, QueryResultCache):
            return options.cache
        return None

    def _prepared_for(
        self,
        dataset: IncompleteDataset,
        test_X: np.ndarray,
        k: int,
        kernel: Kernel,
        options: ExecutionOptions,
    ) -> PreparedBatch:
        handed = options.prepared
        if (
            handed is not None
            and handed.k == k
            and kernel_cache_key(handed.kernel) == kernel_cache_key(kernel)
            and handed.fingerprint() == dataset.fingerprint()
            and np.array_equal(handed.test_X, test_X)
        ):
            return handed
        key = (
            dataset.fingerprint(),
            _point_key(test_X),
            k,
            kernel_cache_key(kernel),
        )
        with self._lock:
            prepared = self._prepared.get(key)
            if prepared is not None:
                self._prepared.move_to_end(key)
                return prepared
        prepared = PreparedBatch(dataset, test_X, k=k, kernel=kernel)
        with self._lock:
            self._prepared[key] = prepared
            self._prepared.move_to_end(key)
            while len(self._prepared) > self._prepared_cache_size:
                self._prepared.popitem(last=False)
        return prepared

    # ------------------------------------------------------------------
    def execute(self, query, options=None):
        options = options or ExecutionOptions()
        prune = _prune_enabled(query, options)
        totals = empty_prune_stats() if prune else None
        flavor = query.flavor
        if flavor in ("binary", "multiclass"):
            values = self._execute_counting(query, options, prune, totals)
        elif flavor == "weighted":
            values = self._execute_weighted(query, options, prune, totals)
        elif flavor == "topk":
            values = self._execute_topk(query, options, prune, totals)
        else:
            values = self._execute_label_uncertain(query, options, prune, totals)
        self.last_stats = _prune_summary(query, prune, totals)
        return values

    def _execute_counting(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prune: bool,
        totals: dict | None,
    ) -> list:
        prepared = self._prepared_for(
            query.dataset, query.test_X, query.k, query.kernel, options
        )
        cache = self._resolve_cache(options)
        executor = BatchQueryExecutor(
            prepared=prepared,
            n_jobs=options.n_jobs,
            # An empty QueryResultCache is falsy (it has __len__), so the
            # None check must be explicit or a fresh shared cache would be
            # silently dropped.
            cache=cache if cache is not None else False,
        )
        fixed = query.pins_dict()
        if query.kind == "counts":
            return executor.counts(fixed, prune=prune, prune_stats=totals)
        # Decision kinds: binary takes the MM scan regardless of prune;
        # multiclass takes the pruned early-terminating decision kernel
        # when pruning is on and full counts otherwise.
        labels = executor.certain_labels(
            fixed,
            prune=prune,
            scan_kernel=_scan_kernel_arg(options),
            prune_stats=totals,
        )
        if query.kind == "certain_label":
            return labels
        return [lbl == query.label for lbl in labels]

    # ------------------------------------------------------------------
    def _fanout_cached(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prepared: PreparedBatch,
        tag: str,
        extra_key: tuple,
        worker,
        state: tuple,
        totals: dict | None = None,
        has_stats: bool = False,
    ) -> list:
        """Cache-then-fan-out skeleton shared by the non-counting flavors.

        With ``has_stats`` the worker returns ``(index, value, stats)``
        triples; the stats are folded into ``totals`` and only the value
        is cached — pruned and unpruned workers are bit-identical, so they
        share the same cache entries.
        """
        cache = self._resolve_cache(options)
        n = prepared.n_points
        results: list = [None] * n
        missing: list[int] = []
        keys: list[tuple | None] = [None] * n
        for index in range(n):
            if cache is not None:
                keys[index] = (
                    tag,
                    prepared.fingerprint(),
                    _point_key(prepared.test_X[index]),
                    query.k,
                    kernel_cache_key(query.kernel),
                    extra_key,
                )
                hit = cache.get(keys[index], None)
                if hit is not None:
                    results[index] = list(hit)
                    continue
            missing.append(index)
        if missing:
            prepared.materialize_scans(missing)
            items = fanout_map(worker, missing, n_jobs=options.n_jobs, state=state)
            for item in items:
                if has_stats:
                    index, value, stats = item
                    if totals is not None:
                        accumulate_prune_stats(totals, stats)
                else:
                    index, value = item
                results[index] = value
                if cache is not None:
                    cache.put(keys[index], list(value))
        return results

    def _execute_weighted(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prune: bool,
        totals: dict | None,
    ) -> list:
        weights = _conditioned_weights(query)
        prepared = self._prepared_for(
            query.dataset, query.test_X, query.k, query.kernel, options
        )
        probs = self._fanout_cached(
            query,
            options,
            prepared,
            tag="wt",
            extra_key=_weights_key(weights),
            worker=_pruned_weighted_worker if prune else _weighted_worker,
            state=(prepared, query.dataset, query.k, weights, query.kernel),
            totals=totals,
            has_stats=prune,
        )
        return _weighted_to_kind(query, probs)

    def _execute_topk(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prune: bool,
        totals: dict | None,
    ) -> list:
        dataset = _restricted_dataset(query)
        prepared = self._prepared_for(
            dataset, query.test_X, query.k, query.kernel, options
        )
        return self._fanout_cached(
            query,
            options,
            prepared,
            tag="topk",
            extra_key=(),
            worker=_pruned_topk_worker if prune else _topk_worker,
            state=(prepared, query.k),
            totals=totals,
            has_stats=prune,
        )

    def _execute_label_uncertain(
        self,
        query: CPQuery,
        options: ExecutionOptions,
        prune: bool,
        totals: dict | None,
    ) -> list:
        dataset = _restricted_dataset(query)
        prepared = self._prepared_for(
            dataset.feature_dataset, query.test_X, query.k, query.kernel, options
        )
        counts = self._fanout_cached(
            query,
            options,
            prepared,
            tag="lu",
            extra_key=(dataset.fingerprint(),),
            worker=_pruned_label_uncertain_worker if prune else _label_uncertain_worker,
            state=(prepared, dataset, query.k),
            totals=totals,
            has_stats=prune,
        )
        return _counts_to_kind(query, counts)


# ---------------------------------------------------------------------------
# IncrementalBackend — maintained counts across growing pin sets
# ---------------------------------------------------------------------------


class IncrementalBackend(Backend):
    """Serves repeated pinned queries from maintained incremental state.

    Per query family ``(dataset fingerprint, test matrix, k, kernel)`` the
    backend keeps one :class:`IncrementalCPState` in a small LRU. A query
    whose pins extend the state's pins pays only the delta — the exact
    pruning rule divides most points' counts in O(1) and recounts the few
    contested ones — instead of a full per-point re-preparation. Pins that
    contradict or shrink the maintained set rebuild the state (correct for
    any pin pattern; fast for the monotone pin growth of a cleaning
    session, which is the workload this backend exists for).
    """

    name = "incremental"
    capabilities = BackendCapabilities(
        flavors=frozenset({"binary", "multiclass"}),
        kinds=frozenset(KINDS),
        batchable=True,
        incremental=True,
        exact=True,
        algorithms=frozenset({"auto", "engine"}),
    )

    def __init__(self, max_states: int = 8) -> None:
        self._states: OrderedDict[tuple, IncrementalCPState] = OrderedDict()
        self.max_states = check_positive_int(max_states, "max_states")
        # The backend-wide lock only guards the registry bookkeeping; the
        # expensive per-family work (state builds, pin maintenance) runs
        # under a per-family lock so concurrent sessions on different
        # query families never serialise each other.
        self._lock = threading.Lock()
        self._family_locks: dict[tuple, threading.Lock] = {}
        self.n_reuses = 0
        self.n_rebuilds = 0

    def _family_key(self, query: CPQuery) -> tuple:
        return (
            query.fingerprint(),
            _point_key(query.test_X),
            query.k,
            kernel_cache_key(query.kernel),
        )

    def _warm_state(self, query: CPQuery) -> IncrementalCPState | None:
        """The maintained state if it exists and its pins extend to the query's."""
        with self._lock:
            state = self._states.get(self._family_key(query))
        if state is None:
            return None
        pins = query.pins_dict()
        if all(pins.get(row) == cand for row, cand in state.fixed.items()):
            return state
        return None

    def estimate_cost(self, query, options):
        if self._warm_state(query) is not None:
            return 0.1 * query.workload_size(), "maintained counts, delta pins only"
        return 1.5 * query.workload_size(), "cold start: full preparation + counts"

    def execute(self, query, options=None):
        options = options or ExecutionOptions()
        pins = query.pins_dict()
        key = self._family_key(query)
        with self._lock:
            family_lock = self._family_locks.setdefault(key, threading.Lock())
        with family_lock:
            with self._lock:
                state = self._states.get(key)
            if state is not None and not all(
                pins.get(row) == cand for row, cand in state.fixed.items()
            ):
                state = None  # pins shrank or contradict: rebuild
            if state is None:
                state = IncrementalCPState(
                    query.dataset,
                    query.test_X,
                    k=query.k,
                    kernel=query.kernel,
                    prune=_prune_enabled(query, options),
                )
                with self._lock:
                    self._states[key] = state
                    self.n_rebuilds += 1
            else:
                with self._lock:
                    self.n_reuses += 1
            with self._lock:
                self._states.move_to_end(key)
                while len(self._states) > self.max_states:
                    evicted, _ = self._states.popitem(last=False)
                    self._family_locks.pop(evicted, None)
            delta = sorted(
                (row, cand) for row, cand in pins.items() if row not in state.fixed
            )
            state.pin_many(delta)
            counts = state.counts_all()
            summary = _prune_summary(
                query, state.prune, dict(state.prune_stats) if state.prune else None
            )
            summary["n_rows_skipped"] = state.n_pruned
            summary["n_recomputed"] = state.n_recomputed
            self.last_stats = summary
        return _counts_to_kind(query, counts)


# ---------------------------------------------------------------------------
# Default registry
# ---------------------------------------------------------------------------

register_backend(SequentialBackend())
register_backend(BatchParallelBackend())
register_backend(IncrementalBackend())
