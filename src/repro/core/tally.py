"""Label-tally vectors and their induced predictions (paper §3.1.1).

A *label tally* ``gamma`` records, for every label, how many members of the
top-K set carry that label. The KNN prediction of a possible world is fully
determined by its tally, so the SS algorithms enumerate tallies instead of
worlds. ``Gamma`` (the set of valid tallies) contains every non-negative
integer vector over the label space summing to exactly ``K``.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["valid_tallies", "predicted_label", "tallies_with_prediction"]


@lru_cache(maxsize=None)
def valid_tallies(k: int, n_labels: int) -> tuple[tuple[int, ...], ...]:
    """All tallies ``gamma`` with ``len(gamma) == n_labels`` and ``sum == k``.

    The number of tallies is ``C(n_labels + k - 1, k)`` — the paper's
    ``|Gamma|``. Results are cached; tallies are returned in lexicographic
    order for determinism.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if n_labels < 1:
        raise ValueError(f"n_labels must be >= 1, got {n_labels}")

    def compositions(total: int, parts: int) -> list[tuple[int, ...]]:
        if parts == 1:
            return [(total,)]
        result = []
        for first in range(total + 1):
            for rest in compositions(total - first, parts - 1):
                result.append((first, *rest))
        return result

    return tuple(compositions(k, n_labels))


def predicted_label(tally: tuple[int, ...]) -> int:
    """The label a KNN vote with counts ``tally`` predicts.

    Uses the library-wide tie-break: the smallest label among the maxima
    (consistent with :func:`repro.core.knn.majority_label`).
    """
    best_label = 0
    best_count = tally[0]
    for label, count in enumerate(tally):
        if count > best_count:
            best_label = label
            best_count = count
    return best_label


@lru_cache(maxsize=None)
def tallies_with_prediction(k: int, n_labels: int) -> tuple[tuple[tuple[int, ...], int], ...]:
    """Pairs ``(tally, predicted_label(tally))`` for every valid tally (cached)."""
    return tuple((tally, predicted_label(tally)) for tally in valid_tallies(k, n_labels))
