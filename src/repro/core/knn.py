"""A deterministic K-nearest-neighbour classifier (the paper's substrate, §3).

The classifier follows the textbook recipe the paper states: compute the
similarity of the test example to every training example, take the ``K``
examples with the largest similarity, and return the majority label.

Determinism matters here more than in an ordinary KNN implementation: the CP
engines reason about *every* possible world, so the substrate, the
brute-force oracle and the counting algorithms must all agree on one total
order. We therefore fix the two tie-breaking rules globally:

* **Similarity ties** are broken by row index — the *smaller* row index is
  treated as more similar (the paper: "we can always break a tie by favoring
  a smaller i and j").
* **Vote ties** are broken by label value — the *smallest* label among the
  most-voted wins.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.kernels import Kernel, resolve_kernel
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["KNNClassifier", "majority_label", "top_k_rows"]


def majority_label(labels: Sequence[int], tally_size: int | None = None) -> int:
    """Majority vote with the library-wide tie-break (smallest label wins)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size == 0:
        raise ValueError("cannot vote over an empty label set")
    counts = np.bincount(labels, minlength=tally_size or 0)
    # argmax returns the first (= smallest) index among maxima.
    return int(np.argmax(counts))


def top_k_rows(similarities: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` most similar rows under the global total order.

    Rows are ranked by ``(similarity desc, row index asc)``; the returned
    indices are sorted from most to least similar.
    """
    similarities = np.asarray(similarities, dtype=np.float64)
    n = similarities.shape[0]
    if k > n:
        raise ValueError(f"k={k} exceeds the number of rows {n}")
    # lexsort sorts by the last key first; negate similarity for descending
    # order and rely on row index (ascending) to break ties.
    order = np.lexsort((np.arange(n), -similarities))
    return order[:k]


class KNNClassifier:
    """K-nearest-neighbour classification over a *complete* training set.

    Parameters
    ----------
    k:
        Number of neighbours (the paper's evaluation uses ``k=3``).
    kernel:
        Similarity kernel; defaults to negative Euclidean distance.

    Examples
    --------
    >>> import numpy as np
    >>> clf = KNNClassifier(k=1).fit(np.array([[0.0], [10.0]]), [0, 1])
    >>> clf.predict_one(np.array([1.0]))
    0
    """

    def __init__(self, k: int = 3, kernel: Kernel | str | None = None) -> None:
        self.k = check_positive_int(k, "k")
        self.kernel = resolve_kernel(kernel)
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._features is not None

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "KNNClassifier":
        """Memorise the training set (KNN is a lazy learner)."""
        features = check_matrix(features, "features")
        labels_arr = np.asarray(labels, dtype=np.int64)
        if labels_arr.ndim != 1 or labels_arr.shape[0] != features.shape[0]:
            raise ValueError(
                f"labels must be a vector of length {features.shape[0]}, got shape {labels_arr.shape}"
            )
        if labels_arr.min() < 0:
            raise ValueError("labels must be non-negative integers")
        if self.k > features.shape[0]:
            raise ValueError(f"k={self.k} exceeds the training-set size {features.shape[0]}")
        self._features = features
        self._labels = labels_arr
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._features is None or self._labels is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        return self._features, self._labels

    # ------------------------------------------------------------------
    def neighbors_one(self, t: np.ndarray) -> np.ndarray:
        """Row indices of the K nearest neighbours of ``t`` (most similar first)."""
        features, _ = self._require_fitted()
        t = check_vector(t, "t", length=features.shape[1])
        sims = self.kernel.similarities(features, t)
        return top_k_rows(sims, self.k)

    def predict_one(self, t: np.ndarray) -> int:
        """Predicted label for a single test example."""
        _, labels = self._require_fitted()
        top = self.neighbors_one(t)
        return majority_label(labels[top])

    def predict(self, test_features: np.ndarray) -> np.ndarray:
        """Predicted labels for a matrix of test examples."""
        features, _ = self._require_fitted()
        test_features = check_matrix(test_features, "test_features", n_cols=features.shape[1])
        return np.array([self.predict_one(t) for t in test_features], dtype=np.int64)

    def accuracy(self, test_features: np.ndarray, test_labels: Sequence[int]) -> float:
        """Fraction of correct predictions on a labelled test set."""
        predictions = self.predict(test_features)
        test_labels_arr = np.asarray(test_labels, dtype=np.int64)
        if test_labels_arr.shape != predictions.shape:
            raise ValueError(
                f"test_labels must have shape {predictions.shape}, got {test_labels_arr.shape}"
            )
        return float(np.mean(predictions == test_labels_arr))

    def __repr__(self) -> str:
        return f"KNNClassifier(k={self.k}, kernel={self.kernel!r})"
