"""Delta maintenance of CP state: O(Δ) updates instead of full recompute.

The paper's cleaning loop is inherently incremental — every repaired cell
*restricts* a candidate set — and live serving adds two more write shapes:
appending freshly labelled rows and retiring rows. This module defines the
three deltas and a maintained state that absorbs them without re-running
the kernel or re-counting every validation point:

* :class:`CellRepair` — restrict a row to one of its candidates (the
  physical form of a cleaning pin);
* :class:`RowAppend` — add a new (candidate set, label) training row;
* :class:`RowDelete` — remove a training row.

The maintenance rule generalises :class:`repro.core.incremental.
IncrementalCPState`'s exact pruning (which handles pins only) to all three
delta kinds via a *provenance* annotation. For every test point the state
knows its **support set**: the rows whose candidate choice can possibly
change the point's prediction (a row is outside the support set iff at
least ``k`` other rows have a guaranteed minimum similarity strictly above
the row's best possible similarity — then the top-K is filled without it
in every world). Each maintained Q2 count vector is thereby annotated with
the rows it truly depends on, and a delta touching row ``r`` splits the
points into:

* points with ``r`` **outside** the support set — the count vector
  transforms by an exact big-integer scalar (divide by ``m_r`` for a
  repair or delete, multiply by ``m_new`` for an append); the certain
  label is untouched;
* points with ``r`` **inside** the support set — recounted with one scan
  each, from maintained similarities (no kernel work).

Similarities are maintained per row as ``(n_points, m_row)`` blocks. The
built-in kernels compute ``pairwise`` with per-element reductions that do
not depend on which other candidates share the call (see
:mod:`repro.core.kernels`), so a block computed for an appended row alone
is bit-identical to the corresponding slice of a from-scratch pairwise
over the whole stacked candidate matrix — which is what makes every
maintained count provably equal to a full recompute
(``tests/fuzz/test_update_sequences.py`` holds the state to that standard
over random delta interleavings).

:meth:`DeltaMaintainedState.prepared_batch` reassembles a
:class:`~repro.core.batch_engine.PreparedBatch` from the maintained blocks
— a concatenation, not a kernel call — which is how
:class:`repro.service.registry.DatasetEntry` keeps warm prepared state
across ``PATCH`` traffic and how
:meth:`repro.cleaning.sequential.CleaningSession.apply_repair` turns a
hypothetical pin into a physical repair without re-preparing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.batch_engine import PreparedBatch, _counts_from_scan
from repro.core.dataset import IncompleteDataset
from repro.core.entropy import certain_label_from_counts
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.pruning import (
    accumulate_prune_stats,
    empty_prune_stats,
    prune_mask,
)
from repro.core.scan import _scan_from_sims, candidate_index_arrays
from repro.utils.validation import check_matrix, check_positive_int

__all__ = [
    "CellRepair",
    "RowAppend",
    "RowDelete",
    "Delta",
    "apply_delta_to_dataset",
    "dominating_rows",
    "row_is_irrelevant",
    "DeltaMaintainedState",
]


# ---------------------------------------------------------------------------
# The delta vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellRepair:
    """Restrict ``row`` to its ``candidate``-th value (a physical repair)."""

    row: int
    candidate: int


@dataclass(frozen=True, eq=False)
class RowAppend:
    """Append a new training row with candidate set ``candidates`` / ``label``."""

    candidates: np.ndarray
    label: int


@dataclass(frozen=True)
class RowDelete:
    """Remove training row ``row`` (later rows shift down by one)."""

    row: int


Delta = CellRepair | RowAppend | RowDelete


def apply_delta_to_dataset(dataset: IncompleteDataset, delta: Delta) -> IncompleteDataset:
    """The pure dataset-level effect of one delta (no maintained state)."""
    if isinstance(delta, CellRepair):
        return dataset.restrict_row(delta.row, delta.candidate)
    if isinstance(delta, RowAppend):
        return dataset.append_row(delta.candidates, delta.label)
    if isinstance(delta, RowDelete):
        return dataset.delete_row(delta.row)
    raise TypeError(f"unknown delta type {type(delta).__name__}")


# ---------------------------------------------------------------------------
# The shared irrelevance (provenance) rule
# ---------------------------------------------------------------------------


def dominating_rows(mins: np.ndarray, best: float) -> int:
    """How many rows have a guaranteed similarity strictly above ``best``."""
    return int(np.count_nonzero(mins > best))


def row_is_irrelevant(mins: np.ndarray, row: int, best: float, k: int) -> bool:
    """True iff ``row`` can never enter the top-K for this point.

    ``mins`` holds every row's minimum candidate similarity to the point
    and ``best`` the target row's maximum. When at least ``k`` *other*
    rows beat ``best`` with their worst candidate, the top-K is filled
    without the row in every world, so its candidate choice never affects
    the prediction — the rule :class:`~repro.core.incremental.
    IncrementalCPState` applies to pins, shared here for all delta kinds.
    """
    n_dominating = dominating_rows(mins, best) - (1 if mins[row] > best else 0)
    return n_dominating >= k


def _exact_scale(counts: list[int], numer: int, denom: int) -> list[int]:
    """``counts * numer / denom`` with the division proven exact."""
    if denom == 1:
        return [c * numer for c in counts]
    scaled = [c * numer // denom for c in counts]
    if [c * denom for c in scaled] != [c * numer for c in counts]:
        raise AssertionError(
            f"internal error: pruned counts not divisible by {denom}"
        )
    return scaled


# ---------------------------------------------------------------------------
# The maintained state
# ---------------------------------------------------------------------------


class DeltaMaintainedState:
    """Exact Q2 counts for many test points, maintained across deltas.

    Parameters
    ----------
    dataset:
        The incomplete training set. Deltas derive new (immutable)
        datasets; :attr:`dataset` always names the current version.
    test_points:
        The points whose counts are maintained, shape ``(n_points, d)``.
    k, kernel:
        KNN parameters, as for :func:`repro.core.queries.q2_counts`.
    sims_matrix:
        Optional precomputed ``(n_points, total_candidates)`` similarity
        matrix (e.g. from an existing
        :class:`~repro.core.batch_engine.PreparedBatch`) to skip the
        initial kernel call. Must describe exactly ``(dataset,
        test_points, kernel)``.
    prune:
        With ``True`` every recount builds its scan from the *kept* rows
        only: the maintained per-point min/max envelopes already are the
        candidate intervals the certificate rule needs, so pruning costs
        one vectorised mask — no extra interval pass. Counts stay
        bit-identical (:meth:`verify` still passes) and ``prune_stats``
        accumulates the telemetry.
    """

    def __init__(
        self,
        dataset: IncompleteDataset,
        test_points: Sequence[np.ndarray] | np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
        *,
        sims_matrix: np.ndarray | None = None,
        prune: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if self.k > dataset.n_rows:
            raise ValueError(
                f"k={self.k} exceeds the number of training rows {dataset.n_rows}"
            )
        self.dataset = dataset
        self.kernel = resolve_kernel(kernel)
        points = np.asarray(test_points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.ndim != 2 or points.shape[1] != dataset.n_features:
            raise ValueError(
                f"test_points must have shape (n_points, {dataset.n_features}), "
                f"got {points.shape}"
            )
        self._points = points
        counts = dataset.candidate_counts()
        if sims_matrix is None:
            stacked = np.concatenate(
                [dataset.candidates(i) for i in range(dataset.n_rows)], axis=0
            )
            sims_matrix = self.kernel.pairwise(stacked, points)
        else:
            sims_matrix = np.asarray(sims_matrix, dtype=np.float64)
            expected = (points.shape[0], int(counts.sum()))
            if sims_matrix.shape != expected:
                raise ValueError(
                    f"sims_matrix must have shape {expected}, got {sims_matrix.shape}"
                )
        offsets = np.cumsum(counts)[:-1]
        # Per-row (n_points, m_row) similarity blocks — the maintained form.
        self._row_sims: list[np.ndarray] = [
            block.copy() for block in np.split(sims_matrix, offsets, axis=1)
        ]
        self._mins = np.stack([b.min(axis=1) for b in self._row_sims], axis=1)
        self._maxs = np.stack([b.max(axis=1) for b in self._row_sims], axis=1)
        self.prune = bool(prune)
        self.prune_stats = empty_prune_stats()
        self._counts: list[list[int]] = [
            self._recount(point) for point in range(self.n_points)
        ]
        self.version = 0
        self.n_pruned = 0
        self.n_recomputed = 0

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of maintained test points."""
        return int(self._points.shape[0])

    @property
    def test_points(self) -> np.ndarray:
        """The maintained test matrix (``(n_points, d)``)."""
        return self._points

    def counts(self, point: int) -> list[int]:
        """Current Q2 counts of test point ``point``."""
        return list(self._counts[point])

    def counts_all(self) -> list[list[int]]:
        """Current Q2 counts of every maintained point (copies, point order)."""
        return [list(c) for c in self._counts]

    def certain_label(self, point: int) -> int | None:
        """The CP'ed label of point ``point``, or ``None``."""
        return certain_label_from_counts(self._counts[point])

    def certain_labels(self) -> list[int | None]:
        """CP'ed label per point (``None`` where not certain)."""
        return [certain_label_from_counts(c) for c in self._counts]

    def provenance(self, point: int) -> frozenset[int]:
        """The support set of ``point``: rows its counts truly depend on.

        A delta touching a row *outside* this set transforms the point's
        counts by an exact scalar and cannot change its certain label —
        the annotation the surgical invalidation in
        :mod:`repro.service.registry` keys on.
        """
        relevant = ~self._irrelevant_mask_for_point(point)
        return frozenset(int(r) for r in np.nonzero(relevant)[0])

    # ------------------------------------------------------------------
    # The provenance rule, vectorised
    # ------------------------------------------------------------------
    def _irrelevant_mask_for_point(self, point: int) -> np.ndarray:
        """Per-row irrelevance at one point (rule of :func:`row_is_irrelevant`)."""
        mins = self._mins[point]
        sorted_mins = np.sort(mins)
        n = mins.shape[0]
        bests = self._maxs[point]
        n_dominating = n - np.searchsorted(sorted_mins, bests, side="right")
        n_dominating = n_dominating - (mins > bests)
        return n_dominating >= self.k

    def _irrelevant_mask(self, row: int) -> np.ndarray:
        """Per-point: is ``row`` outside the support set? (``(n_points,)``)"""
        bests = self._maxs[:, row]
        n_dominating = np.count_nonzero(self._mins > bests[:, None], axis=1)
        n_dominating = n_dominating - (self._mins[:, row] > bests)
        return n_dominating >= self.k

    def _append_irrelevant_mask(self, new_maxs: np.ndarray) -> np.ndarray:
        """Per-point irrelevance of a row about to be appended."""
        n_dominating = np.count_nonzero(self._mins > new_maxs[:, None], axis=1)
        return n_dominating >= self.k

    # ------------------------------------------------------------------
    # Counting from maintained similarities
    # ------------------------------------------------------------------
    def _recount(self, point: int) -> list[int]:
        """One fresh scan for ``point`` from the maintained similarity blocks.

        With :attr:`prune` on, the scan is built from the kept rows' blocks
        only — the maintained envelopes are exactly the per-row candidate
        intervals, so the certificate is one :func:`prune_mask` call — and
        the reduced counts are scaled back by the pruned rows' world
        multiplicity. Exact: a pruned row is outside every world's top-K,
        so its candidates only multiply the count of each world.
        """
        if self.prune:
            return self._recount_pruned(point)
        rows, cands, counts = candidate_index_arrays(self.dataset)
        sims = np.concatenate([block[point] for block in self._row_sims])
        scan = _scan_from_sims(
            sims, rows, cands, self.dataset.labels.copy(), counts
        )
        return _counts_from_scan(scan, self.k, self.dataset.n_labels)

    def _recount_pruned(self, point: int) -> list[int]:
        pruned = prune_mask(self._mins[point], self._maxs[point], self.k)
        keep = np.nonzero(~pruned)[0]
        blocks = [self._row_sims[int(row)] for row in keep]
        widths = np.array([block.shape[1] for block in blocks], dtype=np.int64)
        sims = np.concatenate([block[point] for block in blocks])
        rows = np.repeat(np.arange(keep.shape[0], dtype=np.int64), widths)
        cands = np.concatenate(
            [np.arange(width, dtype=np.int64) for width in widths]
        )
        labels = self.dataset.labels[keep].copy()
        # The kept subset of the full scan order IS the scan order of the
        # kept problem (the sort key (sim, row, cand) restricts to a strict
        # total order on any subset; the monotone row remap preserves it),
        # so counting the reduced scan and scaling back is bit-identical.
        scan = _scan_from_sims(sims, rows, cands, labels, widths)
        counts = _counts_from_scan(scan, self.k, self.dataset.n_labels)
        scale = 1
        for row in np.nonzero(pruned)[0]:
            scale *= self._row_sims[int(row)].shape[1]
        total = int(sum(block.shape[1] for block in self._row_sims))
        accumulate_prune_stats(
            self.prune_stats,
            {
                "n_rows": len(self._row_sims),
                "n_rows_pruned": int(np.count_nonzero(pruned)),
                "n_candidates": total,
                "n_pruned": total - int(widths.sum()),
                "n_scanned": int(widths.sum()),
                "early_terminated": False,
            },
        )
        return [count * scale for count in counts]

    def _resize_labels(
        self, counts: list[int], new_n_labels: int, point: int
    ) -> list[int]:
        """Adjust a pruned count vector when a delta changes the label space.

        Appends extend with zero-count labels; deletes drop trailing labels
        that (provably, for a pruned point) never won a world.
        """
        if new_n_labels > len(counts):
            return counts + [0] * (new_n_labels - len(counts))
        if new_n_labels < len(counts):
            if any(counts[new_n_labels:]):
                raise AssertionError(
                    f"internal error: dropped label has non-zero count at "
                    f"point {point}: {counts}"
                )
            return counts[:new_n_labels]
        return counts

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def apply(self, delta: Delta) -> dict:
        """Apply one delta; returns a report of what the update touched.

        The report maps ``op`` (delta kind), ``row``, ``version`` (the
        state's version after the delta), ``n_pruned`` / ``n_recomputed``
        (points handled by the scalar rule vs recounted this delta) and
        ``touched_points`` (the recounted point indices — exactly the
        points whose provenance contained the touched row).
        """
        if isinstance(delta, CellRepair):
            report = self._apply_repair(delta.row, delta.candidate)
        elif isinstance(delta, RowAppend):
            report = self._apply_append(delta.candidates, delta.label)
        elif isinstance(delta, RowDelete):
            report = self._apply_delete(delta.row)
        else:
            raise TypeError(f"unknown delta type {type(delta).__name__}")
        self.version += 1
        report["version"] = self.version
        return report

    def apply_many(self, deltas: Sequence[Delta]) -> list[dict]:
        """Apply several deltas in order; one report per delta."""
        return [self.apply(delta) for delta in deltas]

    def _apply_repair(self, row: int, candidate: int) -> dict:
        if not 0 <= row < self.dataset.n_rows:
            raise IndexError(f"row {row} out of range for {self.dataset.n_rows} rows")
        m_row = self._row_sims[row].shape[1]
        if not 0 <= candidate < m_row:
            raise IndexError(
                f"candidate {candidate} out of range for row {row} "
                f"with {m_row} candidates"
            )
        irrelevant = self._irrelevant_mask(row)
        self.dataset = self.dataset.restrict_row(row, candidate)
        pinned = self._row_sims[row][:, candidate].copy()
        self._row_sims[row] = pinned.reshape(-1, 1)
        self._mins[:, row] = pinned
        self._maxs[:, row] = pinned
        touched: list[int] = []
        for point in range(self.n_points):
            if m_row == 1 or irrelevant[point]:
                self._counts[point] = _exact_scale(self._counts[point], 1, m_row)
                self.n_pruned += 1
            else:
                self._counts[point] = self._recount(point)
                touched.append(point)
                self.n_recomputed += 1
        return {
            "op": "cell_repair",
            "row": row,
            "n_pruned": self.n_points - len(touched),
            "n_recomputed": len(touched),
            "touched_points": touched,
        }

    def _apply_append(self, candidates: np.ndarray, label: int) -> dict:
        candidates = check_matrix(
            candidates, "candidates", n_cols=self.dataset.n_features
        )
        self.dataset = self.dataset.append_row(candidates, label)
        new_n_labels = self.dataset.n_labels
        m_new = candidates.shape[0]
        block = self.kernel.pairwise(candidates, self._points)
        new_maxs = block.max(axis=1)
        irrelevant = self._append_irrelevant_mask(new_maxs)
        self._row_sims.append(block)
        self._mins = np.concatenate(
            [self._mins, block.min(axis=1)[:, None]], axis=1
        )
        self._maxs = np.concatenate([self._maxs, new_maxs[:, None]], axis=1)
        touched: list[int] = []
        for point in range(self.n_points):
            if irrelevant[point]:
                counts = self._resize_labels(
                    self._counts[point], new_n_labels, point
                )
                self._counts[point] = _exact_scale(counts, m_new, 1)
                self.n_pruned += 1
            else:
                self._counts[point] = self._recount(point)
                touched.append(point)
                self.n_recomputed += 1
        return {
            "op": "row_append",
            "row": self.dataset.n_rows - 1,
            "n_pruned": self.n_points - len(touched),
            "n_recomputed": len(touched),
            "touched_points": touched,
        }

    def _apply_delete(self, row: int) -> dict:
        if not 0 <= row < self.dataset.n_rows:
            raise IndexError(f"row {row} out of range for {self.dataset.n_rows} rows")
        if self.dataset.n_rows - 1 < self.k:
            raise ValueError(
                f"cannot delete row {row}: k={self.k} would exceed the "
                f"remaining {self.dataset.n_rows - 1} rows"
            )
        m_row = self._row_sims[row].shape[1]
        irrelevant = self._irrelevant_mask(row)
        self.dataset = self.dataset.delete_row(row)
        new_n_labels = self.dataset.n_labels
        del self._row_sims[row]
        self._mins = np.delete(self._mins, row, axis=1)
        self._maxs = np.delete(self._maxs, row, axis=1)
        touched: list[int] = []
        for point in range(self.n_points):
            if irrelevant[point]:
                counts = _exact_scale(self._counts[point], 1, m_row)
                self._counts[point] = self._resize_labels(
                    counts, new_n_labels, point
                )
                self.n_pruned += 1
            else:
                self._counts[point] = self._recount(point)
                touched.append(point)
                self.n_recomputed += 1
        return {
            "op": "row_delete",
            "row": row,
            "n_pruned": self.n_points - len(touched),
            "n_recomputed": len(touched),
            "touched_points": touched,
        }

    # ------------------------------------------------------------------
    # Warm-state handoff and verification
    # ------------------------------------------------------------------
    def sims_matrix(self) -> np.ndarray:
        """The maintained ``(n_points, total_candidates)`` similarity matrix.

        Bit-identical to ``kernel.pairwise(stacked_candidates, test_points)``
        on the current dataset — assembled from the maintained blocks, no
        kernel work.
        """
        return np.concatenate(self._row_sims, axis=1)

    def prepared_batch(self) -> PreparedBatch:
        """A :class:`~repro.core.batch_engine.PreparedBatch` for the current
        dataset version, built from maintained similarities (no kernel call)."""
        return PreparedBatch(
            self.dataset,
            self._points,
            k=self.k,
            kernel=self.kernel,
            sims_matrix=self.sims_matrix(),
        )

    def verify(self) -> None:
        """Cross-check every maintained count against a full recompute."""
        fresh = DeltaMaintainedState(
            self.dataset, self._points, k=self.k, kernel=self.kernel
        )
        sims = self.sims_matrix()
        if not np.array_equal(sims, fresh.sims_matrix()):
            raise AssertionError("maintained similarities diverged from recompute")
        for point in range(self.n_points):
            if self._counts[point] != fresh._counts[point]:
                raise AssertionError(
                    f"maintained counts diverged at point {point}: "
                    f"{self._counts[point]} != {fresh._counts[point]}"
                )
