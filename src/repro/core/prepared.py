"""Reusable per-test-point query state for cleaning workloads.

CPClean evaluates Q2 on *many* variants of the same incomplete dataset —
"what if row ``i`` were cleaned to candidate ``j``?" — against a fixed
validation point. Candidate feature values never change during cleaning
(cleaning only *restricts* candidate sets), so the similarity computation
and the global sort can be done once per test point and shared across all
variants. :class:`PreparedQuery` owns that shared state and answers:

* :meth:`counts` — Q2 counts with any set of rows pinned to one candidate;
* :meth:`counts_per_fixing` — for a target row, the Q2 counts of *every*
  "row fixed to candidate j" variant, all from a **single scan**: at each
  boundary position the target row is either already below the boundary
  (its hypothetical candidate was scanned earlier) or still above it, so
  per-variant results decompose into prefix sums of two per-position
  aggregates plus a boundary term at the variant's own position;
* :meth:`certain_label_minmax` — the MM check from cached per-row extreme
  similarities.

This turns one CPClean candidate-selection step from
``O(n_dirty * M * |Dval|)`` full Q2 evaluations into
``O(n_dirty * |Dval|)`` single scans.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.engine import LabelPolynomials
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import majority_label, top_k_rows
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.tally import tallies_with_prediction
from repro.utils.validation import check_positive_int

__all__ = ["PreparedQuery"]


class PreparedQuery:
    """Cached similarity/sort state for CP queries against one test point."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        t: np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
        *,
        scan: ScanOrder | None = None,
        row_sims: list[np.ndarray] | None = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if self.k > dataset.n_rows:
            raise ValueError(f"k={self.k} exceeds the number of training rows {dataset.n_rows}")
        self.dataset = dataset
        self.kernel = resolve_kernel(kernel)
        self.n_labels = dataset.n_labels
        # `scan`/`row_sims` let a batch preparer (PreparedBatch) hand over
        # state it computed vectorised for many test points at once; they
        # must describe the same (dataset, t, kernel) the caller passes.
        self._scan = scan if scan is not None else compute_scan_order(dataset, t, self.kernel)
        self._tallies = tallies_with_prediction(self.k, self.n_labels)
        if row_sims is not None:
            self._row_sims = row_sims
        else:
            # Per-row candidate similarities in candidate order, for MinMax.
            self._row_sims = [
                np.empty(int(m), dtype=np.float64) for m in self._scan.row_counts
            ]
            for position in range(self._scan.n_candidates):
                row = int(self._scan.rows[position])
                cand = int(self._scan.cands[position])
                self._row_sims[row][cand] = float(self._scan.sims[position])

    # ------------------------------------------------------------------
    def _effective_counts(self, fixed: Mapping[int, int]) -> np.ndarray:
        counts = self._scan.row_counts.copy()
        for row, cand in fixed.items():
            if not 0 <= cand < counts[row]:
                raise IndexError(
                    f"fixed candidate {cand} out of range for row {row} "
                    f"with {counts[row]} candidates"
                )
            counts[row] = 1
        return counts

    def _is_active(self, fixed: Mapping[int, int], row: int, cand: int) -> bool:
        pinned = fixed.get(row)
        return pinned is None or pinned == cand

    # ------------------------------------------------------------------
    def counts(self, fixed: Mapping[int, int] | None = None) -> list[int]:
        """Q2 counts for the dataset with ``fixed`` rows pinned to a candidate.

        ``fixed`` maps row index to candidate index; unpinned rows keep
        their full candidate sets. With ``fixed=None`` this equals
        ``q2_counts(dataset, t)``.
        """
        fixed = dict(fixed or {})
        scan = self._scan
        counts = self._effective_counts(fixed)
        state = LabelPolynomials(scan.row_labels, counts, self.k, self.n_labels)
        result = [0] * self.n_labels

        for position in range(scan.n_candidates):
            row = int(scan.rows[position])
            cand = int(scan.cands[position])
            if not self._is_active(fixed, row, cand):
                continue
            state.advance(row)
            coeffs = state.coefficients_excluding(row)
            y_row = int(scan.row_labels[row])
            for tally, winner in self._tallies:
                if tally[y_row] < 1:
                    continue
                support = 1
                for label, slots in enumerate(tally):
                    want = slots - 1 if label == y_row else slots
                    support *= coeffs[label][want]
                    if support == 0:
                        break
                result[winner] += support
        return result

    # ------------------------------------------------------------------
    def counts_per_fixing(
        self, target_row: int, fixed: Mapping[int, int] | None = None
    ) -> list[list[int]]:
        """Q2 counts of every "``target_row`` fixed to candidate j" variant.

        Returns one count vector per candidate of ``target_row`` (in
        candidate order), each identical to
        ``counts({**fixed, target_row: j})`` but all computed in a single
        scan. ``target_row`` must not itself be pinned in ``fixed``.
        """
        fixed = dict(fixed or {})
        if target_row in fixed:
            raise ValueError(f"target_row {target_row} is already pinned in `fixed`")
        scan = self._scan
        counts = self._effective_counts(fixed)
        n_target = int(counts[target_row])
        state = LabelPolynomials(
            scan.row_labels, counts, self.k, self.n_labels, skip_row=target_row
        )
        y_target = int(scan.row_labels[target_row])

        cum_in = [0] * self.n_labels
        cum_out = [0] * self.n_labels
        # Per target candidate: (snapshot of cum_in, snapshot of cum_out,
        # boundary-at-target contribution).
        snapshots: list[tuple[list[int], list[int], list[int]] | None] = [None] * n_target

        for position in range(scan.n_candidates):
            row = int(scan.rows[position])
            cand = int(scan.cands[position])
            if not self._is_active(fixed, row, cand):
                continue
            state.advance(row)
            if row == target_row:
                # Hypothetical boundary at (target_row, cand): the target is
                # in the top-K, all other rows contribute via the polynomials.
                boundary = [0] * self.n_labels
                coeffs = state.coefficients()
                for tally, winner in self._tallies:
                    if tally[y_target] < 1:
                        continue
                    support = 1
                    for label, slots in enumerate(tally):
                        want = slots - 1 if label == y_target else slots
                        support *= coeffs[label][want]
                        if support == 0:
                            break
                    boundary[winner] += support
                snapshots[cand] = (list(cum_in), list(cum_out), boundary)
                continue

            coeffs = state.coefficients_excluding(row)
            y_row = int(scan.row_labels[row])
            for tally, winner in self._tallies:
                if tally[y_row] < 1:
                    continue
                # Variant A: target below the boundary (contributes nothing).
                support = 1
                for label, slots in enumerate(tally):
                    want = slots - 1 if label == y_row else slots
                    support *= coeffs[label][want]
                    if support == 0:
                        break
                cum_out[winner] += support
                # Variant B: target above the boundary (occupies one slot of
                # its own label).
                if tally[y_target] < (2 if y_target == y_row else 1):
                    continue
                support = 1
                for label, slots in enumerate(tally):
                    want = slots - (label == y_row) - (label == y_target)
                    support *= coeffs[label][want]
                    if support == 0:
                        break
                cum_in[winner] += support

        expected_total = math.prod(
            int(m) for n, m in enumerate(counts) if n != target_row
        )
        results: list[list[int]] = []
        for cand in range(n_target):
            snap = snapshots[cand]
            if snap is None:
                raise RuntimeError(
                    f"candidate {cand} of row {target_row} never appeared in the scan"
                )
            in_before, out_before, boundary = snap
            variant = [
                in_before[label] + (cum_out[label] - out_before[label]) + boundary[label]
                for label in range(self.n_labels)
            ]
            if sum(variant) != expected_total:
                raise AssertionError(
                    f"internal error: variant counts sum to {sum(variant)}, "
                    f"expected {expected_total}"
                )
            results.append(variant)
        return results

    # ------------------------------------------------------------------
    def certain_label_minmax(self, fixed: Mapping[int, int] | None = None) -> int | None:
        """MM check (binary labels): the CP'ed label or ``None``.

        Uses the cached per-row candidate similarities; ``fixed`` rows use
        their pinned candidate's similarity as both extreme.
        """
        if self.n_labels > 2:
            raise ValueError("the MinMax check is only valid for binary classification")
        fixed = dict(fixed or {})
        labels = self._scan.row_labels
        n = labels.shape[0]
        mins = np.empty(n, dtype=np.float64)
        maxs = np.empty(n, dtype=np.float64)
        for row in range(n):
            pinned = fixed.get(row)
            if pinned is not None:
                sim = self._row_sims[row][pinned]
                mins[row] = sim
                maxs[row] = sim
            else:
                mins[row] = self._row_sims[row].min()
                maxs[row] = self._row_sims[row].max()

        winners = []
        for target in range(self.n_labels):
            sims = np.where(labels == target, maxs, mins)
            top = top_k_rows(sims, self.k)
            if majority_label(labels[top], tally_size=self.n_labels) == target:
                winners.append(target)
        return winners[0] if len(winners) == 1 else None
