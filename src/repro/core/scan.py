"""Shared similarity/scan-order infrastructure for the SS-family algorithms.

Every SortScan variant starts the same way: compute the similarity of all
candidates to the test example and sort them in increasing similarity (paper
§3.1, "sort and scan"). This module computes that structure once so the
faithful Algorithm-1 implementation, the fast incremental engine, the SS-DC
tree and the CPClean entropy engine all share a single, consistent total
order.

The total order extends the tie-break of :mod:`repro.core.knn`: candidates
are ranked by ``(similarity, row index desc, candidate index desc)`` in scan
(ascending) direction, so that among equal similarities the candidate with
the *smaller* ``(row, candidate)`` pair counts as *more* similar — the
paper's "break a tie by favoring a smaller i and j".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.utils.validation import check_vector

__all__ = ["ScanOrder", "compute_scan_order", "candidate_similarities"]


def candidate_similarities(
    dataset: IncompleteDataset, t: np.ndarray, kernel: Kernel | str | None = None
) -> list[np.ndarray]:
    """Similarity of every candidate to ``t``; entry ``i`` has shape ``(m_i,)``."""
    kernel = resolve_kernel(kernel)
    t = check_vector(t, "t", length=dataset.n_features)
    return [kernel.similarities(dataset.candidates(i), t) for i in range(dataset.n_rows)]


@dataclass(frozen=True)
class ScanOrder:
    """All candidates of a dataset sorted by increasing similarity to ``t``.

    Attributes
    ----------
    rows:
        Row index of each candidate, in scan order (``(P,)`` where ``P`` is
        the total number of candidates).
    cands:
        Candidate index *within its row* of each candidate, in scan order.
    sims:
        Similarity values in scan order (non-decreasing).
    row_labels:
        Label of each dataset row (``(N,)``), cached here for the engines.
    row_counts:
        Candidate-set size ``m_i`` per row (``(N,)``).
    """

    rows: np.ndarray
    cands: np.ndarray
    sims: np.ndarray
    row_labels: np.ndarray
    row_counts: np.ndarray

    @property
    def n_candidates(self) -> int:
        return int(self.rows.shape[0])

    @property
    def n_rows(self) -> int:
        return int(self.row_counts.shape[0])


def compute_scan_order(
    dataset: IncompleteDataset, t: np.ndarray, kernel: Kernel | str | None = None
) -> ScanOrder:
    """Sort all candidates of ``dataset`` by increasing similarity to ``t``.

    Cost is ``O(N M log(N M))`` — the sort term in the paper's complexity
    analysis of SS.
    """
    sims_per_row = candidate_similarities(dataset, t, kernel)
    counts = dataset.candidate_counts()
    rows = np.repeat(np.arange(dataset.n_rows, dtype=np.int64), counts)
    cands = np.concatenate([np.arange(int(m), dtype=np.int64) for m in counts])
    sims = np.concatenate(sims_per_row)
    # Ascending similarity; among ties the larger (row, cand) pair comes
    # first so the smaller pair is treated as more similar (it sits later in
    # the scan). lexsort uses the last key as the primary key.
    order = np.lexsort((-cands, -rows, sims))
    return ScanOrder(
        rows=rows[order],
        cands=cands[order],
        sims=sims[order],
        row_labels=dataset.labels.copy(),
        row_counts=counts,
    )
