"""Shared similarity/scan-order infrastructure for the SS-family algorithms.

Every SortScan variant starts the same way: compute the similarity of all
candidates to the test example and sort them in increasing similarity (paper
§3.1, "sort and scan"). This module computes that structure once so the
faithful Algorithm-1 implementation, the fast incremental engine, the SS-DC
tree and the CPClean entropy engine all share a single, consistent total
order.

The total order extends the tie-break of :mod:`repro.core.knn`: candidates
are ranked by ``(similarity, row index desc, candidate index desc)`` in scan
(ascending) direction, so that among equal similarities the candidate with
the *smaller* ``(row, candidate)`` pair counts as *more* similar — the
paper's "break a tie by favoring a smaller i and j".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.utils.validation import check_vector

__all__ = [
    "ScanOrder",
    "compute_scan_order",
    "compute_scan_orders",
    "candidate_similarities",
    "candidate_index_arrays",
    "stack_candidates",
]


def candidate_similarities(
    dataset: IncompleteDataset, t: np.ndarray, kernel: Kernel | str | None = None
) -> list[np.ndarray]:
    """Similarity of every candidate to ``t``; entry ``i`` has shape ``(m_i,)``."""
    kernel = resolve_kernel(kernel)
    t = check_vector(t, "t", length=dataset.n_features)
    return [kernel.similarities(dataset.candidates(i), t) for i in range(dataset.n_rows)]


@dataclass(frozen=True)
class ScanOrder:
    """All candidates of a dataset sorted by increasing similarity to ``t``.

    Attributes
    ----------
    rows:
        Row index of each candidate, in scan order (``(P,)`` where ``P`` is
        the total number of candidates).
    cands:
        Candidate index *within its row* of each candidate, in scan order.
    sims:
        Similarity values in scan order (non-decreasing).
    row_labels:
        Label of each dataset row (``(N,)``), cached here for the engines.
    row_counts:
        Candidate-set size ``m_i`` per row (``(N,)``).
    """

    rows: np.ndarray
    cands: np.ndarray
    sims: np.ndarray
    row_labels: np.ndarray
    row_counts: np.ndarray

    @property
    def n_candidates(self) -> int:
        return int(self.rows.shape[0])

    @property
    def n_rows(self) -> int:
        return int(self.row_counts.shape[0])


def candidate_index_arrays(
    dataset: IncompleteDataset,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``(rows, cands, counts)`` bookkeeping of the stacked candidate order.

    The index arrays of :func:`stack_candidates` without materialising the
    stacked feature matrix itself — consumers that receive similarities from
    elsewhere (a precomputed ``sims_matrix``, a streamed tile) only need to
    know which stacked position belongs to which (row, candidate) pair.
    """
    counts = dataset.candidate_counts()
    rows = np.repeat(np.arange(dataset.n_rows, dtype=np.int64), counts)
    cands = np.concatenate([np.arange(int(m), dtype=np.int64) for m in counts])
    return rows, cands, counts


def stack_candidates(
    dataset: IncompleteDataset,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten every candidate set into one matrix, in candidate order.

    Returns ``(stacked, rows, cands, counts)`` where ``stacked`` is the
    ``(P, d)`` matrix of all candidates (rows grouped, candidates in row
    order), ``rows``/``cands`` give each stacked row's (row index,
    candidate index) pair, and ``counts`` is the per-row candidate count.
    This is the shared starting point of per-point and batch scan-order
    construction.
    """
    rows, cands, counts = candidate_index_arrays(dataset)
    stacked = np.concatenate(
        [dataset.candidates(i) for i in range(dataset.n_rows)], axis=0
    )
    return stacked, rows, cands, counts


def _scan_from_sims(
    sims: np.ndarray,
    rows: np.ndarray,
    cands: np.ndarray,
    labels: np.ndarray,
    counts: np.ndarray,
) -> ScanOrder:
    """Build a :class:`ScanOrder` from candidate-order similarities.

    Ascending similarity; among ties the larger (row, cand) pair comes
    first so the smaller pair is treated as more similar (it sits later in
    the scan). lexsort uses the last key as the primary key.
    """
    order = np.lexsort((-cands, -rows, sims))
    return ScanOrder(
        rows=rows[order],
        cands=cands[order],
        sims=sims[order],
        row_labels=labels,
        row_counts=counts,
    )


def compute_scan_order(
    dataset: IncompleteDataset, t: np.ndarray, kernel: Kernel | str | None = None
) -> ScanOrder:
    """Sort all candidates of ``dataset`` by increasing similarity to ``t``.

    Cost is ``O(N M log(N M))`` — the sort term in the paper's complexity
    analysis of SS.
    """
    sims_per_row = candidate_similarities(dataset, t, kernel)
    counts = dataset.candidate_counts()
    rows = np.repeat(np.arange(dataset.n_rows, dtype=np.int64), counts)
    cands = np.concatenate([np.arange(int(m), dtype=np.int64) for m in counts])
    sims = np.concatenate(sims_per_row)
    return _scan_from_sims(sims, rows, cands, dataset.labels.copy(), counts)


def compute_scan_orders(
    dataset: IncompleteDataset,
    test_X: np.ndarray,
    kernel: Kernel | str | None = None,
) -> list[ScanOrder]:
    """Scan orders for a whole test matrix, with batched similarity computation.

    Produces exactly the same :class:`ScanOrder` per point as
    :func:`compute_scan_order` (same similarities, same tie-break), but the
    similarity matrix is computed in one vectorised
    :meth:`repro.core.kernels.Kernel.pairwise` call over the stacked
    candidate matrix instead of ``N`` kernel calls per test point. This is
    the standalone convenience form of the recipe; the batch engine's
    ``PreparedBatch`` uses the same underlying pieces
    (:func:`stack_candidates` + the shared sort) directly because it also
    keeps the similarity matrix for MinMax checks and row similarities.
    """
    kernel = resolve_kernel(kernel)
    test_X = np.asarray(test_X, dtype=np.float64)
    stacked, rows, cands, counts = stack_candidates(dataset)
    sims_matrix = kernel.pairwise(stacked, test_X)
    labels = dataset.labels.copy()
    return [
        _scan_from_sims(sims_matrix[i], rows, cands, labels, counts)
        for i in range(test_X.shape[0])
    ]
