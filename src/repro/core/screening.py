"""Batch screening: CP-certify a whole test set in one call.

The first question a practitioner asks of this library is not about one
test point but about a dataset: *"how much of my training data's
incompleteness actually matters for my predictions?"* This module answers
it in one call — for every point of a test matrix it gathers the exact Q2
counts, the CP'ed label (if any) and the prediction entropy, and summarises
the certificate: the fraction of points whose prediction **no amount of
data cleaning can change** (§2's "Connections to Data Cleaning").

Screening is the library's canonical batch workload, so it routes through
the unified planner (:mod:`repro.core.planner`): ``backend="auto"`` picks
the batch backend — distances for the whole test matrix in one vectorised
pass, per-point counting scans fanned out over ``n_jobs`` worker processes
— with results identical to querying each point on its own, and identical
for every explicit ``backend`` choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch_engine import QueryResultCache
from repro.core.dataset import IncompleteDataset
from repro.core.entropy import certain_label_from_counts, prediction_entropy
from repro.core.kernels import Kernel
from repro.core.planner import ExecutionOptions, execute_query, make_query

__all__ = ["ScreeningResult", "screen_dataset"]


@dataclass
class ScreeningResult:
    """Per-point and aggregate outcome of :func:`screen_dataset`.

    Attributes
    ----------
    counts:
        Exact Q2 counts per point (``counts[i][y]`` worlds predict ``y``).
    certain_labels:
        The CP'ed label per point, ``None`` where worlds disagree.
    entropies:
        Prediction entropy per point (nats; 0 exactly when CP'ed).
    k, n_worlds:
        The query parameter and the common world count, for the report.
    """

    counts: list[list[int]] = field(default_factory=list)
    certain_labels: list[int | None] = field(default_factory=list)
    entropies: list[float] = field(default_factory=list)
    k: int = 3
    n_worlds: int = 1

    @property
    def n_points(self) -> int:
        return len(self.counts)

    @property
    def n_certain(self) -> int:
        """How many points are CP'ed."""
        return sum(1 for label in self.certain_labels if label is not None)

    @property
    def cp_fraction(self) -> float:
        """Fraction of points whose prediction cleaning cannot change."""
        if not self.counts:
            return 1.0
        return self.n_certain / self.n_points

    def uncertain_points(self) -> list[int]:
        """Indices of points that are not CP'ed, most contested first."""
        contested = [
            i for i, label in enumerate(self.certain_labels) if label is None
        ]
        return sorted(contested, key=lambda i: (-self.entropies[i], i))

    def predicted_labels(self) -> list[int]:
        """Majority-of-worlds label per point (defined even when not CP'ed)."""
        return [
            int(np.argmax(point_counts)) for point_counts in self.counts
        ]

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [
            f"screened {self.n_points} points over {self.n_worlds} possible worlds (k={self.k})",
            f"certainly predicted: {self.n_certain}/{self.n_points} "
            f"({self.cp_fraction:.0%})",
        ]
        contested = self.uncertain_points()
        if contested:
            worst = contested[0]
            lines.append(
                f"most contested point: #{worst} "
                f"(entropy {self.entropies[worst]:.3f} nats, counts {self.counts[worst]})"
            )
        else:
            lines.append("cleaning the training data cannot change any of these predictions.")
        return "\n".join(lines)


def screen_dataset(
    dataset: IncompleteDataset,
    test_X: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    n_jobs: int | None = 1,
    cache: QueryResultCache | bool | None = None,
    backend: str = "auto",
    tile_rows: int | None = None,
    tile_candidates: int | None = None,
) -> ScreeningResult:
    """Run the counting query against every row of ``test_X``.

    Returns a :class:`ScreeningResult`; cost is one sort-scan per test
    point (`O(NM log NM)` each), independent of the exponential world
    count. ``n_jobs`` fans the scans out over worker processes; pass a
    :class:`~repro.core.batch_engine.QueryResultCache` (or ``True``) to
    serve repeated screenings of the same data from cache; ``backend``
    forces a planner backend, and ``tile_rows`` / ``tile_candidates``
    bound the resident tile when the ``sharded`` backend runs (screening
    a test set larger than memory is its home workload). None of these
    knobs changes the result.
    """
    query = make_query(dataset, test_X, kind="counts", k=k, kernel=kernel)
    options = ExecutionOptions(
        n_jobs=n_jobs,
        cache=False if cache is None else cache,
        tile_rows=tile_rows,
        tile_candidates=tile_candidates,
    )
    result = ScreeningResult(k=k, n_worlds=dataset.n_worlds())
    for counts in execute_query(query, backend=backend, options=options).values:
        result.counts.append(counts)
        result.certain_labels.append(certain_label_from_counts(counts))
        result.entropies.append(prediction_entropy(counts))
    return result
