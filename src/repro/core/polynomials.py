"""Truncated integer polynomials for exact world counting.

The SS engines represent, per label ``l``, the generating polynomial

    ``P_l(z) = prod_n (alpha_n + (m_n - alpha_n) * z)``

whose coefficient of ``z^c`` counts the ways the rows of label ``l`` place
exactly ``c`` members above the scan boundary. Only coefficients up to
``z^K`` are ever needed, so all operations truncate at a fixed degree.

Coefficients are Python integers, so counts are exact no matter how many
possible worlds the dataset induces (the totals grow like ``M^N``).

The key trick (enabling the ``O(K)``-per-step incremental engine) is that the
*quotient* of a truncated product by one of its linear factors is itself
computable from the truncated coefficients alone: with ``P = (a + b z) * Q``
and ``a > 0``, the recurrence ``q_c = (p_c - b * q_{c-1}) / a`` only consults
``p_0 .. p_c``, and every division is exact because the untruncated quotient
has integer coefficients. Factors with ``a == 0`` are never divided out —
the engine tracks them in a separate "forced" set instead.
"""

from __future__ import annotations

__all__ = ["poly_one", "poly_mul_linear", "poly_div_linear", "poly_mul", "poly_eval"]


def poly_one(degree: int) -> list[int]:
    """The constant polynomial ``1`` as a coefficient list of length ``degree+1``."""
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    coeffs = [0] * (degree + 1)
    coeffs[0] = 1
    return coeffs


def poly_mul_linear(coeffs: list[int], a: int, b: int) -> list[int]:
    """Return ``coeffs * (a + b z)`` truncated to the same degree."""
    degree = len(coeffs) - 1
    result = [0] * (degree + 1)
    for c in range(degree, -1, -1):
        value = a * coeffs[c]
        if c > 0:
            value += b * coeffs[c - 1]
        result[c] = value
    return result


def poly_div_linear(coeffs: list[int], a: int, b: int) -> list[int]:
    """Return ``coeffs / (a + b z)`` truncated to the same degree.

    Requires ``a != 0`` and that ``(a + b z)`` exactly divides the
    (untruncated) polynomial that ``coeffs`` truncates — which holds by
    construction when dividing a product by one of its own factors.
    """
    if a == 0:
        raise ZeroDivisionError("cannot divide by a linear factor with zero constant term")
    degree = len(coeffs) - 1
    quotient = [0] * (degree + 1)
    prev = 0
    for c in range(degree + 1):
        numerator = coeffs[c] - b * prev
        q, remainder = divmod(numerator, a)
        if remainder:
            raise ArithmeticError(
                "inexact division: the linear factor does not divide the polynomial"
            )
        quotient[c] = q
        prev = q
    return quotient


def poly_mul(left: list[int], right: list[int], degree: int) -> list[int]:
    """Product of two coefficient lists truncated at ``degree``."""
    result = [0] * (degree + 1)
    for i, li in enumerate(left):
        if li == 0 or i > degree:
            continue
        upper = min(len(right) - 1, degree - i)
        for j in range(upper + 1):
            rj = right[j]
            if rj:
                result[i + j] += li * rj
    return result


def poly_eval(coeffs: list[int], z: float) -> float:
    """Evaluate the polynomial at ``z`` (Horner); used only in tests."""
    value = 0.0
    for coeff in reversed(coeffs):
        value = value * z + coeff
    return value
