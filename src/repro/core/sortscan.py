"""SS (SortScan) — faithful implementation of the paper's Algorithm 1.

For every candidate ``x_{i,j}`` (scanned in increasing similarity), the
algorithm computes the *label support* ``C^{i,j}_l(c, N)`` — the number of
ways, among the worlds in which ``x_{i,j}`` is the K-th most similar example
(the *boundary set*), for the rows of label ``l`` to contribute exactly ``c``
members to the top-K — via the dynamic program of §3.1.1:

* ``y_n != l``      → row ``n`` cannot contribute: carry the count over;
* ``n == i``        → row ``i`` is always in the top-K: consume a slot;
* otherwise         → either keep row ``n`` below the boundary (``alpha[n]``
  candidate choices) or lift it above (``m_n - alpha[n]`` choices).

The support of a full tally ``gamma`` is the product of per-label supports,
and Q2 sums supports grouped by the tally's winning label.

This module keeps the per-candidate DP exactly as published —
``O(N * K)`` per label per candidate, ``O(N^2 M K |Y|)`` overall — and exists
as the readable reference implementation. The production engine with the
same outputs but a much lower complexity lives in :mod:`repro.core.engine`;
the divide-and-conquer variant of Appendix A.2 in
:mod:`repro.core.sortscan_tree`.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.tally import tallies_with_prediction
from repro.utils.validation import check_positive_int

__all__ = ["sortscan_counts_naive", "label_support_dp"]


def label_support_dp(
    alpha: np.ndarray,
    row_labels: np.ndarray,
    row_counts: np.ndarray,
    boundary_row: int,
    label: int,
    k: int,
) -> list[int]:
    """The paper's DP ``C^{i,j}_l(c, N)`` for ``c = 0 .. k``.

    ``alpha[n]`` must hold the similarity tally of row ``n`` with respect to
    the boundary candidate (the number of candidates of row ``n`` that are at
    most as similar).
    """
    # dp[c] = C_l(c, n) as n sweeps the rows; C_l(-1, n) = 0. The paper
    # states the base condition as C_l(c, 0) = 1, but the recursion only
    # counts *exactly* c top-K members with C_l(0, 0) = 1 and
    # C_l(c > 0, 0) = 0 (with the published base, supports come out "at
    # most c" and Q2 overcounts; compare Example 5, which uses the exact
    # semantics). We follow the exact semantics.
    dp = [0] * (k + 1)
    dp[0] = 1
    for n in range(row_labels.shape[0]):
        if row_labels[n] != label:
            continue
        if n == boundary_row:
            # Row i is in the top-K by definition; it consumes one slot.
            for c in range(k, 0, -1):
                dp[c] = dp[c - 1]
            dp[0] = 0
        else:
            below = int(alpha[n])
            above = int(row_counts[n]) - below
            for c in range(k, 0, -1):
                dp[c] = below * dp[c] + above * dp[c - 1]
            dp[0] = below * dp[0]
    return dp


def sortscan_counts_naive(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
) -> list[int]:
    """Q2 counts via the faithful Algorithm 1 (reference implementation).

    Returns ``r`` with ``r[y] = Q2(D, t, y)`` for every label ``y``; the
    entries sum to the exact number of possible worlds.
    """
    k = check_positive_int(k, "k")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)

    n_labels = dataset.n_labels
    tallies = tallies_with_prediction(k, n_labels)
    alpha = np.zeros(scan.n_rows, dtype=np.int64)
    result = [0] * n_labels

    for position in range(scan.n_candidates):
        i = int(scan.rows[position])
        alpha[i] += 1
        supports = [
            label_support_dp(alpha, scan.row_labels, scan.row_counts, i, label, k)
            for label in range(n_labels)
        ]
        y_i = int(scan.row_labels[i])
        for tally, winner in tallies:
            if tally[y_i] < 1:
                # Row i is in the top-K, so its label must appear in the tally.
                continue
            support = 1
            for label, slots in enumerate(tally):
                support *= supports[label][slots]
                if support == 0:
                    break
            result[winner] += support
    return result
