"""Similarity kernels ``kappa(x, t)`` for the KNN substrate (paper §3, Fig. 5).

The paper's KNN classifier ranks training examples by *similarity* to the
test example: larger is closer. The evaluation uses Euclidean distance, which
we expose as :class:`NegativeEuclideanKernel` (similarity = ``-distance`` so
that "top-K largest similarity" matches "K nearest neighbours"). RBF, linear
(dot-product) and cosine kernels are provided as the other textbook choices
the paper mentions.

Every kernel implements ``similarities(candidates, t)`` mapping a ``(m, d)``
candidate matrix to an ``(m,)`` similarity vector; ``__call__`` on a pair of
single vectors is provided for convenience. For batch workloads
(:mod:`repro.core.batch_engine`) kernels also expose
``pairwise(candidates, test_X)`` which computes the whole ``(T, m)``
similarity matrix in one vectorised call; the built-in kernels override it
with broadcasting implementations whose per-element reductions are
bit-identical to the per-point path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = [
    "Kernel",
    "NegativeEuclideanKernel",
    "RBFKernel",
    "LinearKernel",
    "CosineKernel",
    "resolve_kernel",
]


class Kernel(ABC):
    """A similarity function; larger values mean "more similar"."""

    @abstractmethod
    def similarities(self, candidates: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Similarity of each row of ``candidates`` (``(m, d)``) to ``t`` (``(d,)``)."""

    def pairwise(self, candidates: np.ndarray, test_X: np.ndarray) -> np.ndarray:
        """Similarity matrix of shape ``(T, m)`` for a whole test set at once.

        Entry ``[i, j]`` equals ``similarities(candidates, test_X[i])[j]``.
        The default loops over test points; concrete kernels override it
        with a single broadcast computation.
        """
        candidates = check_matrix(candidates, "candidates")
        test_X = check_matrix(test_X, "test_X", n_cols=candidates.shape[1])
        if test_X.shape[0] == 0:
            return np.empty((0, candidates.shape[0]), dtype=np.float64)
        return np.stack([self.similarities(candidates, t) for t in test_X], axis=0)

    def __call__(self, x: np.ndarray, t: np.ndarray) -> float:
        x = check_vector(x, "x")
        return float(self.similarities(x.reshape(1, -1), t)[0])


class NegativeEuclideanKernel(Kernel):
    """``kappa(x, t) = -||x - t||_2`` — the paper's evaluation kernel."""

    def similarities(self, candidates: np.ndarray, t: np.ndarray) -> np.ndarray:
        candidates = check_matrix(candidates, "candidates")
        t = check_vector(t, "t", length=candidates.shape[1])
        diff = candidates - t[None, :]
        return -np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def pairwise(self, candidates: np.ndarray, test_X: np.ndarray) -> np.ndarray:
        candidates = check_matrix(candidates, "candidates")
        test_X = check_matrix(test_X, "test_X", n_cols=candidates.shape[1])
        diff = candidates[None, :, :] - test_X[:, None, :]
        return -np.sqrt(np.einsum("tij,tij->ti", diff, diff))

    def __repr__(self) -> str:
        return "NegativeEuclideanKernel()"


class RBFKernel(Kernel):
    """``kappa(x, t) = exp(-gamma * ||x - t||^2)`` (Gaussian kernel)."""

    def __init__(self, gamma: float = 1.0) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    def similarities(self, candidates: np.ndarray, t: np.ndarray) -> np.ndarray:
        candidates = check_matrix(candidates, "candidates")
        t = check_vector(t, "t", length=candidates.shape[1])
        diff = candidates - t[None, :]
        return np.exp(-self.gamma * np.einsum("ij,ij->i", diff, diff))

    def pairwise(self, candidates: np.ndarray, test_X: np.ndarray) -> np.ndarray:
        candidates = check_matrix(candidates, "candidates")
        test_X = check_matrix(test_X, "test_X", n_cols=candidates.shape[1])
        diff = candidates[None, :, :] - test_X[:, None, :]
        return np.exp(-self.gamma * np.einsum("tij,tij->ti", diff, diff))

    def __repr__(self) -> str:
        return f"RBFKernel(gamma={self.gamma})"


class LinearKernel(Kernel):
    """``kappa(x, t) = <x, t>`` (dot product)."""

    def similarities(self, candidates: np.ndarray, t: np.ndarray) -> np.ndarray:
        candidates = check_matrix(candidates, "candidates")
        t = check_vector(t, "t", length=candidates.shape[1])
        return candidates @ t

    # pairwise: the default per-point loop is kept deliberately — a fused
    # matrix-matrix product may use a different BLAS reduction order than the
    # per-point matvec, and scan orders must stay bit-identical.

    def __repr__(self) -> str:
        return "LinearKernel()"


class CosineKernel(Kernel):
    """``kappa(x, t) = <x, t> / (||x|| * ||t||)`` with zero-vector guard."""

    def similarities(self, candidates: np.ndarray, t: np.ndarray) -> np.ndarray:
        candidates = check_matrix(candidates, "candidates")
        t = check_vector(t, "t", length=candidates.shape[1])
        t_norm = np.linalg.norm(t)
        cand_norms = np.linalg.norm(candidates, axis=1)
        denom = cand_norms * t_norm
        # A zero vector is equally dissimilar to everything.
        safe = np.where(denom > 0.0, denom, 1.0)
        sims = (candidates @ t) / safe
        return np.where(denom > 0.0, sims, 0.0)

    def __repr__(self) -> str:
        return "CosineKernel()"


_KERNELS_BY_NAME = {
    "euclidean": NegativeEuclideanKernel,
    "rbf": RBFKernel,
    "linear": LinearKernel,
    "cosine": CosineKernel,
}


def resolve_kernel(kernel: Kernel | str | None) -> Kernel:
    """Accept a :class:`Kernel`, a name, or ``None`` (paper default kernel)."""
    if kernel is None:
        return NegativeEuclideanKernel()
    if isinstance(kernel, Kernel):
        return kernel
    if isinstance(kernel, str):
        try:
            return _KERNELS_BY_NAME[kernel]()
        except KeyError:
            raise ValueError(
                f"unknown kernel {kernel!r}; available: {sorted(_KERNELS_BY_NAME)}"
            ) from None
    raise TypeError(f"kernel must be a Kernel, str or None, got {type(kernel).__name__}")
