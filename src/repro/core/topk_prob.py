"""Top-K membership probabilities over the possible worlds.

Section 2 of the paper points at a neighbouring line of work: *KNN queries
over probabilistic databases*, where the system returns, for each training
tuple, the probability that it belongs to the query point's top-K list
[Agarwal et al.; Kriegel et al.]. The paper solves a different problem (the
result of a KNN *classifier*), but its counting machinery answers the KNN
*query* question too — this module does exactly that.

For training row ``i`` with candidate ``j``, the number of worlds in which
the row takes that candidate **and** sits in the top-K equals the number of
ways the other rows place at most ``K - 1`` candidates above it:

    ``inclusion(i) = Σ_j Σ_{c=0}^{K-1} [z^c] Π_{n≠i} (α_{i,j}[n] + (m_n - α_{i,j}[n]) z)``

which one scan of the label-free generating polynomial evaluates in
``O(N M (K + log NM))`` — the same skeleton as the fast Q2 engine, with a
single "label" class. Dividing by ``Π_n m_n`` gives the exact membership
probability under the uniform (block tuple-independent) prior as a
:class:`fractions.Fraction`.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.engine import LabelPolynomials
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import top_k_rows
from repro.core.scan import ScanOrder, compute_scan_order
from repro.utils.validation import check_positive_int, check_vector

__all__ = [
    "topk_inclusion_counts",
    "topk_inclusion_counts_from_scan",
    "topk_inclusion_probabilities",
    "topk_inclusion_counts_bruteforce",
    "expected_topk_label_histogram",
    "most_uncertain_rows",
]


def topk_inclusion_counts(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
) -> list[int]:
    """Per training row, the exact number of worlds with that row in the top-K.

    Entry ``i`` is ``|{D ∈ I_D : i ∈ Top(K, D, t)}|`` (big int). Every world
    contributes to exactly ``K`` rows, so ``sum(result) == K * n_worlds``.
    ``scan`` lets a batch preparer hand over a precomputed order (it must
    describe the same ``(dataset, t, kernel)``); this is how the planner's
    batch backend shares one vectorised similarity pass across points.
    """
    k = check_positive_int(k, "k")
    n = dataset.n_rows
    if k > n:
        raise ValueError(f"k={k} exceeds the number of training rows {n}")
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)
    return topk_inclusion_counts_from_scan(scan, k)


def topk_inclusion_counts_from_scan(scan: ScanOrder, k: int) -> list[int]:
    """The :func:`topk_inclusion_counts` kernel on a prebuilt scan order.

    Needs nothing beyond the scan itself (the generating polynomial ignores
    labels), which is what lets the pruning layer run it on a row-reduced
    scan and scale the results back exactly.
    """
    n = scan.n_rows
    # One merged "label" class: the generating polynomial ignores labels.
    merged_labels = np.zeros(n, dtype=np.int64)
    state = LabelPolynomials(merged_labels, scan.row_counts, k, n_labels=1)
    result = [0] * n

    for position in range(scan.n_candidates):
        i = int(scan.rows[position])
        state.advance(i)
        coeffs = state.coefficients_excluding(i)[0]
        # Candidate (i, j) is in the top-K iff at most K-1 other rows sit
        # above it; the boundary-at-rank-c cells are disjoint across c.
        result[i] += sum(coeffs[c] for c in range(k))
    return result


def topk_inclusion_probabilities(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
) -> list[Fraction]:
    """Exact top-K membership probability per row under the uniform prior."""
    counts = topk_inclusion_counts(dataset, t, k=k, kernel=kernel)
    total = dataset.n_worlds()
    return [Fraction(c, total) for c in counts]


def topk_inclusion_counts_bruteforce(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_worlds: int = 1_000_000,
) -> list[int]:
    """World-enumeration oracle for :func:`topk_inclusion_counts`."""
    k = check_positive_int(k, "k")
    n = dataset.n_rows
    if k > n:
        raise ValueError(f"k={k} exceeds the number of training rows {n}")
    if dataset.n_worlds() > max_worlds:
        raise ValueError(
            f"dataset has {dataset.n_worlds()} worlds, above the brute-force "
            f"cap {max_worlds}"
        )
    kernel = resolve_kernel(kernel)
    t = check_vector(t, "t", length=dataset.n_features)
    sims = [kernel.similarities(dataset.candidates(i), t) for i in range(n)]

    result = [0] * n
    for choice in itertools.product(*(range(len(s)) for s in sims)):
        world_sims = np.array([sims[i][j] for i, j in enumerate(choice)])
        for row in top_k_rows(world_sims, k):
            result[int(row)] += 1
    return result


def expected_topk_label_histogram(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
) -> list[Fraction]:
    """Expected number of top-K neighbours per label, over all worlds.

    By linearity of expectation this is the per-label sum of the rows'
    membership probabilities; the entries sum to exactly ``K``. A cheap,
    smooth proxy for "how contested is this prediction" that needs no tally
    enumeration.
    """
    probabilities = topk_inclusion_probabilities(dataset, t, k=k, kernel=kernel)
    histogram = [Fraction(0)] * dataset.n_labels
    for row, probability in enumerate(probabilities):
        histogram[dataset.label_of(row)] += probability
    total = sum(histogram)
    if total != k:
        raise AssertionError(
            f"internal error: expected histogram mass {k}, got {total}"
        )
    return histogram


def most_uncertain_rows(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
) -> list[int]:
    """Dirty rows ranked by how undecided their top-K membership is.

    Rows whose membership probability is closest to 1/2 contribute the most
    uncertainty to the prediction at ``t``; clean rows are excluded. Used by
    the "membership" cleaning policy in :mod:`repro.cleaning.policies`.
    """
    probabilities = topk_inclusion_probabilities(dataset, t, k=k, kernel=kernel)
    dirty = dataset.uncertain_rows()
    return sorted(dirty, key=lambda row: (abs(probabilities[row] - Fraction(1, 2)), row))
