"""Weighted counting: KNN evaluation over a probabilistic database.

The paper observes (§2, "Connections to Probabilistic Databases") that Q2
is exactly the semantics of evaluating a KNN classifier over a *block
tuple-independent probabilistic database with a uniform prior*. This module
drops the uniformity: every candidate ``x_{i,j}`` carries a probability
``p_{i,j}`` (``sum_j p_{i,j} = 1`` per row), and the query returns

    ``P(prediction = y) = sum_{worlds D} P(D) * I[A_D(t) = y]``,

the standard possible-worlds semantics of probabilistic databases.

The sort-scan machinery carries over unchanged: the per-label generating
polynomial's linear factors become ``(P[below] + P[above] z)`` with rational
coefficients. Exactness is preserved by using :class:`fractions.Fraction`
throughout — the uniform-prior special case reproduces the integer counts
divided by ``prod_i m_i`` bit-for-bit.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.tally import tallies_with_prediction
from repro.utils.validation import check_positive_int

__all__ = [
    "weighted_prediction_probabilities",
    "uniform_candidate_weights",
    "condition_weights",
]


def uniform_candidate_weights(dataset: IncompleteDataset) -> list[list[Fraction]]:
    """The uniform prior: each of a row's ``m_i`` candidates gets ``1/m_i``."""
    weights = []
    for row in range(dataset.n_rows):
        m = dataset.candidates(row).shape[0]
        weights.append([Fraction(1, m)] * m)
    return weights


def condition_weights(
    weights: list[list[Fraction]], pins: dict[int, int]
) -> list[list[Fraction]]:
    """The prior conditioned on pins: each pinned row becomes a point mass.

    This is how the planner (and the weighted cleaning strategy) express a
    human answer under a probabilistic prior: once row ``i`` is known to
    take candidate ``j``, every world where it does not has probability 0.
    The input is never mutated.
    """
    out = [list(row_weights) for row_weights in weights]
    for row, cand in pins.items():
        if not 0 <= cand < len(out[row]):
            raise IndexError(
                f"pinned candidate {cand} out of range for row {row} "
                f"with {len(out[row])} weights"
            )
        out[row] = [Fraction(0)] * len(out[row])
        out[row][cand] = Fraction(1)
    return out


def _validate_weights(
    dataset: IncompleteDataset, weights: list[list[Fraction]] | None
) -> list[list[Fraction]]:
    if weights is None:
        return uniform_candidate_weights(dataset)
    if len(weights) != dataset.n_rows:
        raise ValueError(
            f"weights must have one list per row ({dataset.n_rows}), got {len(weights)}"
        )
    validated = []
    for row, row_weights in enumerate(weights):
        m = dataset.candidates(row).shape[0]
        if len(row_weights) != m:
            raise ValueError(
                f"row {row} has {m} candidates but {len(row_weights)} weights"
            )
        fractions = [Fraction(w) for w in row_weights]
        if any(w < 0 for w in fractions):
            raise ValueError(f"row {row} has negative candidate weights")
        total = sum(fractions)
        if total != 1:
            raise ValueError(
                f"row {row} weights sum to {total}, expected exactly 1 "
                "(use Fraction inputs to avoid float rounding)"
            )
        validated.append(fractions)
    return validated


def weighted_prediction_probabilities(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    weights: list[list[Fraction]] | None = None,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
) -> list[Fraction]:
    """Exact label probabilities of a KNN classifier over a probabilistic DB.

    ``weights[i][j]`` is the probability that row ``i`` takes its ``j``-th
    candidate; ``None`` means the uniform prior (then the result equals
    ``q2_counts / n_worlds``). Returns one :class:`~fractions.Fraction` per
    label summing to exactly 1.

    The scan maintains, per label, a truncated polynomial whose linear
    factors are ``(P[row below boundary] + P[row above boundary] z)``. The
    factors' constant terms start at 0 (every row starts fully "above"), so
    instead of dividing factors out (which needs a non-zero constant term)
    the polynomial is rebuilt per step from per-label prefix state — kept
    simple here because this module favours clarity over the last constant
    factor; the integer engine remains the fast path for the uniform prior.
    """
    k = check_positive_int(k, "k")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    weights = _validate_weights(dataset, weights)
    if scan is None:
        scan = compute_scan_order(dataset, t, kernel)

    n_labels = dataset.n_labels
    tallies = tallies_with_prediction(k, n_labels)
    labels = scan.row_labels
    zero = Fraction(0)
    one = Fraction(1)

    # below[i] = probability mass of row i's candidates at or below the
    # current scan frontier.
    below = [zero] * dataset.n_rows
    result = [zero] * n_labels

    # Group rows per label once; the per-step polynomial for a label is the
    # product of its rows' (below, 1 - below) factors, truncated at K.
    rows_by_label: list[list[int]] = [[] for _ in range(n_labels)]
    for row in range(dataset.n_rows):
        rows_by_label[int(labels[row])].append(row)

    def label_poly(label: int, exclude_row: int) -> list[Fraction]:
        coeffs = [one] + [zero] * k
        for row in rows_by_label[label]:
            if row == exclude_row:
                continue
            a = below[row]
            b = one - a
            # multiply by (a + b z), truncated at degree k
            for c in range(k, -1, -1):
                value = a * coeffs[c]
                if c > 0:
                    value += b * coeffs[c - 1]
                coeffs[c] = value
        return coeffs

    for position in range(scan.n_candidates):
        row = int(scan.rows[position])
        cand = int(scan.cands[position])
        below[row] += weights[row][cand]
        weight = weights[row][cand]
        if weight == 0:
            continue
        y_row = int(labels[row])
        polys = [label_poly(label, exclude_row=row) for label in range(n_labels)]
        for tally, winner in tallies:
            if tally[y_row] < 1:
                continue
            support = weight
            for label, slots in enumerate(tally):
                want = slots - 1 if label == y_row else slots
                support *= polys[label][want]
                if support == 0:
                    break
            result[winner] += support

    total = sum(result)
    if total != 1:
        raise AssertionError(f"internal error: probabilities sum to {total}, expected 1")
    return result
