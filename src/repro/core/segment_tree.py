"""Segment tree of truncated label-support polynomials (paper Appendix A.2).

The SS-DC optimisation maintains the dynamic-programming results in a binary
tree: each leaf holds one row's linear factor ``(alpha_n + (m_n - alpha_n) z)``
and each internal node the truncated product of its children
(the paper's sum-of-products merge ``T(c, a, b) = sum_k T(k, a, m) *
T(c - k, m+1, b)``). Updating one row touches ``O(log N)`` nodes at
``O(K^2)`` each — the ``O(K^2 log N)`` per-step cost in the paper's
complexity summary (Figure 4).

Unlike the division-based engine, the tree never divides, so it handles
zero constant terms (rows forced above the boundary) without special casing
— this is the paper's motivation for the structure.
"""

from __future__ import annotations

from repro.core.polynomials import poly_mul

__all__ = ["PolySegmentTree"]


class PolySegmentTree:
    """A fixed-size segment tree over truncated integer polynomials.

    Parameters
    ----------
    n_leaves:
        Number of leaf slots (rows of one label).
    degree:
        Truncation degree ``K``; every node stores ``K + 1`` coefficients.

    All leaves start as the constant polynomial ``1``, so an empty tree has
    root ``1`` and absent rows are neutral.
    """

    def __init__(self, n_leaves: int, degree: int) -> None:
        if n_leaves < 0:
            raise ValueError(f"n_leaves must be non-negative, got {n_leaves}")
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        self.degree = degree
        size = 1
        while size < max(n_leaves, 1):
            size *= 2
        self._size = size
        one = [1] + [0] * degree
        self._nodes: list[list[int]] = [list(one) for _ in range(2 * size)]
        self.n_leaves = n_leaves

    # ------------------------------------------------------------------
    def _recompute_path(self, position: int) -> None:
        node = (self._size + position) // 2
        while node >= 1:
            left = self._nodes[2 * node]
            right = self._nodes[2 * node + 1]
            self._nodes[node] = poly_mul(left, right, self.degree)
            node //= 2

    def set_leaf(self, position: int, coeffs: list[int]) -> None:
        """Replace the polynomial at ``position`` and update its ancestors."""
        if not 0 <= position < self.n_leaves:
            raise IndexError(f"leaf position {position} out of range [0, {self.n_leaves})")
        if len(coeffs) != self.degree + 1:
            raise ValueError(f"coeffs must have length {self.degree + 1}, got {len(coeffs)}")
        self._nodes[self._size + position] = list(coeffs)
        self._recompute_path(position)

    def set_linear_leaf(self, position: int, a: int, b: int) -> None:
        """Set leaf ``position`` to the linear factor ``a + b z``."""
        coeffs = [0] * (self.degree + 1)
        coeffs[0] = a
        if self.degree >= 1:
            coeffs[1] = b
        self.set_leaf(position, coeffs)

    def leaf(self, position: int) -> list[int]:
        """A copy of the polynomial currently stored at ``position``."""
        if not 0 <= position < self.n_leaves:
            raise IndexError(f"leaf position {position} out of range [0, {self.n_leaves})")
        return list(self._nodes[self._size + position])

    def root(self) -> list[int]:
        """The truncated product of all leaves (a copy)."""
        return list(self._nodes[1])

    def root_with_leaf(self, position: int, coeffs: list[int]) -> list[int]:
        """The root polynomial with ``position`` temporarily replaced.

        Implements the SS-DC boundary query: the boundary row's leaf becomes
        the "must be in top-K" polynomial ``z`` for one evaluation without
        disturbing the maintained state. Walks one root-to-leaf path, so the
        cost matches :meth:`set_leaf`.
        """
        if len(coeffs) != self.degree + 1:
            raise ValueError(f"coeffs must have length {self.degree + 1}, got {len(coeffs)}")
        node = self._size + position
        current = list(coeffs)
        while node > 1:
            sibling = node ^ 1
            if node % 2 == 0:  # current node is a left child
                current = poly_mul(current, self._nodes[sibling], self.degree)
            else:
                current = poly_mul(self._nodes[sibling], current, self.degree)
            node //= 2
        return current
