"""MM (MinMax) — the paper's Algorithm 2 for the checking query Q1.

For binary classification, whether *some* possible world predicts label ``l``
can be decided by examining a single greedily constructed world, the
*l-extreme world* ``E_l``: every row with label ``l`` picks its candidate
**most** similar to the test example, every other row picks its candidate
**least** similar. Lemma B.2 shows ``E_l`` predicts ``l`` iff some world
does, so

    ``Q1(D, t, l)  <=>  E_l predicts l  and  no E_{l'} (l' != l) predicts l'``.

The construction costs ``O(N M)`` and the KNN evaluations ``O(N log K)`` —
the row labelled "MM" in the paper's Figure 4.

The correctness proof only holds for ``|Y| = 2`` (a third label can slip into
the top-K when a non-``l`` row is pushed down); by default this module
refuses multi-class datasets. ``allow_multiclass=True`` exposes the
construction anyway for experimentation (it is then only a *necessary*
condition, not sufficient), mirroring the discussion in Appendix B.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.knn import majority_label, top_k_rows
from repro.core.scan import candidate_similarities
from repro.utils.validation import check_positive_int

__all__ = ["minmax_check", "minmax_checks_all", "extreme_world_similarities", "predictable_labels"]


def extreme_world_similarities(
    sims_per_row: list[np.ndarray], labels: np.ndarray, target_label: int
) -> np.ndarray:
    """Row similarities of the ``target_label``-extreme world (Eq. B.1).

    Rather than materialising the world's feature vectors, the KNN decision
    only needs each row's similarity: the max over candidates for rows with
    the target label, the min for all other rows.
    """
    n = labels.shape[0]
    sims = np.empty(n, dtype=np.float64)
    for i in range(n):
        row_sims = sims_per_row[i]
        sims[i] = row_sims.max() if labels[i] == target_label else row_sims.min()
    return sims


def predictable_labels(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    allow_multiclass: bool = False,
) -> list[int]:
    """Labels ``l`` whose l-extreme world predicts ``l``.

    For binary datasets this is exactly the set of labels some possible
    world predicts (Lemma B.2).
    """
    k = check_positive_int(k, "k")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    n_labels = dataset.n_labels
    if n_labels > 2 and not allow_multiclass:
        raise ValueError(
            "the MM algorithm is only proven correct for binary classification "
            "(|Y| = 2); use the SS counting engine for multi-class Q1, or pass "
            "allow_multiclass=True to use MM as a heuristic"
        )
    sims_per_row = candidate_similarities(dataset, t, kernel)
    labels = dataset.labels

    winners = []
    for target in range(n_labels):
        sims = extreme_world_similarities(sims_per_row, labels, target)
        top = top_k_rows(sims, k)
        if majority_label(labels[top], tally_size=n_labels) == target:
            winners.append(target)
    return winners


def minmax_check(
    dataset: IncompleteDataset,
    t: np.ndarray,
    label: int,
    k: int = 3,
    kernel: Kernel | str | None = None,
) -> bool:
    """``Q1(D, t, label)`` via MM: true iff every world predicts ``label``."""
    if not 0 <= label < dataset.n_labels:
        raise ValueError(f"label {label} outside the label space of size {dataset.n_labels}")
    return predictable_labels(dataset, t, k=k, kernel=kernel) == [label]


def minmax_checks_all(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
) -> list[bool]:
    """The Boolean vector ``r`` of Algorithm 2: ``r[y] = Q1(D, t, y)``.

    At most one entry can be true; all entries are false iff the test point
    cannot be certainly predicted.
    """
    winners = predictable_labels(dataset, t, k=k, kernel=kernel)
    result = [False] * dataset.n_labels
    if len(winners) == 1:
        result[winners[0]] = True
    return result
