"""CP queries when *labels* are uncertain too (an extension of Definition 1).

The paper's data model (Definition 1) fixes the label of every training row
and lets only the features vary. Real dirty data also has dubious labels;
this module extends the CP machinery to rows carrying a finite candidate
*label set* ``L_i`` alongside the candidate feature set ``C_i``. A possible
world now chooses one feature vector **and** one label per row, so there are
``prod_i m_i * |L_i|`` worlds.

Three query engines are provided, mirroring the feature-only trio:

* :func:`label_uncertain_counts_bruteforce` — world enumeration (oracle);
* :func:`label_uncertain_counts` — an exact SortScan-style counter: scan
  boundary candidates in similarity order; for each boundary ``(i, j)`` and
  boundary label ``y ∈ L_i``, a tally-vector DP absorbs each other row via

      ``dp'[γ] = α[n]·|L_n|·dp[γ] + Σ_{l ∈ L_n} (m_n - α[n])·dp[γ - e_l]``

  (stay below the boundary with any label, or claim a top-K slot with a
  specific label). Polynomial time, exponentially many worlds — the same
  punchline as the paper's Section 3.
* :func:`label_uncertain_minmax_check` — the MM generalisation for binary
  labels: the ``l``-extreme world gives every row the label ``l`` (when
  available) together with its most similar candidate, or the opposite
  label with its least similar candidate. The monotonicity argument of
  Lemma B.1 carries over because flipping a row towards ``l`` and raising
  its similarity can only help ``l``.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import majority_label, top_k_rows
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.tally import predicted_label
from repro.utils.validation import check_positive_int, check_vector

__all__ = [
    "LabelUncertainDataset",
    "label_uncertain_counts",
    "label_uncertain_counts_bruteforce",
    "label_uncertain_minmax_check",
    "label_uncertain_certain_label",
]


class LabelUncertainDataset:
    """An incomplete dataset whose labels are candidate *sets*.

    Parameters
    ----------
    candidate_sets:
        As for :class:`~repro.core.dataset.IncompleteDataset`: row ``i`` has
        an ``(m_i, d)`` array of possible feature vectors.
    label_sets:
        Sequence of non-empty label collections; ``label_sets[i]`` lists the
        possible labels of row ``i``. A singleton set recovers the paper's
        certain-label model.
    """

    def __init__(
        self,
        candidate_sets: Sequence[np.ndarray],
        label_sets: Sequence[Sequence[int]],
    ) -> None:
        if len(candidate_sets) != len(label_sets):
            raise ValueError(
                f"{len(candidate_sets)} candidate sets but {len(label_sets)} label sets"
            )
        labels: list[tuple[int, ...]] = []
        for i, label_set in enumerate(label_sets):
            values = tuple(dict.fromkeys(int(v) for v in label_set))
            if not values:
                raise ValueError(f"label_sets[{i}] is empty")
            if min(values) < 0:
                raise ValueError(f"label_sets[{i}] contains a negative label")
            labels.append(values)
        # Representative labels make the feature-side machinery reusable.
        self._features = IncompleteDataset(candidate_sets, [ls[0] for ls in labels])
        self._label_sets = tuple(labels)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._features.n_rows

    @property
    def n_features(self) -> int:
        return self._features.n_features

    @property
    def label_sets(self) -> tuple[tuple[int, ...], ...]:
        """Per-row candidate labels."""
        return self._label_sets

    @property
    def n_labels(self) -> int:
        """Size of the label space ``|Y|`` (``max possible label + 1``)."""
        return max(max(ls) for ls in self._label_sets) + 1

    @property
    def feature_dataset(self) -> IncompleteDataset:
        """The feature side as a plain incomplete dataset (labels are dummies)."""
        return self._features

    def candidates(self, row: int) -> np.ndarray:
        return self._features.candidates(row)

    def candidate_counts(self) -> np.ndarray:
        return self._features.candidate_counts()

    def has_certain_labels(self) -> bool:
        """True iff every label set is a singleton (the paper's model)."""
        return all(len(ls) == 1 for ls in self._label_sets)

    def restrict_row(self, row: int, candidate_index: int) -> "LabelUncertainDataset":
        """A new dataset with ``row`` pinned to one *feature* candidate.

        The row's label set is unchanged — pinning a feature repair does
        not resolve label uncertainty. Mirrors
        :meth:`IncompleteDataset.restrict_row`; this is how the planner
        applies pins to label-uncertain queries.
        """
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range for {self.n_rows} rows")
        candidates = self.candidates(row)
        if not 0 <= candidate_index < candidates.shape[0]:
            raise IndexError(
                f"candidate {candidate_index} out of range for row {row} "
                f"with {candidates.shape[0]} candidates"
            )
        sets = [
            candidates[candidate_index : candidate_index + 1]
            if i == row
            else self.candidates(i)
            for i in range(self.n_rows)
        ]
        return LabelUncertainDataset(sets, list(self._label_sets))

    def fingerprint(self) -> str:
        """Content hash over candidates *and* label sets (a sound cache key)."""
        digest = hashlib.sha256(self._features.fingerprint().encode("ascii"))
        digest.update(repr(self._label_sets).encode("ascii"))
        return digest.hexdigest()

    def n_worlds(self) -> int:
        """``prod_i m_i * |L_i|`` (big int)."""
        return self._features.n_worlds() * math.prod(len(ls) for ls in self._label_sets)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"LabelUncertainDataset(n_rows={self.n_rows}, n_features={self.n_features}, "
            f"n_labels={self.n_labels}, n_worlds={self.n_worlds()})"
        )

    @classmethod
    def from_incomplete(
        cls, dataset: IncompleteDataset, flip_rows: Sequence[int] = (), n_labels: int | None = None
    ) -> "LabelUncertainDataset":
        """Lift a feature-incomplete dataset; rows in ``flip_rows`` may take any label."""
        n_labels = n_labels or dataset.n_labels
        flip = set(flip_rows)
        label_sets = [
            tuple(range(n_labels)) if i in flip else (dataset.label_of(i),)
            for i in range(dataset.n_rows)
        ]
        return cls([dataset.candidates(i) for i in range(dataset.n_rows)], label_sets)


# ----------------------------------------------------------------------
# Brute force oracle
# ----------------------------------------------------------------------
def label_uncertain_counts_bruteforce(
    dataset: LabelUncertainDataset,
    t: np.ndarray,
    k: int = 1,
    kernel: Kernel | str | None = None,
    max_worlds: int = 2_000_000,
) -> list[int]:
    """Q2 counts by enumerating every (feature, label) world."""
    k = check_positive_int(k, "k")
    n = dataset.n_rows
    if k > n:
        raise ValueError(f"k={k} exceeds the number of training rows {n}")
    if dataset.n_worlds() > max_worlds:
        raise ValueError(
            f"dataset has {dataset.n_worlds()} worlds, above the brute-force cap {max_worlds}"
        )
    kernel = resolve_kernel(kernel)
    t = check_vector(t, "t", length=dataset.n_features)
    n_labels = dataset.n_labels
    sims = [kernel.similarities(dataset.candidates(i), t) for i in range(n)]

    result = [0] * n_labels
    feature_choices = itertools.product(*(range(len(s)) for s in sims))
    for choice in feature_choices:
        world_sims = np.array([sims[i][j] for i, j in enumerate(choice)])
        top = top_k_rows(world_sims, k)
        # Labels of rows outside the top-K never matter: weight by the
        # number of free label choices instead of enumerating them.
        free = math.prod(
            len(dataset.label_sets[i]) for i in range(n) if i not in set(top.tolist())
        )
        for top_labels in itertools.product(*(dataset.label_sets[i] for i in top)):
            winner = majority_label(list(top_labels), tally_size=n_labels)
            result[winner] += free
    return result


# ----------------------------------------------------------------------
# Exact SortScan-style counter
# ----------------------------------------------------------------------
def label_uncertain_counts(
    dataset: LabelUncertainDataset,
    t: np.ndarray,
    k: int = 1,
    kernel: Kernel | str | None = None,
    scan: ScanOrder | None = None,
    until_mixed: bool = False,
    scan_stats: dict | None = None,
) -> list[int]:
    """Exact Q2 counts over all (feature, label) worlds in polynomial time.

    Complexity ``O(N^2 M |L| |Gamma| |Y|)`` with ``|Gamma| = C(|Y|+K-1, K)``
    tally vectors — the label-uncertain analogue of the paper's naive
    Algorithm 1 (the incremental-polynomial speed-up applies here too but is
    not needed at the extension's scale). ``scan`` optionally hands over a
    precomputed order for ``dataset.feature_dataset`` (the planner's batch
    backend shares one vectorised similarity pass this way).

    ``until_mixed`` is the Fig-9 early-termination hook for the decision
    kinds: counts only ever grow, so the moment two labels have support no
    certain label can exist and the scan stops. The returned counts are
    then *partial* — only their nonzero-set is meaningful. ``scan_stats``,
    when a dict is passed, receives ``positions_scanned`` and
    ``early_terminated``.
    """
    k = check_positive_int(k, "k")
    n = dataset.n_rows
    if k > n:
        raise ValueError(f"k={k} exceeds the number of training rows {n}")
    t = check_vector(t, "t", length=dataset.n_features)
    if scan is None:
        scan = compute_scan_order(dataset.feature_dataset, t, kernel)
    n_labels = dataset.n_labels
    label_sets = dataset.label_sets

    alpha = np.zeros(n, dtype=np.int64)
    result = [0] * n_labels
    positions_scanned = 0

    for position in range(scan.n_candidates):
        positions_scanned = position + 1
        i = int(scan.rows[position])
        alpha[i] += 1
        # dp maps a partial tally (counts per label among the *other* rows'
        # top-K members) to the number of (feature, label) choices realising
        # it with (i, j) as the K-th most similar example.
        dp: dict[tuple[int, ...], int] = {(0,) * n_labels: 1}
        for row in range(n):
            if row == i:
                continue
            below = int(alpha[row]) * len(label_sets[row])
            above = int(scan.row_counts[row]) - int(alpha[row])
            new_dp: dict[tuple[int, ...], int] = {}
            for tally, ways in dp.items():
                if below:
                    new_dp[tally] = new_dp.get(tally, 0) + ways * below
                if above:
                    used = sum(tally)
                    if used < k - 1:
                        for label in label_sets[row]:
                            bumped = list(tally)
                            bumped[label] += 1
                            key = tuple(bumped)
                            new_dp[key] = new_dp.get(key, 0) + ways * above
            dp = new_dp
            if not dp:
                break
        for tally, ways in dp.items():
            if sum(tally) != k - 1:
                continue
            for boundary_label in label_sets[i]:
                final = list(tally)
                final[boundary_label] += 1
                result[predicted_label(tuple(final))] += ways
        if until_mixed and sum(1 for count in result if count) >= 2:
            if scan_stats is not None:
                scan_stats["positions_scanned"] = positions_scanned
                scan_stats["early_terminated"] = True
            return result
    if scan_stats is not None:
        scan_stats["positions_scanned"] = positions_scanned
        scan_stats["early_terminated"] = False
    return result


# ----------------------------------------------------------------------
# MM check for binary labels
# ----------------------------------------------------------------------
def label_uncertain_minmax_check(
    dataset: LabelUncertainDataset,
    t: np.ndarray,
    label: int,
    k: int = 1,
    kernel: Kernel | str | None = None,
) -> bool:
    """Q1 for binary labels via ``l``-extreme worlds over features *and* labels.

    The ``l``-extreme world assigns a row the label ``l`` with its most
    similar candidate whenever ``l`` is in the row's label set, and the
    opposite label with its least similar candidate otherwise.
    """
    k = check_positive_int(k, "k")
    if dataset.n_labels > 2:
        raise ValueError("the MinMax check is only valid for binary classification")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    if not 0 <= label < 2:
        raise ValueError(f"label must be 0 or 1, got {label}")
    t = check_vector(t, "t", length=dataset.n_features)
    kernel = resolve_kernel(kernel)

    n = dataset.n_rows
    sims = [kernel.similarities(dataset.candidates(i), t) for i in range(n)]

    def extreme_world_predicts(target: int) -> bool:
        world_sims = np.empty(n, dtype=np.float64)
        world_labels = np.empty(n, dtype=np.int64)
        for i in range(n):
            if target in dataset.label_sets[i]:
                world_labels[i] = target
                world_sims[i] = sims[i].max()
            else:
                world_labels[i] = 1 - target
                world_sims[i] = sims[i].min()
        top = top_k_rows(world_sims, k)
        return majority_label(world_labels[top], tally_size=2) == target

    # label is CP'ed iff its own extreme world predicts it and the opposite
    # label's extreme world does not predict the opposite label.
    other = 1 - label
    return extreme_world_predicts(label) and not extreme_world_predicts(other)


def label_uncertain_certain_label(
    dataset: LabelUncertainDataset,
    t: np.ndarray,
    k: int = 1,
    kernel: Kernel | str | None = None,
) -> int | None:
    """The CP'ed label over (feature, label) worlds, or ``None``."""
    counts = label_uncertain_counts(dataset, t, k=k, kernel=kernel)
    total = sum(counts)
    for label, count in enumerate(counts):
        if count == total:
            return label
    return None
