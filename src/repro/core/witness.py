"""Witnesses of uncertainty: concrete worlds that disagree on a prediction.

Q1 says *whether* a test point is certainly predicted; when it is not, the
most convincing explanation is a pair of concrete possible worlds — two
full assignments of candidates — whose classifiers predict different
labels. This module extracts such a pair:

* for **binary** labels the ``l``-extreme worlds of the MM algorithm are
  exact witnesses: label ``l`` is predictable iff ``E_l`` predicts it
  (Lemma B.2), so the two extreme worlds *are* the disagreeing pair;
* for **multi-class** problems extreme worlds are only a heuristic seed
  (the MM equivalence fails for ``|Y| > 2``), so the search continues with
  deterministic sampling and, for small instances, exhaustive enumeration.

A witness is returned as two candidate-choice vectors (usable with
:meth:`IncompleteDataset.world`) plus the two predicted labels, so callers
can show a human the exact repairs that flip the prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.knn import majority_label, top_k_rows
from repro.core.worlds import iter_world_choices
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int, check_vector

__all__ = ["Witness", "find_witness"]

#: Enumerate exhaustively below this many worlds; sample above it.
_ENUMERATION_CAP = 4096


@dataclass(frozen=True)
class Witness:
    """Two worlds whose classifiers disagree on the test point.

    Attributes
    ----------
    choice_a / choice_b:
        Candidate index per row (pass to :meth:`IncompleteDataset.world`).
    label_a / label_b:
        The (distinct) predictions of the two worlds.
    """

    choice_a: tuple[int, ...]
    label_a: int
    choice_b: tuple[int, ...]
    label_b: int


def _predict(sims: list[np.ndarray], labels: np.ndarray, choice, k: int, n_labels: int) -> int:
    world_sims = np.array([sims[i][j] for i, j in enumerate(choice)])
    top = top_k_rows(world_sims, k)
    return majority_label(labels[top], tally_size=n_labels)


def _extreme_choice(sims: list[np.ndarray], labels: np.ndarray, target: int) -> tuple[int, ...]:
    choice = []
    for i, row_sims in enumerate(sims):
        if int(labels[i]) == target:
            choice.append(int(np.argmax(row_sims)))
        else:
            choice.append(int(np.argmin(row_sims)))
    return tuple(choice)


def find_witness(
    dataset: IncompleteDataset,
    t: np.ndarray,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_samples: int = 10_000,
    seed: int | np.random.Generator | None = 0,
) -> Witness | None:
    """A pair of disagreeing worlds for ``t``, or ``None`` if ``t`` is CP'ed.

    Exact (no false negatives) for binary labels and for instances with at
    most ``_ENUMERATION_CAP`` worlds; for larger multi-class instances the
    search is extreme-world seeds plus ``max_samples`` deterministic random
    worlds, and raises :class:`RuntimeError` if disagreement is *known* to
    exist (from the exact counting query) but no witness was sampled.
    """
    k = check_positive_int(k, "k")
    if k > dataset.n_rows:
        raise ValueError(f"k={k} exceeds the number of training rows {dataset.n_rows}")
    kernel = resolve_kernel(kernel)
    t = check_vector(t, "t", length=dataset.n_features)
    n_labels = dataset.n_labels
    labels = dataset.labels
    sims = [kernel.similarities(dataset.candidates(i), t) for i in range(dataset.n_rows)]

    # Seed worlds: each label's extreme world (exact for binary labels).
    seen: dict[int, tuple[int, ...]] = {}
    for target in range(n_labels):
        choice = _extreme_choice(sims, labels, target)
        label = _predict(sims, labels, choice, k, n_labels)
        seen.setdefault(label, choice)
        if len(seen) >= 2:
            return _pair(seen)
    if n_labels == 2:
        return None  # MM equivalence: one reachable label means CP'ed

    # Multi-class: exhaustive below the cap ...
    if dataset.n_worlds() <= _ENUMERATION_CAP:
        for choice in iter_world_choices(dataset, max_worlds=_ENUMERATION_CAP):
            label = _predict(sims, labels, choice, k, n_labels)
            seen.setdefault(label, tuple(int(j) for j in choice))
            if len(seen) >= 2:
                return _pair(seen)
        return None

    # ... sampled above it, cross-checked against the exact counting query.
    rng = ensure_rng(seed)
    counts = dataset.candidate_counts()
    for _ in range(max_samples):
        choice = tuple(int(rng.integers(m)) for m in counts)
        label = _predict(sims, labels, choice, k, n_labels)
        seen.setdefault(label, choice)
        if len(seen) >= 2:
            return _pair(seen)

    from repro.core.queries import q2_counts  # late import avoids a cycle

    exact = q2_counts(dataset, t, k=k, kernel=kernel)
    if sum(1 for c in exact if c > 0) > 1:
        raise RuntimeError(
            "the counting query proves disagreement exists, but no witness "
            f"was found in {max_samples} samples; raise max_samples"
        )
    return None


def _pair(seen: dict[int, tuple[int, ...]]) -> Witness:
    (label_a, choice_a), (label_b, choice_b) = sorted(seen.items())[:2]
    return Witness(choice_a=choice_a, label_a=label_a, choice_b=choice_b, label_b=label_b)
