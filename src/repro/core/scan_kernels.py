"""Vectorized tally kernels over a sort-scan — the generalized Fig-9 check.

The counting engines walk a :class:`~repro.core.scan.ScanOrder` position by
position and, at each boundary, ask the truncated label polynomials which
tallies have support. For the *decision* kinds (``certain_label`` /
``check``) the full big-integer counts are overkill: a tally has nonzero
support at a boundary iff a purely combinatorial feasibility test passes,
and the certain-label verdict is locked the moment two distinct winners
have been seen anywhere in the scan (the paper's Fig-9 early-termination
idea, generalized from the binary MinMax check to every flavor that scans).

This module computes that feasibility test *set-at-a-time*: one pass of
NumPy cumulative sums builds, for every boundary position at once, the
per-label "forced above" and "still open" tallies the polynomial engine
tracks incrementally, and the decision scan then checks whole chunks of
positions per vector operation, stopping at the first chunk that proves
the answer mixed. A pure-Python implementation of the same arrays and the
same scan is selected at import time when NumPy is unavailable (or forced
via ``REPRO_PURE_PYTHON_KERNELS=1``) and remains selectable per call — the
two implementations are checked against each other bit-for-bit in
``tests/core/test_scan_kernels.py``.

Exactness
---------
For a boundary position ``p`` with boundary row ``i`` (label ``y``), the
engine's support for a tally ``t`` with winner ``w`` is a product of
polynomial coefficients ``coeff[label][want - forced[label]]`` scaled by
positive forced-world factors (see ``_counts_from_scan`` in
:mod:`repro.core.batch_engine`). Every polynomial is a product of linear
factors ``(a + b z)`` with ``a >= 1`` and ``b >= 0``, so coefficient ``c``
is nonzero **iff** ``0 <= c <= #(open factors)`` — no cancellation is
possible. Support is therefore nonzero iff, for every label ``l``::

    forced[l](p) <= want_l <= forced[l](p) + open[l](p) - own(l, p)

where ``forced[l](p)`` counts label-``l`` rows not yet advanced after
position ``p``, ``open[l](p)`` counts advanced label-``l`` rows whose
candidate set is not yet exhausted, and ``own(l, p)`` subtracts the
boundary row itself when it is still open (its factor is divided out of
the excluded coefficients). The set of labels with nonzero Q2 count is
exactly the union of feasible winners over all positions, so
``certain_label`` is decided without touching a single big integer.

Integer promotion note: the exact counting kernel keeps Python integers on
purpose — CPython only promotes beyond machine words when a count exceeds
them, which is precisely when float64 (52-bit mantissa) would silently
round. The vectorized kernels here never form counts at all, and the
pruning layer (:mod:`repro.core.pruning`) shifts world multiplicity out of
the scanned problem into one exact scale factor, so the magnitudes that do
reach the counting loop stay in the machine-word fast path far longer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

try:  # pragma: no cover - numpy is a hard dependency of the package today,
    # but the kernels keep an import-time probe so the pure-Python fallback
    # genuinely self-selects if the array stack is absent or disabled.
    import numpy as np

    _HAVE_NUMPY = True
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]
    _HAVE_NUMPY = False

from repro.core.tally import tallies_with_prediction

__all__ = [
    "KERNEL_IMPLEMENTATIONS",
    "DEFAULT_IMPLEMENTATION",
    "resolve_implementation",
    "ScanTallies",
    "DecisionScan",
    "build_scan_arrays",
    "decision_winners",
]

#: The selectable implementations, in preference order.
KERNEL_IMPLEMENTATIONS = ("numpy", "python")

_ENV_FLAG = "REPRO_PURE_PYTHON_KERNELS"


def _select_default() -> str:
    if os.environ.get(_ENV_FLAG, "").strip().lower() in {"1", "true", "yes", "on"}:
        return "python"
    return "numpy" if _HAVE_NUMPY else "python"


#: Chosen once at import: ``numpy`` when available and not disabled via the
#: ``REPRO_PURE_PYTHON_KERNELS`` environment variable, else ``python``.
DEFAULT_IMPLEMENTATION = _select_default()


def resolve_implementation(name: str | None = None) -> str:
    """Map ``None``/``"auto"`` to the import-time default; validate others."""
    if name is None or name == "auto":
        return DEFAULT_IMPLEMENTATION
    if name not in KERNEL_IMPLEMENTATIONS:
        raise ValueError(
            f"unknown scan-kernel implementation {name!r}; "
            f"expected one of {('auto',) + KERNEL_IMPLEMENTATIONS}"
        )
    if name == "numpy" and not _HAVE_NUMPY:  # pragma: no cover
        raise ValueError("the numpy scan-kernel implementation is unavailable")
    return name


@lru_cache(maxsize=None)
def decision_plans(
    k: int, n_labels: int
) -> tuple[tuple[tuple[int, tuple[tuple[int, int], ...]], ...], ...]:
    """Per boundary-row label: ``(winner, wants)`` per admissible tally.

    Same pre-resolution as the batch counting kernel's tally plans: for a
    boundary of label ``y`` only tallies with ``tally[y] >= 1`` can have
    support, and the boundary's own label needs one slot fewer from the
    polynomial side.
    """
    plans = []
    for y in range(n_labels):
        plan = []
        for tally, winner in tallies_with_prediction(k, n_labels):
            if tally[y] < 1:
                continue
            wants = tuple(
                (label, slots - 1 if label == y else slots)
                for label, slots in enumerate(tally)
            )
            plan.append((winner, wants))
        plans.append(tuple(plan))
    return tuple(plans)


@dataclass(frozen=True)
class ScanTallies:
    """Per-position tally snapshots for a whole scan, batched.

    Attributes
    ----------
    boundary_labels:
        ``(P,)`` label of the boundary row at each position.
    forced:
        ``(P, L)`` — ``forced[p, l]`` is the number of label-``l`` rows not
        yet advanced after position ``p`` (each contributes one guaranteed
        top-K slot of its label).
    cap:
        ``(P, L)`` — the largest feasible slot demand per label:
        ``forced + open``, minus one on the boundary row's own label while
        that row is still open (its factor is excluded at its boundary).

    A tally demand ``want_l`` is feasible at ``p`` iff
    ``forced[p, l] <= want_l <= cap[p, l]`` for every label.
    """

    boundary_labels: "np.ndarray"
    forced: "np.ndarray"
    cap: "np.ndarray"

    @property
    def n_positions(self) -> int:
        return int(len(self.boundary_labels))


@dataclass(frozen=True)
class DecisionScan:
    """Outcome of a decision scan over one test point.

    When the scan ran to the end, ``winners`` is exactly the set of labels
    with nonzero Q2 count. When ``early_terminated`` is True the scan
    stopped after seeing two distinct winners, so ``winners`` is a subset
    of size >= 2 — either way :attr:`certain_label` (``None`` unless the
    winner set is a singleton) is exact. ``positions_scanned`` counts the
    boundary positions inspected before stopping.
    """

    winners: frozenset[int]
    positions_scanned: int
    early_terminated: bool

    @property
    def certain_label(self) -> int | None:
        if len(self.winners) == 1:
            return next(iter(self.winners))
        return None


def _check_effective_scan(scan) -> None:
    total = int(sum(int(m) for m in scan.row_counts))
    if total != scan.n_candidates:
        raise ValueError(
            "scan is not in effective form: row_counts sum to "
            f"{total} but the scan has {scan.n_candidates} positions "
            "(fold pins with repro.core.pruning.apply_pins_to_scan first)"
        )


def build_scan_arrays(scan, n_labels: int, implementation: str | None = None) -> ScanTallies:
    """Batched boundary snapshots for every position of ``scan``.

    ``scan`` must be *effective*: pins already folded, so every position is
    active and ``row_counts`` are the per-row numbers of scanned
    candidates. Both implementations return identical arrays.
    """
    implementation = resolve_implementation(implementation)
    _check_effective_scan(scan)
    if implementation == "numpy":
        return _build_scan_arrays_numpy(scan, n_labels)
    return _build_scan_arrays_python(scan, n_labels)


def _build_scan_arrays_numpy(scan, n_labels: int) -> ScanTallies:
    rows = np.asarray(scan.rows, dtype=np.int64)
    labels = np.asarray(scan.row_labels, dtype=np.int64)
    counts = np.asarray(scan.row_counts, dtype=np.int64)
    n_positions = rows.shape[0]
    if n_positions == 0:
        empty = np.zeros((0, n_labels), dtype=np.int64)
        return ScanTallies(rows.copy(), empty, empty.copy())

    # 1-based occurrence rank of each row within the scan (the engine's
    # alpha counter), computed with one stable sort instead of a scan loop.
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    positions = np.arange(n_positions, dtype=np.int64)
    group_start = np.where(
        np.concatenate(([True], sorted_rows[1:] != sorted_rows[:-1])), positions, 0
    )
    np.maximum.accumulate(group_start, out=group_start)
    alpha = np.empty(n_positions, dtype=np.int64)
    alpha[order] = positions - group_start + 1

    boundary_labels = labels[rows]
    m = counts[rows]
    is_first = alpha == 1  # the row leaves the forced-above set here
    is_last = alpha == m  # the row's candidate set is exhausted here

    first_mat = np.zeros((n_positions, n_labels), dtype=np.int64)
    first_mat[is_first, boundary_labels[is_first]] = 1
    cum_first = np.cumsum(first_mat, axis=0)
    last_mat = np.zeros((n_positions, n_labels), dtype=np.int64)
    last_mat[is_last, boundary_labels[is_last]] = 1
    cum_last = np.cumsum(last_mat, axis=0)

    total_per_label = np.bincount(labels, minlength=n_labels).astype(np.int64)
    forced = total_per_label[None, :] - cum_first
    cap = forced + (cum_first - cum_last)
    # Exclude the boundary row's own open factor at its own boundary.
    boundary_open = alpha < m
    cap[boundary_open, boundary_labels[boundary_open]] -= 1
    return ScanTallies(boundary_labels, forced, cap)


def _build_scan_arrays_python(scan, n_labels: int) -> ScanTallies:
    rows = [int(r) for r in scan.rows]
    labels = [int(label) for label in scan.row_labels]
    counts = [int(m) for m in scan.row_counts]
    n_positions = len(rows)

    forced = [0] * n_labels
    for label in labels:
        forced[label] += 1
    open_ = [0] * n_labels
    alpha = [0] * len(counts)

    boundary_labels = [0] * n_positions
    forced_out = [[0] * n_labels for _ in range(n_positions)]
    cap_out = [[0] * n_labels for _ in range(n_positions)]
    for pos, row in enumerate(rows):
        a = alpha[row] = alpha[row] + 1
        label = labels[row]
        if a == 1:
            forced[label] -= 1
            open_[label] += 1
        if a == counts[row]:
            open_[label] -= 1
        boundary_labels[pos] = label
        for target in range(n_labels):
            forced_out[pos][target] = forced[target]
            cap_out[pos][target] = forced[target] + open_[target]
        if a < counts[row]:
            cap_out[pos][label] -= 1

    if _HAVE_NUMPY:
        return ScanTallies(
            np.asarray(boundary_labels, dtype=np.int64),
            np.asarray(forced_out, dtype=np.int64).reshape(n_positions, n_labels),
            np.asarray(cap_out, dtype=np.int64).reshape(n_positions, n_labels),
        )
    return ScanTallies(boundary_labels, forced_out, cap_out)  # pragma: no cover


#: Positions examined per vector step of the chunked decision scan. Small
#: enough that a clearly-mixed answer stops after a sliver of the scan,
#: large enough that the per-chunk Python overhead amortises.
DECISION_CHUNK = 256


def decision_winners(
    scan,
    k: int,
    n_labels: int,
    implementation: str | None = None,
    chunk: int = DECISION_CHUNK,
) -> DecisionScan:
    """The set of labels with nonzero Q2 count, with early termination.

    Walks the scan in chunks; after each chunk, if two distinct winners
    have been seen the verdict (``certain_label is None``) is locked and
    the scan stops. Equivalent to
    ``{y: counts[y] > 0}`` for the exact counting kernel on the same scan.
    """
    implementation = resolve_implementation(implementation)
    if implementation == "python":
        return _decision_winners_python(scan, k, n_labels)
    tallies = build_scan_arrays(scan, n_labels, implementation)
    plans = decision_plans(k, n_labels)
    n_positions = tallies.n_positions
    winners: set[int] = set()
    position = 0
    while position < n_positions:
        end = min(n_positions, position + chunk)
        chunk_labels = tallies.boundary_labels[position:end]
        chunk_forced = tallies.forced[position:end]
        chunk_cap = tallies.cap[position:end]
        for label in range(n_labels):
            mask = chunk_labels == label
            if not mask.any():
                continue
            forced = chunk_forced[mask]
            cap = chunk_cap[mask]
            for winner, wants in plans[label]:
                if winner in winners:
                    continue
                feasible = np.ones(forced.shape[0], dtype=bool)
                for target, want in wants:
                    feasible &= (forced[:, target] <= want) & (want <= cap[:, target])
                    if not feasible.any():
                        break
                else:
                    winners.add(winner)
        position = end
        if len(winners) >= 2:
            return DecisionScan(frozenset(winners), position, position < n_positions)
    return DecisionScan(frozenset(winners), n_positions, False)


def _decision_winners_python(scan, k: int, n_labels: int) -> DecisionScan:
    """The same decision scan with running counters and per-position stop."""
    _check_effective_scan(scan)
    rows = [int(r) for r in scan.rows]
    labels = [int(label) for label in scan.row_labels]
    counts = [int(m) for m in scan.row_counts]
    plans = decision_plans(k, n_labels)

    forced = [0] * n_labels
    for label in labels:
        forced[label] += 1
    open_ = [0] * n_labels
    alpha = [0] * len(counts)
    winners: set[int] = set()

    for pos, row in enumerate(rows):
        a = alpha[row] = alpha[row] + 1
        label = labels[row]
        if a == 1:
            forced[label] -= 1
            open_[label] += 1
        if a == counts[row]:
            open_[label] -= 1
        own_open = a < counts[row]
        for winner, wants in plans[label]:
            if winner in winners:
                continue
            for target, want in wants:
                cap = forced[target] + open_[target]
                if target == label and own_open:
                    cap -= 1
                if not forced[target] <= want <= cap:
                    break
            else:
                winners.add(winner)
        if len(winners) >= 2:
            return DecisionScan(frozenset(winners), pos + 1, pos + 1 < len(rows))
    return DecisionScan(frozenset(winners), len(rows), False)
