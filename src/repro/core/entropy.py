"""Prediction probabilities and entropy from exact world counts (paper §4).

``Q2`` returns exact big-integer counts; CPClean's objective is the entropy
of the induced prediction distribution ``p_y = Q2(D, t, y) / |I_D|``
(Eq. (3)). Counts can exceed float range, so probabilities are formed with
:class:`fractions.Fraction` before the (exactly rounded) conversion to float.

Entropies are reported in bits (log base 2); CPClean only compares
entropies, so the base is a presentation choice.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from fractions import Fraction

__all__ = [
    "counts_to_probabilities",
    "prediction_entropy",
    "certain_label_from_counts",
    "is_certain_from_counts",
]


def counts_to_probabilities(counts: Sequence[int]) -> list[float]:
    """Normalise world counts into prediction probabilities.

    Uses exact rational arithmetic so astronomically large counts (the
    totals grow like ``M^N``) convert without overflow.
    """
    total = sum(counts)
    if total <= 0:
        raise ValueError("counts must sum to a positive number of worlds")
    if any(c < 0 for c in counts):
        raise ValueError("counts must be non-negative")
    return [float(Fraction(int(c), int(total))) for c in counts]


def prediction_entropy(counts: Sequence[int]) -> float:
    """Shannon entropy (bits) of the prediction distribution of ``counts``.

    Zero iff the prediction is certain (all worlds agree on one label).
    """
    probabilities = counts_to_probabilities(counts)
    return -sum(p * math.log2(p) for p in probabilities if p > 0.0)


def certain_label_from_counts(counts: Sequence[int]) -> int | None:
    """The certainly-predicted label, or ``None`` if worlds disagree."""
    total = sum(counts)
    if total <= 0:
        raise ValueError("counts must sum to a positive number of worlds")
    for label, count in enumerate(counts):
        if count == total:
            return label
    return None


def is_certain_from_counts(counts: Sequence[int]) -> bool:
    """True iff every possible world predicts the same label."""
    return certain_label_from_counts(counts) is not None
