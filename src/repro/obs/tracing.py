"""Request tracing: span trees across threads, processes, and the pipe.

A *span* is one timed unit of work with structured attributes; spans
nest into a tree that reconstructs where a request actually went —
``http.request`` → ``broker.query`` → ``planner.execute_query`` →
``gateway.execute`` → per-executor ``executor.partition`` leaves. The
design constraints, in order:

1. **Zero-cost when off.** ``trace_span()`` returns the shared
   :data:`NULL_SPAN` singleton when no tracer is active, so
   instrumented code paths pay one attribute lookup and a falsy check —
   nothing else. The ≤5 % overhead budget in ``benchmarks/bench_obs.py``
   leans on this.
2. **Thread-hopping requests.** The broker coalesces many requests into
   one batch executed on a timer thread, and the gateway gathers from
   executor processes on worker threads. Propagation is therefore
   explicit where it must be (``parent=``, ``detached=True``) and
   thread-local (:func:`current_span`) only within one thread.
3. **Process boundaries.** Executors cannot share Span objects; they
   ship plain-dict span *records* back in pipe replies, and the gateway
   re-parents them with :meth:`Span.adopt`, restamping trace ids so the
   distributed query renders as one coherent tree.

Finished root spans are published to the :class:`Tracer`'s bounded ring
buffer (served at ``/debug/traces``) and, when they exceed the
``--slow-ms`` threshold, to the slow-query log as one JSON line.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager

__all__ = [
    "NULL_SPAN",
    "Span",
    "TraceBuffer",
    "Tracer",
    "current_span",
    "new_span_id",
    "trace_span",
]

_local = threading.local()


def new_span_id() -> str:
    """A 16-hex-digit id; uuid4-based so executor processes never collide."""
    return uuid.uuid4().hex[:16]


def current_span():
    """The innermost live span on *this* thread, or :data:`NULL_SPAN`.

    Always safe to call from instrumented code: when tracing is off (or
    the caller is on a thread with no active span) the null span absorbs
    ``set()`` / ``adopt()`` calls without allocating.
    """
    return getattr(_local, "span", None) or NULL_SPAN


class Span:
    """One timed node in a trace tree.

    Wall-clock start comes from ``time.time()`` (humans correlate traces
    with logs); durations come from ``time.perf_counter()`` (monotonic,
    immune to clock steps). Child lists are lock-guarded because gather
    threads attach children to a parent span concurrently.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent",
        "attributes",
        "children",
        "start_time",
        "duration_s",
        "status",
        "_tracer",
        "_started",
        "_lock",
        "_previous",
    )

    def __init__(self, name, tracer=None, parent=None, **attributes):
        self.name = name
        self.parent = parent
        self.trace_id = parent.trace_id if parent is not None else new_span_id()
        self.span_id = new_span_id()
        self.attributes = dict(attributes)
        self.children: list[Span] = []
        self.start_time = time.time()
        self._started = time.perf_counter()
        self.duration_s: float | None = None
        self.status = "ok"
        self._tracer = tracer if tracer is not None else (
            parent._tracer if parent is not None else None
        )
        self._lock = threading.Lock()
        self._previous = None
        if parent is not None:
            with parent._lock:
                parent.children.append(self)

    # -- context manager ------------------------------------------------
    def __enter__(self):
        self._previous = getattr(_local, "span", None)
        _local.span = self
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = max(time.perf_counter() - self._started, 0.0)
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        _local.span = self._previous
        self._previous = None
        if self.parent is None and self._tracer is not None:
            self._tracer.publish(self)
        return False

    def __bool__(self) -> bool:
        return True

    # -- mutation -------------------------------------------------------
    def set(self, **attributes) -> "Span":
        """Attach structured attributes (cache_hit, n_pruned, ...)."""
        self.attributes.update(attributes)
        return self

    def adopt(self, record) -> None:
        """Graft a serialized span record (from another process) under
        this span, restamping trace ids so the tree stays consistent."""
        if not record:
            return
        with self._lock:
            self.children.append(
                _AdoptedRecord(self.trace_id, self.span_id, record)
            )

    def root(self) -> "Span":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    # -- serialization --------------------------------------------------
    def record(self) -> dict:
        """A JSON-safe dict for the ring buffer / explain=trace payloads.

        Live (unfinished) spans serialize with their running duration and
        ``in_flight: true`` — ``explain=trace`` renders the tree while the
        HTTP root span is still open.
        """
        duration = self.duration_s
        in_flight = duration is None
        if in_flight:
            duration = max(time.perf_counter() - self._started, 0.0)
        with self._lock:
            children = list(self.children)
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent.span_id if self.parent is not None else None,
            "name": self.name,
            "start_time": self.start_time,
            "duration_ms": duration * 1000.0,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.record() for child in children],
        }
        if in_flight:
            out["in_flight"] = True
        return out


class _AdoptedRecord:
    """A foreign span record re-parented into a live tree.

    Holds the original dict and restamps ids lazily at serialization, so
    adoption itself is O(1) under the parent's child lock.
    """

    __slots__ = ("trace_id", "parent_id", "_record")

    def __init__(self, trace_id, parent_id, record):
        self.trace_id = trace_id
        self.parent_id = parent_id
        self._record = record

    def record(self) -> dict:
        return self._restamp(self._record, self.parent_id)

    def _restamp(self, record, parent_id) -> dict:
        out = dict(record)
        out["trace_id"] = self.trace_id
        out["parent_id"] = parent_id
        span_id = out.get("span_id") or new_span_id()
        out["span_id"] = span_id
        out["children"] = [
            self._restamp(child, span_id) for child in record.get("children", ())
        ]
        return out


class _NullSpan:
    """The do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent = None
    duration_s = None
    status = "ok"

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self

    def adopt(self, record) -> None:
        return None

    def root(self) -> "_NullSpan":
        return self

    def record(self) -> None:
        return None


NULL_SPAN = _NullSpan()


def trace_span(name, tracer=None, parent=None, detached=False, **attributes):
    """Open a span, or :data:`NULL_SPAN` if nothing is listening.

    Parent resolution: an explicit ``parent=`` wins (cross-thread
    attachment, e.g. gateway gather threads); otherwise the calling
    thread's current span, unless ``detached=True`` starts a fresh root
    (broker batch flushes, which serve many unrelated requests). A span
    is only created when there is a parent to attach to or an enabled
    tracer to publish to — otherwise instrumentation is free.
    """
    if parent is None and not detached:
        parent = getattr(_local, "span", None)
        if parent is NULL_SPAN:
            parent = None
    if parent is None or isinstance(parent, _NullSpan):
        if tracer is None or not tracer.enabled:
            return NULL_SPAN
        return Span(name, tracer=tracer, **attributes)
    return Span(name, tracer=tracer, parent=parent, **attributes)


class TraceBuffer:
    """Bounded ring of finished root-span records, newest last."""

    def __init__(self, maxlen: int = 256) -> None:
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=maxlen)

    def add(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def list(self, limit: int | None = None) -> list[dict]:
        with self._lock:
            records = list(self._records)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            for record in reversed(self._records):
                if record.get("trace_id") == trace_id:
                    return record
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class Tracer:
    """Publication endpoint for finished traces.

    Owns the ring buffer behind ``/debug/traces`` and the slow-query
    log: any published root span whose duration crosses ``slow_s``
    emits exactly one structured JSON line to ``slow_sink``.
    """

    def __init__(
        self,
        enabled: bool = True,
        buffer_size: int = 256,
        slow_s: float | None = None,
        slow_sink=None,
    ) -> None:
        self.enabled = bool(enabled)
        self.buffer = TraceBuffer(maxlen=buffer_size)
        self.slow_s = slow_s
        self.slow_sink = slow_sink
        self._lock = threading.Lock()
        self._n_published = 0
        self._n_slow = 0

    def span(self, name, **attributes):
        """A root span bound to this tracer (ignores thread-local state)."""
        return trace_span(name, tracer=self, detached=True, **attributes)

    def publish(self, span: Span) -> None:
        if not self.enabled:
            return
        record = span.record()
        self.buffer.add(record)
        duration_s = (span.duration_s or 0.0)
        slow = self.slow_s is not None and duration_s >= self.slow_s
        with self._lock:
            self._n_published += 1
            if slow:
                self._n_slow += 1
        if slow:
            self._emit_slow(record)

    def _emit_slow(self, record: dict) -> None:
        sink = self.slow_sink if self.slow_sink is not None else sys.stderr
        scalars = {
            key: value
            for key, value in record["attributes"].items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        line = json.dumps(
            {
                "slow_query": True,
                "trace_id": record["trace_id"],
                "name": record["name"],
                "duration_ms": round(record["duration_ms"], 3),
                "threshold_ms": self.slow_s * 1000.0,
                "status": record["status"],
                "attributes": scalars,
            },
            sort_keys=True,
        )
        try:
            print(line, file=sink, flush=True)
        except (OSError, ValueError):
            pass  # a closed sink must never take down request handling

    def stats(self) -> dict:
        with self._lock:
            published, slow = self._n_published, self._n_slow
        return {
            "enabled": self.enabled,
            "buffered": len(self.buffer),
            "published": published,
            "slow_queries": slow,
            "slow_threshold_ms": (
                self.slow_s * 1000.0 if self.slow_s is not None else None
            ),
        }
