"""Observability: typed metrics and distributed tracing for the service.

``repro.obs`` is deliberately a leaf package — stdlib only, importing
nothing from the rest of ``repro`` — so the core planner can open spans
without creating an import cycle, and the instruments work identically
in executor worker processes.

Two halves:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with typed
  counters, gauges, and fixed-bucket latency histograms; JSON snapshots
  for ``/metrics`` and Prometheus text exposition for
  ``/metrics?format=prometheus``.
* :mod:`repro.obs.tracing` — :func:`trace_span` span trees with
  cross-process record adoption, the ``/debug/traces`` ring buffer, and
  the slow-query log.

:class:`Observability` bundles one of each; ``make_service`` creates a
single instance and threads it through registry, broker, gateway, and
HTTP server so all layers report into the same place.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    quantile_from_buckets,
    validate_prometheus,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceBuffer,
    Tracer,
    current_span,
    new_span_id,
    trace_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "TraceBuffer",
    "Tracer",
    "current_span",
    "new_span_id",
    "parse_prometheus",
    "quantile_from_buckets",
    "trace_span",
    "validate_prometheus",
]


class Observability:
    """One metrics registry + one tracer, shared by every service layer.

    ``enabled=False`` builds a disabled tracer (every ``trace_span``
    resolves to the null span) while keeping metrics live — counters are
    cheap; span trees are the part worth switching off. This is the knob
    ``benchmarks/bench_obs.py`` flips to measure overhead.
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_buffer_size: int = 256,
        slow_s: float | None = None,
        slow_sink=None,
        prefix: str = "repro_",
    ) -> None:
        self.metrics = MetricsRegistry(prefix=prefix)
        self.tracer = Tracer(
            enabled=enabled,
            buffer_size=trace_buffer_size,
            slow_s=slow_s,
            slow_sink=slow_sink,
        )

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def snapshot(self) -> dict:
        """The ``"obs"`` section of ``/metrics``: instruments + tracer stats."""
        out = self.metrics.snapshot()
        out["tracing"] = self.tracer.stats()
        return out
