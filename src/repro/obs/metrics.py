"""Typed process-wide metrics: counters, gauges, fixed-bucket histograms.

Until PR 9 every layer of the service kept its own ad-hoc integer dict
(`QueryBroker` guarded ``_n_requests`` and friends under its broker lock,
``Gateway`` kept another set under ``_metrics_lock``, per-executor
counters lived on handles) and ``/metrics`` merged them per layer. That
worked while the counters were few, but it offered no latency
distributions, no shared naming, and no machine-readable exposition.

:class:`MetricsRegistry` is the one typed store those layers now write
to:

* :class:`Counter` — monotonically increasing integer (requests served,
  batches flushed, fallbacks taken);
* :class:`Gauge` — a settable level (in-flight requests, executor
  liveness) with a :meth:`Gauge.set_max` high-watermark helper;
* :class:`Histogram` — fixed upper-bound buckets over a float
  observation (request latency via the monotonic clock), carrying
  ``sum`` and ``count`` so both averages and quantile estimates
  (:func:`quantile_from_buckets`) fall out of one snapshot.

Every instrument is lock-guarded independently (they are leaf locks —
safe to bump while holding a broker or gateway lock), identified by
``(name, labels)``, and created idempotently: asking for an existing
instrument returns it, asking for the same name with a different type
raises. ``snapshot()`` returns the JSON-friendly view ``/metrics``
embeds under ``"obs"``; :meth:`MetricsRegistry.render_prometheus`
renders the text exposition format (``_bucket``/``_sum``/``_count``
series for histograms) served by ``/metrics?format=prometheus``, and
:func:`validate_prometheus` re-parses it — the CI smoke's exposition
gate.

Registered *collectors* (callbacks run at snapshot/render time) let
layers publish point-in-time levels — broker in-flight, registry sizes,
executor liveness — without polling threads.
"""

from __future__ import annotations

import bisect
import re
import threading
import time
from collections.abc import Callable, Sequence
from contextlib import contextmanager

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_buckets",
    "parse_prometheus",
    "validate_prometheus",
]

#: Default latency buckets (seconds): sub-millisecond service hits up to
#: ten-second stragglers, roughly geometric so relative error is bounded.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"metric name must match [a-zA-Z_][a-zA-Z0-9_]*, got {name!r}"
        )
    return name


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"label name must be an identifier, got {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value.replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for key, value in labels
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared identity plumbing for every instrument kind."""

    kind = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def display_name(self) -> str:
        return self.name + _render_labels(self.labels)


class Counter(_Instrument):
    """A monotonically increasing integer counter."""

    kind = "counter"

    def __init__(self, name, labels=(), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A settable level (may go up or down)."""

    kind = "gauge"

    def __init__(self, name, labels=(), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """High-watermark update: keep the larger of current and ``value``."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket distribution of a float observation.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    an implicit ``+Inf`` bucket catches the overflow. Counts are stored
    per-bucket (not cumulative); :meth:`snapshot` and the Prometheus
    renderer derive the cumulative form.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        labels=(),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError("bucket bounds must be finite (the +Inf bucket is implicit)")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the overflow (+Inf) bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, float(value))
        with self._lock:
            self._counts[index] += 1
            self._sum += float(value)
            self._count += 1

    @contextmanager
    def time(self):
        """Observe the monotonic wall-clock duration of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        return {
            "le": [*self.bounds, "+Inf"],
            "counts": counts,
            "sum": acc,
            "count": total,
        }


class MetricsRegistry:
    """The process-wide instrument store every service layer writes to."""

    def __init__(self, prefix: str = "repro_") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: dict, **kwargs) -> _Instrument:
        key = (_check_name(name), _labels_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind}, cannot re-register as a {cls.kind}"
                    )
                return existing
            instrument = cls(key[0], key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, labels, help=help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help=help, buckets=buckets
        )

    # ------------------------------------------------------------------
    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before each snapshot/render; collectors
        refresh point-in-time gauges (in-flight, liveness) on demand
        instead of from a polling thread."""
        with self._lock:
            self._collectors.append(collector)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def _instruments_snapshot(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The JSON view ``/metrics`` serves under ``"obs"``."""
        self._collect()
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in self._instruments_snapshot():
            if isinstance(instrument, Counter):
                counters[instrument.display_name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.display_name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[instrument.display_name] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """The ``text/plain; version=0.0.4`` exposition of every instrument."""
        self._collect()
        by_name: dict[str, list[_Instrument]] = {}
        for instrument in self._instruments_snapshot():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: list[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            full = self.prefix + name
            kind = group[0].kind
            help_text = next((i.help for i in group if i.help), "")
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            for instrument in sorted(group, key=lambda i: i.labels):
                if isinstance(instrument, Histogram):
                    snap = instrument.snapshot()
                    cumulative = 0
                    for bound, count in zip(snap["le"], snap["counts"]):
                        cumulative += count
                        le = "+Inf" if bound == "+Inf" else format(bound, "g")
                        labels = dict(instrument.labels)
                        labels["le"] = le
                        rendered = _render_labels(_labels_key(labels))
                        lines.append(f"{full}_bucket{rendered} {cumulative}")
                    rendered = _render_labels(instrument.labels)
                    lines.append(f"{full}_sum{rendered} {format(snap['sum'], 'g')}")
                    lines.append(f"{full}_count{rendered} {snap['count']}")
                else:
                    rendered = _render_labels(instrument.labels)
                    lines.append(
                        f"{full}{rendered} {format(instrument.value, 'g')}"
                    )
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Quantiles and exposition parsing
# ---------------------------------------------------------------------------


def quantile_from_buckets(snapshot: dict, q: float) -> float | None:
    """Estimate the ``q``-quantile of a histogram snapshot.

    Standard cumulative-bucket interpolation (what Prometheus'
    ``histogram_quantile`` does): find the first bucket whose cumulative
    count reaches ``q * count`` and interpolate linearly inside it. The
    overflow bucket has no finite upper bound, so a quantile landing
    there reports the largest finite bound — an honest lower bound.
    Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = snapshot["count"]
    if total == 0:
        return None
    target = q * total
    cumulative = 0
    previous_bound = 0.0
    for bound, count in zip(snapshot["le"], snapshot["counts"]):
        cumulative += count
        if cumulative >= target:
            if bound == "+Inf":
                finite = [b for b in snapshot["le"] if b != "+Inf"]
                return float(finite[-1]) if finite else 0.0
            if count == 0:
                return float(bound)
            inside = target - (cumulative - count)
            return previous_bound + (float(bound) - previous_bound) * (
                inside / count
            )
        if bound != "+Inf":
            previous_bound = float(bound)
    return previous_bound


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text exposition into ``{"name{labels}": value}``.

    Strict about sample-line shape (:class:`ValueError` on anything that
    is neither a comment nor a well-formed sample) — the point is to be
    the CI gate proving ``/metrics?format=prometheus`` stays parseable.
    """
    samples: dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line.strip())
        if match is None:
            raise ValueError(
                f"malformed exposition sample on line {line_number}: {line!r}"
            )
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = float(match.group("value").replace("Inf", "inf"))
    return samples


def validate_prometheus(text: str) -> int:
    """Parse ``text`` and check histogram invariants; returns the sample count.

    Beyond line-shape parsing, every histogram series must satisfy: a
    ``+Inf`` bucket exists, cumulative bucket counts are non-decreasing,
    and the ``+Inf`` bucket equals the ``_count`` series.
    """
    samples = parse_prometheus(text)
    buckets: dict[str, list[tuple[float, float]]] = {}
    for key, value in samples.items():
        name, _, labels = key.partition("{")
        if not name.endswith("_bucket"):
            continue
        match = re.search(r'le="([^"]+)"', "{" + labels)
        if match is None:
            raise ValueError(f"histogram bucket without le label: {key}")
        le = float(match.group(1).replace("+Inf", "inf"))
        base = name[: -len("_bucket")]
        rest = re.sub(r'le="[^"]+",?', "", labels).rstrip(",}").lstrip("{")
        buckets.setdefault(f"{base}{{{rest}}}", []).append((le, value))
    for series, pairs in buckets.items():
        pairs.sort()
        bounds = [le for le, _ in pairs]
        counts = [count for _, count in pairs]
        if bounds[-1] != float("inf"):
            raise ValueError(f"histogram {series} has no +Inf bucket")
        if any(c2 < c1 for c1, c2 in zip(counts, counts[1:])):
            raise ValueError(f"histogram {series} buckets are not cumulative")
        base, _, labels = series.partition("{")
        labels = labels.rstrip("}")
        count_key = base + "_count" + (("{" + labels + "}") if labels else "")
        if count_key not in samples:
            raise ValueError(f"histogram {series} has no _count series")
        if samples[count_key] != counts[-1]:
            raise ValueError(
                f"histogram {series}: +Inf bucket {counts[-1]} != "
                f"_count {samples[count_key]}"
            )
        sum_key = base + "_sum" + (("{" + labels + "}") if labels else "")
        if sum_key not in samples:
            raise ValueError(f"histogram {series} has no _sum series")
    return len(samples)
