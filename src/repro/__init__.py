"""repro — Certain Predictions for nearest-neighbour classifiers over incomplete data.

A from-scratch reproduction of Karlaš et al., *"Nearest Neighbor Classifiers
over Incomplete Information: From Certain Answers to Certain Predictions"*
(VLDB 2020). The package provides:

* :mod:`repro.core` — the incomplete-dataset model, the KNN substrate and
  polynomial-time exact algorithms for the two CP queries (checking ``q1``
  and counting ``q2``);
* :mod:`repro.data` — synthetic dataset recipes, missingness injection and
  candidate-repair generation;
* :mod:`repro.cleaning` — the CPClean algorithm and every baseline cleaner
  from the paper's evaluation;
* :mod:`repro.experiments` — harnesses that regenerate the paper's tables
  and figures.

Quickstart::

    import numpy as np
    from repro import IncompleteDataset, q2_counts, certain_label

    dataset = IncompleteDataset(
        [np.array([[5.0], [2.0]]), np.array([[6.0], [4.0]]), np.array([[3.0], [1.0]])],
        labels=[1, 1, 0],
    )
    t = np.array([0.0])
    q2_counts(dataset, t, k=1)      # [6, 2] — worlds per predicted label
    certain_label(dataset, t, k=1)  # None  — the prediction is not certain
"""

from repro.core import (
    IncompleteDataset,
    KNNClassifier,
    PreparedQuery,
    certain_label,
    prediction_entropy,
    q1,
    q2,
    q2_counts,
)

__version__ = "1.1.0"

__all__ = [
    "IncompleteDataset",
    "KNNClassifier",
    "PreparedQuery",
    "q1",
    "q2",
    "q2_counts",
    "certain_label",
    "prediction_entropy",
    "__version__",
]
