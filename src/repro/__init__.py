"""repro — Certain Predictions for nearest-neighbour classifiers over incomplete data.

A from-scratch reproduction of Karlaš et al., *"Nearest Neighbor Classifiers
over Incomplete Information: From Certain Answers to Certain Predictions"*
(VLDB 2020). The package provides:

* :mod:`repro.core` — the incomplete-dataset model, the KNN substrate,
  polynomial-time exact algorithms for the two CP queries (checking ``q1``
  and counting ``q2``), and the unified query planner
  (:mod:`repro.core.planner`) with its pluggable backends (sequential,
  batch-parallel, incremental, sharded out-of-core) behind one front door;
* :mod:`repro.data` — synthetic dataset recipes, missingness injection and
  candidate-repair generation;
* :mod:`repro.cleaning` — the CPClean algorithm and every baseline cleaner
  from the paper's evaluation;
* :mod:`repro.experiments` — harnesses that regenerate the paper's tables
  and figures;
* :mod:`repro.service` — the concurrent CP query service (dataset
  registry with warm prepared state, micro-batching broker with
  admission control, stdlib HTTP JSON API + client; ``repro serve``);
* :mod:`repro.codd` — certain-answer relational semantics (Codd tables)
  bridging the paper's §2 back-story.

Public API (importable from the top level):

==================================  ==============================================
name                                what it is
==================================  ==============================================
``IncompleteDataset``               the incomplete training set ``D = {(C_i, y_i)}``
``KNNClassifier``                   the deterministic KNN substrate
``q1``                              the checking query Q1 (Definition 4)
``q2``, ``q2_counts``               the counting query Q2 (Definition 5)
``certain_label``                   the CP'ed label of a test point, or ``None``
``prediction_entropy``              entropy of the world-counting distribution
``CPQuery``, ``make_query``         the planner's query descriptor (+ builder)
``plan_query``                      choose a backend for a query (cost-model-lite)
``execute_query``                   plan + run a query → ``QueryResult``
``QueryPlan``, ``QueryResult``      what the planner decided / returned
``ExecutionOptions``                wall-clock knobs (``n_jobs``, cache, prepared)
``register_backend``                add a custom backend to the registry
``get_backend``, ``backend_names``  inspect the backend registry
``PreparedQuery``                   cached per-test-point query state
``PreparedBatch``                   vectorised prepared state for a whole test set
``BatchQueryExecutor``              parallel, cached batch CP query execution
``QueryResultCache``                the LRU result cache used by the batch backend
``batch_q2_counts``                 Q2 counts for every row of a test matrix
``batch_certain_labels``            CP'ed labels for every row of a test matrix
``IncrementalCPState``              exact Q2 counts maintained across cleaning pins
``CellRepair``, ``RowAppend``, ``RowDelete``  the base-data write (delta) vocabulary
``DeltaMaintainedState``            O(Δ) delta absorption, bit-identical to recompute
``apply_delta_to_dataset``          the pure-dataset form of applying one delta
``weighted_prediction_probabilities``  KNN over a probabilistic DB (weighted flavor)
``topk_inclusion_counts``           per-row top-K membership counts (topk flavor)
``topk_inclusion_probabilities``    per-row top-K membership probabilities
``LabelUncertainDataset``           rows with candidate *label* sets too
``label_uncertain_counts``          Q2 over (feature, label) worlds
``screen_dataset``                  one-call CP certification of a test set
``CleaningSession``                 the shared cleaning loop (planner-routed)
``run_cp_clean``                    the CPClean cleaning loop (Algorithm 3)
``run_batch_clean``                 CPClean with batched human answers
``run_weighted_cp_clean``           CPClean under a non-uniform candidate prior
==================================  ==============================================

Quickstart::

    import numpy as np
    from repro import IncompleteDataset, q2_counts, certain_label

    dataset = IncompleteDataset(
        [np.array([[5.0], [2.0]]), np.array([[6.0], [4.0]]), np.array([[3.0], [1.0]])],
        labels=[1, 1, 0],
    )
    t = np.array([0.0])
    q2_counts(dataset, t, k=1)      # [6, 2] — worlds per predicted label
    certain_label(dataset, t, k=1)  # None  — the prediction is not certain

See ``README.md`` for a tour and ``docs/architecture.md`` for the design.
"""

from repro.cleaning.batch import run_batch_clean
from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.sequential import CleaningSession
from repro.cleaning.weighted_clean import run_weighted_cp_clean
from repro.core import (
    BatchQueryExecutor,
    CellRepair,
    CPQuery,
    DeltaMaintainedState,
    ExecutionOptions,
    IncompleteDataset,
    IncrementalCPState,
    RowAppend,
    RowDelete,
    KNNClassifier,
    LabelUncertainDataset,
    PreparedBatch,
    PreparedQuery,
    QueryPlan,
    QueryResult,
    QueryResultCache,
    backend_names,
    batch_certain_labels,
    batch_q2_counts,
    certain_label,
    execute_query,
    get_backend,
    label_uncertain_counts,
    make_query,
    plan_query,
    prediction_entropy,
    q1,
    q2,
    q2_counts,
    register_backend,
    screen_dataset,
    topk_inclusion_counts,
    topk_inclusion_probabilities,
    weighted_prediction_probabilities,
)

__version__ = "1.3.0"

__all__ = [
    "IncompleteDataset",
    "KNNClassifier",
    "PreparedQuery",
    "PreparedBatch",
    "BatchQueryExecutor",
    "QueryResultCache",
    "q1",
    "q2",
    "q2_counts",
    "batch_q2_counts",
    "batch_certain_labels",
    "certain_label",
    "prediction_entropy",
    "CPQuery",
    "QueryPlan",
    "QueryResult",
    "ExecutionOptions",
    "make_query",
    "plan_query",
    "execute_query",
    "register_backend",
    "get_backend",
    "backend_names",
    "IncrementalCPState",
    "CellRepair",
    "RowAppend",
    "RowDelete",
    "DeltaMaintainedState",
    "weighted_prediction_probabilities",
    "topk_inclusion_counts",
    "topk_inclusion_probabilities",
    "LabelUncertainDataset",
    "label_uncertain_counts",
    "screen_dataset",
    "CleaningSession",
    "run_cp_clean",
    "run_batch_clean",
    "run_weighted_cp_clean",
    "__version__",
]
