"""repro — Certain Predictions for nearest-neighbour classifiers over incomplete data.

A from-scratch reproduction of Karlaš et al., *"Nearest Neighbor Classifiers
over Incomplete Information: From Certain Answers to Certain Predictions"*
(VLDB 2020). The package provides:

* :mod:`repro.core` — the incomplete-dataset model, the KNN substrate,
  polynomial-time exact algorithms for the two CP queries (checking ``q1``
  and counting ``q2``), and the parallel batch query engine
  (:mod:`repro.core.batch_engine`);
* :mod:`repro.data` — synthetic dataset recipes, missingness injection and
  candidate-repair generation;
* :mod:`repro.cleaning` — the CPClean algorithm and every baseline cleaner
  from the paper's evaluation;
* :mod:`repro.experiments` — harnesses that regenerate the paper's tables
  and figures;
* :mod:`repro.codd` — certain-answer relational semantics (Codd tables)
  bridging the paper's §2 back-story.

Public API (importable from the top level):

===========================  ==============================================
name                         what it is
===========================  ==============================================
``IncompleteDataset``        the incomplete training set ``D = {(C_i, y_i)}``
``KNNClassifier``            the deterministic KNN substrate
``q1``                       the checking query Q1 (Definition 4)
``q2``, ``q2_counts``        the counting query Q2 (Definition 5)
``certain_label``            the CP'ed label of a test point, or ``None``
``prediction_entropy``       entropy of the world-counting distribution
``PreparedQuery``            cached per-test-point query state
``PreparedBatch``            vectorised prepared state for a whole test set
``BatchQueryExecutor``       parallel, cached batch CP query execution
``QueryResultCache``         the LRU result cache used by the batch engine
``batch_q2_counts``          Q2 counts for every row of a test matrix
``batch_certain_labels``     CP'ed labels for every row of a test matrix
``screen_dataset``           one-call CP certification of a test set
``run_cp_clean``             the CPClean cleaning loop (Algorithm 3)
===========================  ==============================================

Quickstart::

    import numpy as np
    from repro import IncompleteDataset, q2_counts, certain_label

    dataset = IncompleteDataset(
        [np.array([[5.0], [2.0]]), np.array([[6.0], [4.0]]), np.array([[3.0], [1.0]])],
        labels=[1, 1, 0],
    )
    t = np.array([0.0])
    q2_counts(dataset, t, k=1)      # [6, 2] — worlds per predicted label
    certain_label(dataset, t, k=1)  # None  — the prediction is not certain

See ``README.md`` for a tour and ``docs/architecture.md`` for the design.
"""

from repro.cleaning.cp_clean import run_cp_clean
from repro.core import (
    BatchQueryExecutor,
    IncompleteDataset,
    KNNClassifier,
    PreparedBatch,
    PreparedQuery,
    QueryResultCache,
    batch_certain_labels,
    batch_q2_counts,
    certain_label,
    prediction_entropy,
    q1,
    q2,
    q2_counts,
    screen_dataset,
)

__version__ = "1.2.0"

__all__ = [
    "IncompleteDataset",
    "KNNClassifier",
    "PreparedQuery",
    "PreparedBatch",
    "BatchQueryExecutor",
    "QueryResultCache",
    "q1",
    "q2",
    "q2_counts",
    "batch_q2_counts",
    "batch_certain_labels",
    "certain_label",
    "prediction_entropy",
    "screen_dataset",
    "run_cp_clean",
    "__version__",
]
