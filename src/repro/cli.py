"""Command-line interface: ``python -m repro <command>``.

Three commands cover the library's headline workflows:

* ``demo``   — the paper's Figure 6 walkthrough (the two CP queries);
* ``screen`` — Q1 screening of a validation set over a dirty recipe
  ("how much of this dataset's incompleteness actually matters?");
* ``clean``  — a full CPClean session against a simulated human oracle,
  with the RandomClean comparison at equal budget.

``query`` answers one CP query over a recipe's validation set — in
process through the query planner, or against a running service with
``--url`` — and with ``--explain`` prints how it was executed: the
chosen backend, the plan reason, and the certificate-pruning /
early-termination counters (``--prune {auto,on,off}`` selects the
pruning mode; answers are bit-identical for every choice).

Two more commands serve the paper's database side: ``sql`` runs a
SELECT-FROM-WHERE query over a dirty CSV with certain/possible-answer
semantics (``--engine`` forces a codd engine backend, ``--url`` routes the
query through a running ``repro serve`` instance's ``/sql`` endpoint), and
``serve`` starts the HTTP query service. ``patch`` sends live base-data
writes (cell repairs, row appends/deletes, Codd NULL fixes) to a running
service; the server maintains its warm CP state in O(Δ) and bumps the
dataset version that every query response echoes.

The CLI is a thin layer over the library; every command accepts ``--seed``
and size flags so runs are reproducible and laptop-sized by default. The
query-heavy commands (``screen``, ``clean``, ``csv-screen``) also accept
``--backend {auto,sequential,batch,incremental,sharded}`` (force a
query-planner backend; ``auto`` lets the cost model choose), ``--n-jobs``
(fan per-point CP scans out over worker processes), ``--no-cache``
(disable the LRU result cache) and ``--tile-rows`` / ``--tile-candidates``
(bound the sharded backend's resident tile); none of these knobs changes
the printed results, only wall-clock time and memory.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Certain Predictions for KNN over incomplete data (VLDB 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's Figure 6 example")

    screen = sub.add_parser("screen", help="Q1-screen a dirty dataset recipe")
    _add_task_flags(screen)

    clean = sub.add_parser("clean", help="run a CPClean session on a recipe")
    _add_task_flags(clean)
    clean.add_argument(
        "--budget",
        type=int,
        default=None,
        help="maximum number of rows to have the human clean (default: until certain)",
    )
    clean.add_argument(
        "--batch",
        type=int,
        default=1,
        help="human answers per selection round (1 = the paper's sequential Algorithm 3)",
    )

    csv_screen = sub.add_parser(
        "csv-screen",
        help="Q1-screen a dirty CSV file and rank the rows worth cleaning",
    )
    csv_screen.add_argument("--input", required=True, help="path to the CSV file")
    csv_screen.add_argument("--label", required=True, help="name of the label column")
    csv_screen.add_argument("--n-val", type=int, default=32)
    csv_screen.add_argument("--k", type=int, default=3)
    csv_screen.add_argument("--seed", type=int, default=0)
    _add_executor_flags(csv_screen)
    csv_screen.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many cleaning recommendations to print",
    )

    query = sub.add_parser(
        "query",
        help="run one CP query and, with --explain, show how it was executed",
        description=(
            "Answer a CP query over a recipe's validation set — in-process "
            "through the query planner, or (with --url) against a running "
            "`repro serve` instance's /query endpoint. --prune selects the "
            "exactness-preserving candidate-pruning mode (answers are "
            "bit-identical for every choice); --explain prints the chosen "
            "backend, the plan reason and the pruning / early-termination "
            "counters of the execution."
        ),
    )
    from repro.data.recipes import recipe_names as _recipe_names

    query.add_argument("--recipe", choices=_recipe_names(), default="supreme")
    query.add_argument("--n-train", type=int, default=100)
    query.add_argument("--n-val", type=int, default=24)
    query.add_argument("--missing-rate", type=float, default=None)
    query.add_argument("--k", type=int, default=None, help="KNN neighbours (default: 3 in-process, the dataset's k via --url)")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--kind",
        choices=("counts", "certain_label", "check"),
        default="certain_label",
        help="what to compute per validation point (default certain_label)",
    )
    query.add_argument(
        "--flavor",
        choices=("auto", "binary", "multiclass", "topk"),
        default="auto",
        help="CP query flavor (default auto: inferred from the dataset)",
    )
    query.add_argument(
        "--label", type=int, default=None, help="target label for --kind check"
    )
    query.add_argument(
        "--points",
        type=_positive_int_flag("--points"),
        default=None,
        help="query only the first N validation points (default: all)",
    )
    query.add_argument(
        "--prune",
        choices=("auto", "on", "off"),
        default="auto",
        help="exactness-preserving candidate pruning (default auto)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the chosen backend, plan reason and pruning counters",
    )
    query.add_argument(
        "--url",
        default=None,
        help=(
            "base URL of a running `repro serve`; the query runs server-side "
            "over /query against --dataset's registered validation set"
        ),
    )
    query.add_argument(
        "--dataset",
        default=None,
        help="registered dataset name on the server (required with --url)",
    )
    query.add_argument(
        "--limit",
        type=_positive_int_flag("--limit"),
        default=10,
        help="print at most this many per-point values",
    )
    _add_executor_flags(query)

    serve = sub.add_parser(
        "serve",
        help="run the CP query service (JSON API over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8970, help="0 = ephemeral port")
    from repro.data.recipes import recipe_names

    serve.add_argument(
        "--recipe",
        choices=recipe_names(),
        default=None,
        help="preload one dirty-dataset recipe (with its validation set and oracle)",
    )
    serve.add_argument(
        "--dataset-name",
        default=None,
        help="registry name for the preloaded recipe (default: the recipe name)",
    )
    serve.add_argument("--n-train", type=int, default=100)
    serve.add_argument("--n-val", type=int, default=24)
    serve.add_argument("--missing-rate", type=float, default=None)
    serve.add_argument("--k", type=int, default=3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--window-ms",
        type=_float_flag("--window-ms", 0.0, inclusive=True),
        default=10.0,
        help="micro-batching window for single-point queries (0 disables coalescing)",
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int_flag("--max-batch"),
        default=16,
        help="flush a pending micro-batch at this many points",
    )
    serve.add_argument(
        "--max-pending",
        type=_positive_int_flag("--max-pending"),
        default=256,
        help="admission control: reject (429) beyond this many in-flight requests",
    )
    serve.add_argument(
        "--ttl",
        type=_float_flag("--ttl", 0.0, inclusive=False),
        default=30.0,
        help="result-cache time-to-live in seconds",
    )
    serve.add_argument(
        "--executors",
        type=int,
        default=0,
        help=(
            "executor worker processes for the partitioned gateway topology "
            "(0 = classic single-process service); answers are bit-identical "
            "either way"
        ),
    )
    serve.add_argument(
        "--partitions-per-executor",
        type=_positive_int_flag("--partitions-per-executor"),
        default=2,
        help="candidate-row partitions owned by each executor (with --executors)",
    )
    serve.add_argument(
        "--executor-timeout",
        type=_float_flag("--executor-timeout", 0.0, inclusive=False),
        default=30.0,
        help="per-executor request timeout in seconds before retry/respawn",
    )
    serve.add_argument(
        "--slow-ms",
        type=_float_flag("--slow-ms", 0.0, inclusive=False),
        default=None,
        help=(
            "slow-query log threshold: requests slower than this emit one "
            "structured JSON line to stderr (default: off)"
        ),
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON access-log line per request to stderr",
    )
    serve.add_argument(
        "--no-trace",
        action="store_true",
        help="disable span collection (metrics stay on; /debug/traces is empty)",
    )
    serve.add_argument(
        "--trace-buffer",
        type=_positive_int_flag("--trace-buffer"),
        default=256,
        help="recent traces kept for /debug/traces (a bounded ring)",
    )
    _add_executor_flags(serve)

    metrics = sub.add_parser(
        "metrics",
        help="fetch and pretty-print /metrics from a running repro serve",
        description=(
            "Scrape a running service's /metrics endpoint and print the "
            "top-line numbers a human wants first: throughput, cache hit "
            "rate, and latency quantiles derived from the served "
            "histograms. --format raw dumps the JSON; --format prometheus "
            "prints the text exposition; --traces lists recent span trees "
            "from /debug/traces instead."
        ),
    )
    metrics.add_argument(
        "--url", required=True, help="base URL of a running `repro serve`"
    )
    metrics.add_argument(
        "--format",
        choices=("summary", "raw", "prometheus"),
        default="summary",
        help="summary (default): human top-lines; raw: the /metrics JSON; "
        "prometheus: the text exposition",
    )
    metrics.add_argument(
        "--traces",
        action="store_true",
        help="list recent traces from /debug/traces instead of metrics",
    )
    metrics.add_argument(
        "--limit",
        type=_positive_int_flag("--limit"),
        default=None,
        help="with --traces: at most this many recent traces",
    )

    patch = sub.add_parser(
        "patch",
        help="apply live writes to a dataset on a running repro serve instance",
        description=(
            "Send base-data writes to a registered dataset (cell repairs, "
            "row appends, row deletes) or Codd table (NULL-cell fixes) of a "
            "running service. Mixed delta kinds are applied repairs first, "
            "then appends, then deletes; --fix cannot be combined with the "
            "delta flags (a registry entry is one kind or the other)."
        ),
    )
    patch.add_argument("--url", required=True, help="base URL of a running `repro serve`")
    patch.add_argument("--name", required=True, help="registry name of the dataset/table")
    patch.add_argument(
        "--repair",
        nargs=2,
        metavar=("ROW", "CANDIDATE"),
        action="append",
        type=int,
        default=None,
        help="pin dirty row ROW to its candidate repair CANDIDATE (repeatable)",
    )
    patch.add_argument(
        "--append-row",
        nargs=2,
        metavar=("CANDIDATES", "LABEL"),
        action="append",
        default=None,
        help=(
            "append a training row: CANDIDATES is the candidate completions "
            "as ';'-separated feature vectors with ','-separated features "
            '(e.g. "1.0,2.0;1.5,2.0"), LABEL its class (repeatable)'
        ),
    )
    patch.add_argument(
        "--delete-row",
        metavar="ROW",
        action="append",
        type=int,
        default=None,
        help="delete training row ROW (later row indices shift down; repeatable)",
    )
    patch.add_argument(
        "--fix",
        nargs=3,
        metavar=("ROW", "COLUMN", "VALUE"),
        action="append",
        default=None,
        help="fix a Codd table's NULL cell at (ROW, COLUMN) to VALUE (repeatable)",
    )

    sql = sub.add_parser(
        "sql",
        help="run a SQL query over a dirty CSV with certain-answer semantics",
    )
    sql.add_argument("--input", required=True, help="path to the CSV file")
    sql.add_argument("--label", required=True, help="name of the label column")
    sql.add_argument(
        "--query",
        required=True,
        help="SELECT ... FROM <name> [JOIN <name> ON ...] [WHERE ...] "
        "[GROUP BY ...] (the CSV table is bound to every name the "
        "FROM/JOIN clauses use, so self-joins work)",
    )
    sql.add_argument(
        "--limit", type=int, default=20, help="print at most this many answer rows"
    )
    sql.add_argument(
        "--engine",
        choices=("auto", "vectorized", "rowwise", "naive"),
        default="auto",
        help=(
            "certain-answer engine backend (default auto: the cost model "
            "picks; results are identical for every choice)"
        ),
    )
    sql.add_argument(
        "--url",
        default=None,
        help=(
            "base URL of a running `repro serve` instance; with it the "
            "query runs server-side over the /sql endpoint (the CSV's Codd "
            "table ships inline) instead of in-process"
        ),
    )
    sql.add_argument(
        "--explain",
        action="store_true",
        help=(
            "print the optimized logical plan and the rewrite rules the "
            "planner applied before the answers"
        ),
    )
    return parser


def _add_task_flags(parser: argparse.ArgumentParser) -> None:
    from repro.data.recipes import recipe_names

    parser.add_argument("--recipe", choices=recipe_names(), default="supreme")
    parser.add_argument("--n-train", type=int, default=100)
    parser.add_argument("--n-val", type=int, default=24)
    parser.add_argument("--n-test", type=int, default=200)
    parser.add_argument("--missing-rate", type=float, default=None)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    _add_executor_flags(parser)


def _n_jobs_flag(value: str) -> int:
    try:
        n_jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--n-jobs must be an integer, got {value!r}"
        ) from None
    # Only two shapes are meaningful: a positive worker count, or the
    # conventional -1 sentinel for "all CPUs". Zero and other negatives
    # used to be accepted (and silently meant "all CPUs"), which hid typos.
    if n_jobs < 1 and n_jobs != -1:
        raise argparse.ArgumentTypeError(
            f"--n-jobs must be a positive integer or -1 (all CPUs), got {n_jobs}"
        )
    return n_jobs


def _positive_int_flag(flag: str):
    def parse(value: str) -> int:
        try:
            number = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} must be an integer, got {value!r}"
            ) from None
        if number < 1:
            raise argparse.ArgumentTypeError(
                f"{flag} must be a positive integer, got {number}"
            )
        return number

    return parse


def _float_flag(flag: str, minimum: float, inclusive: bool):
    def parse(value: str) -> float:
        try:
            number = float(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} must be a number, got {value!r}"
            ) from None
        if number != number:  # NaN compares False to every bound below
            raise argparse.ArgumentTypeError(f"{flag} must be a number, got NaN")
        if number < minimum or (not inclusive and number == minimum):
            bound = f">= {minimum}" if inclusive else f"> {minimum}"
            raise argparse.ArgumentTypeError(f"{flag} must be {bound}, got {number}")
        return number

    return parse


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("auto", "sequential", "batch", "incremental", "sharded"),
        default="auto",
        help=(
            "query-planner backend for CP queries (default auto: the cost "
            "model picks; results are identical for every choice)"
        ),
    )
    parser.add_argument(
        "--n-jobs",
        type=_n_jobs_flag,
        default=1,
        help="worker processes for CP query fan-out (-1 = all CPUs; default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the batch engine's LRU result cache",
    )
    parser.add_argument(
        "--tile-rows",
        type=_positive_int_flag("--tile-rows"),
        default=None,
        help=(
            "test points resident per tile of the sharded backend "
            "(default: the backend's setting; other backends ignore it)"
        ),
    )
    parser.add_argument(
        "--tile-candidates",
        type=_positive_int_flag("--tile-candidates"),
        default=None,
        help=(
            "stacked candidates per kernel block of the sharded backend "
            "(default: the backend's setting; other backends ignore it)"
        ),
    )


def _command_demo() -> int:
    from repro.core.dataset import IncompleteDataset
    from repro.core.queries import certain_label, q2_counts

    dataset = IncompleteDataset(
        [np.array([[5.0], [2.0]]), np.array([[6.0], [4.0]]), np.array([[3.0], [1.0]])],
        labels=[1, 1, 0],
    )
    t = np.array([0.0])
    counts = q2_counts(dataset, t, k=1)
    print("Figure 6 dataset:", dataset)
    print(f"Q2 counts for t=0, 1-NN: {counts} (paper: [6, 2])")
    print(f"certain label: {certain_label(dataset, t, k=1)} (None = not CP'ed)")
    return 0


def _build_task(args: argparse.Namespace):
    from repro.data.task import build_cleaning_task

    return build_cleaning_task(
        args.recipe,
        n_train=args.n_train,
        n_val=args.n_val,
        n_test=args.n_test,
        missing_rate=args.missing_rate,
        k=args.k,
        seed=args.seed,
    )


def _command_screen(args: argparse.Namespace) -> int:
    from repro.core.screening import screen_dataset

    task = _build_task(args)
    result = screen_dataset(
        task.incomplete,
        task.val_X,
        k=task.k,
        n_jobs=args.n_jobs,
        cache=not args.no_cache,
        backend=args.backend,
        tile_rows=args.tile_rows,
        tile_candidates=args.tile_candidates,
    )
    certain, total = result.n_certain, result.n_points
    print(f"recipe={task.name} dirty_rows={len(task.dirty_rows)}/{task.incomplete.n_rows}")
    print(f"validation points certainly predicted: {certain}/{total} ({result.cp_fraction:.0%})")
    if certain == total:
        print("all validation predictions are certain: cleaning cannot change them.")
    else:
        print(f"{total - certain} predictions still depend on how the data is cleaned.")
    return 0


def _command_clean(args: argparse.Namespace) -> int:
    from repro.cleaning.oracle import GroundTruthOracle
    from repro.cleaning.cp_clean import run_cp_clean
    from repro.cleaning.random_clean import run_random_clean
    from repro.core.knn import KNNClassifier
    from repro.experiments.metrics import gap_closed

    task = _build_task(args)
    gt_acc = KNNClassifier(k=task.k).fit(task.train_gt_X, task.train_labels).accuracy(
        task.test_X, task.test_y
    )
    default_acc = KNNClassifier(k=task.k).fit(
        task.train_default_X, task.train_labels
    ).accuracy(task.test_X, task.test_y)
    print(f"recipe={task.name} dirty={len(task.dirty_rows)} "
          f"GT acc={gt_acc:.3f} default acc={default_acc:.3f}")

    oracle = GroundTruthOracle(task.gt_choice)
    if args.batch > 1:
        from repro.cleaning.batch import run_batch_clean

        report = run_batch_clean(
            task.incomplete, task.val_X, oracle, batch_size=args.batch,
            k=task.k, max_cleaned=args.budget,
            n_jobs=args.n_jobs, use_cache=not args.no_cache, backend=args.backend,
            tile_rows=args.tile_rows, tile_candidates=args.tile_candidates,
        )
    else:
        report = run_cp_clean(
            task.incomplete, task.val_X, oracle, k=task.k, max_cleaned=args.budget,
            n_jobs=args.n_jobs, use_cache=not args.no_cache, backend=args.backend,
            tile_rows=args.tile_rows, tile_candidates=args.tile_candidates,
        )

    def world_accuracy(fixed):
        choice = task.default_choice.copy()
        for row, cand in fixed.items():
            choice[row] = cand
        world = task.incomplete.world([int(c) for c in choice])
        return KNNClassifier(k=task.k).fit(world, task.train_labels).accuracy(
            task.test_X, task.test_y
        )

    cp_acc = world_accuracy(report.final_fixed)
    print(f"CPClean: cleaned {report.n_cleaned} rows, "
          f"val CP'ed {report.cp_fraction_final:.0%}, "
          f"test acc {cp_acc:.3f}, gap closed "
          f"{gap_closed(cp_acc, default_acc, gt_acc):.0%}")

    random_report = run_random_clean(
        task.incomplete, task.val_X, oracle, k=task.k,
        max_cleaned=report.n_cleaned, seed=args.seed,
    )
    rand_acc = world_accuracy(random_report.final_fixed)
    print(f"RandomClean (same budget): test acc {rand_acc:.3f}, gap closed "
          f"{gap_closed(rand_acc, default_acc, gt_acc):.0%}")
    return 0


def _command_csv_screen(args: argparse.Namespace) -> int:
    from repro.cleaning.information import information_gains
    from repro.cleaning.sequential import CleaningSession
    from repro.core.screening import screen_dataset
    from repro.data.ingest import load_csv_workload

    workload = load_csv_workload(
        args.input, args.label, n_val=args.n_val, k=args.k, seed=args.seed
    )
    incomplete = workload.incomplete
    dirty = incomplete.uncertain_rows()
    print(
        f"file={args.input} rows={workload.table.n_rows} "
        f"train={incomplete.n_rows} val={workload.val_X.shape[0]} "
        f"dirty={len(dirty)} worlds={incomplete.n_worlds()}"
    )

    result = screen_dataset(
        incomplete, workload.val_X, k=args.k,
        n_jobs=args.n_jobs, cache=not args.no_cache, backend=args.backend,
        tile_rows=args.tile_rows, tile_candidates=args.tile_candidates,
    )
    certain, total = result.n_certain, result.n_points
    print(f"validation points certainly predicted: {certain}/{total} ({result.cp_fraction:.0%})")
    if certain == total:
        print("all validation predictions are certain: cleaning cannot change them.")
        return 0

    session = CleaningSession(
        incomplete, workload.val_X, k=args.k,
        n_jobs=args.n_jobs, use_cache=not args.no_cache, backend=args.backend,
        tile_rows=args.tile_rows, tile_candidates=args.tile_candidates,
    )
    gains = information_gains(session)
    ranked = sorted(gains.items(), key=lambda item: (-item[1], item[0]))
    print(f"\nrows worth cleaning first (top {min(args.top, len(ranked))}):")
    for row, gain in ranked[: args.top]:
        csv_row = int(workload.train_rows[row]) + 2  # 1-based + header line
        print(
            f"  csv line {csv_row}: {incomplete.candidates(row).shape[0]} candidate "
            f"repairs, information gain {gain:.4f} nats"
        )
    return 0


def _print_query_values(values, limit: int) -> None:
    for index, value in enumerate(values[:limit]):
        print(f"  point {index}: {value}")
    if len(values) > limit:
        print(f"  ... {len(values) - limit} more")


def _print_explain(backend: str, reason: str, stats: dict) -> None:
    """The --explain footer: plan choice + the backend's pruning counters."""
    print(f"plan: backend={backend}" + (f" ({reason})" if reason else ""))
    if not stats:
        print("prune: (backend reported no execution stats)")
        return
    pruned = bool(stats.get("prune"))
    print(
        f"prune: {'on' if pruned else 'off'} "
        f"(flavor={stats.get('flavor')}, kind={stats.get('kind')})"
    )
    if pruned:
        print(
            f"  rows pruned:       {stats.get('n_rows_pruned', 0)}"
            f"/{stats.get('n_rows', 0)}"
        )
        print(
            f"  candidates pruned: {stats.get('n_pruned', 0)}"
            f"/{stats.get('n_candidates', 0)} "
            f"({stats.get('n_scanned', 0)} positions scanned)"
        )
        print(
            f"  early-terminated:  {stats.get('n_early_terminated', 0)}"
            f"/{stats.get('n_points', 0)} decision scans"
        )
    for key in ("n_rows_skipped", "n_recomputed"):
        if key in stats:
            print(f"  {key}: {stats[key]}")


def _command_query(args: argparse.Namespace) -> int:
    if args.url is not None:
        if not args.dataset:
            print("--url requires --dataset NAME", file=sys.stderr)
            return 2
        if args.points is not None:
            print(
                "--points is ignored with --url (the server queries the "
                "dataset's whole registered validation set)",
                file=sys.stderr,
            )
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(args.url)
        try:
            response = client.query(
                args.dataset,
                points="validation",
                kind=args.kind,
                flavor=args.flavor,
                k=args.k,
                label=args.label,
                backend=None if args.backend == "auto" else args.backend,
                prune=args.prune,
                explain=args.explain,
            )
        except ServiceError as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 2
        print(
            f"dataset={args.dataset} kind={response['kind']} "
            f"flavor={response['flavor']} points={response['n_points']} "
            f"backend={response['backend']} version={response['version']}"
        )
        _print_query_values(response["values"], args.limit)
        if args.explain:
            block = response.get("explain") or {}
            _print_explain(
                block.get("backend", response["backend"]),
                block.get("reason", ""),
                block.get("stats", {}),
            )
        return 0

    from repro.core.planner import (
        ExecutionOptions,
        PlanError,
        execute_query,
        make_query,
    )
    from repro.data.task import build_cleaning_task

    k = 3 if args.k is None else args.k
    task = build_cleaning_task(
        args.recipe,
        n_train=args.n_train,
        n_val=args.n_val,
        missing_rate=args.missing_rate,
        k=k,
        seed=args.seed,
    )
    points = task.val_X if args.points is None else task.val_X[: args.points]
    try:
        query = make_query(
            task.incomplete,
            points,
            kind=args.kind,
            flavor=args.flavor,
            k=k,
            label=args.label,
        )
        options = ExecutionOptions(
            n_jobs=args.n_jobs,
            cache=not args.no_cache,
            tile_rows=args.tile_rows,
            tile_candidates=args.tile_candidates,
            prune=args.prune,
        )
        result = execute_query(query, backend=args.backend, options=options)
    except (PlanError, ValueError) as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    print(
        f"recipe={task.name} kind={query.kind} flavor={query.flavor} "
        f"k={k} points={points.shape[0]}"
    )
    _print_query_values(result.values, args.limit)
    if args.explain:
        _print_explain(result.plan.backend, result.plan.reason, dict(result.stats))
    return 0


def _command_sql(args: argparse.Namespace) -> int:
    from repro.codd.engine import answer_query
    from repro.codd.from_table import codd_table_from_dirty_table
    from repro.codd.sql import SqlError, parse_sql, referenced_tables
    from repro.data.io import read_csv

    try:
        names = referenced_tables(args.query)
    except SqlError as exc:
        print(f"SQL error: {exc}", file=sys.stderr)
        return 2

    table, schema = read_csv(args.input, args.label)
    codd = codd_table_from_dirty_table(table, schema=schema)
    print(
        f"file={args.input} rows={len(codd)} null_cells={codd.n_variables} "
        f"possible_worlds={codd.n_worlds()}"
    )

    # The CSV table answers to whatever name(s) the query's FROM/JOIN
    # clauses use — a self-join of the CSV against itself is legal SQL.
    try:
        query = parse_sql(
            args.query, schemas={name: codd.schema for name in names}
        )
    except SqlError as exc:
        print(f"SQL error: {exc}", file=sys.stderr)
        return 2
    database = {name: codd for name in names}
    if args.url is not None:
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(args.url)
        try:
            response = client.sql(
                args.query,
                mode="both",
                backend=args.engine,
                codd_table=codd,
                explain=args.explain,
            )
        except ServiceError as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 2
        sure = response["results"]["certain"]
        maybe = response["results"]["possible"]
        print(
            f"served by {args.url} (engine: {response['backends']['certain']}, "
            f"cached: {response['cached']})"
        )
        if args.explain and response.get("explain"):
            _print_sql_explain(
                response["explain"].get("plan"),
                response["explain"].get("rewrites") or (),
            )
    else:
        certain_result = answer_query(
            query, database, mode="certain", backend=args.engine
        )
        sure = certain_result.relation
        maybe = answer_query(
            query, database, mode="possible", backend=args.engine
        ).relation
        print(f"engine: {certain_result.plan.backend} ({certain_result.plan.reason})")
        if args.explain:
            _print_sql_explain(
                certain_result.logical.render()
                if certain_result.logical is not None
                else None,
                certain_result.rewrites,
            )
    uncertain = maybe.rows - sure.rows
    print(f"\ncertain answers ({len(sure)} rows, true in every world):")
    for row in sorted(sure.rows, key=repr)[: args.limit]:
        print("  " + ", ".join(str(v) for v in row))
    if len(sure) > args.limit:
        print(f"  ... {len(sure) - args.limit} more")
    print(f"\npossible-but-not-certain answers ({len(uncertain)} rows):")
    for row in sorted(uncertain, key=repr)[: args.limit]:
        print("  " + ", ".join(str(v) for v in row))
    if len(uncertain) > args.limit:
        print(f"  ... {len(uncertain) - args.limit} more")
    return 0


def _print_sql_explain(plan: str | None, rewrites) -> None:
    print("\noptimized plan:")
    if plan:
        for line in plan.splitlines():
            print("  " + line)
    else:
        print("  (optimizer declined; query ran as written)")
    if rewrites:
        print("rewrites applied: " + ", ".join(rewrites))
    else:
        print("rewrites applied: (none)")


def _parse_cell_value(text: str):
    """``--fix`` VALUE arrives as a string; recover the scalar it denotes."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _command_patch(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    deltas: list[dict] = []
    for row, candidate in args.repair or []:
        deltas.append({"op": "cell_repair", "row": row, "candidate": candidate})
    for candidates, label in args.append_row or []:
        try:
            matrix = [
                [float(feature) for feature in vector.split(",")]
                for vector in candidates.split(";")
            ]
            deltas.append(
                {"op": "row_append", "candidates": matrix, "label": int(label)}
            )
        except ValueError:
            print(
                f"bad --append-row spec {candidates!r} {label!r} (want "
                '"f1,f2;f1,f2" and an integer label)',
                file=sys.stderr,
            )
            return 2
    for row in args.delete_row or []:
        deltas.append({"op": "row_delete", "row": row})
    fixes = []
    for row, column, value in args.fix or []:
        try:
            fixes.append(
                {
                    "op": "fix_cell",
                    "row": int(row),
                    "column": int(column),
                    "value": _parse_cell_value(value),
                }
            )
        except ValueError:
            print("bad --fix spec: row/column must be integers", file=sys.stderr)
            return 2
    if bool(deltas) == bool(fixes):
        print(
            "provide delta flags (--repair / --append-row / --delete-row) "
            "or --fix flags, and not both",
            file=sys.stderr,
        )
        return 2

    client = ServiceClient(args.url)
    try:
        if deltas:
            result = client.patch(args.name, deltas=deltas)
        else:
            result = client.patch(args.name, fixes=fixes)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2

    print(
        f"{args.name}: version {result['version']}, "
        f"fingerprint {result['fingerprint'][:12]}, "
        f"{result['n_worlds']} possible worlds"
    )
    for report in result["reports"]:
        detail = ", ".join(
            f"{key}={report[key]}"
            for key in (
                "row",
                "column",
                "n_pruned",
                "n_recomputed",
                "touched_points",
                "version",
            )
            if key in report
        )
        print(f"  {report['op']}: {detail}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import DatasetRegistry
    from repro.service.http import serve as serve_forever

    registry = DatasetRegistry()
    if args.recipe is not None:
        name = args.dataset_name or args.recipe
        registry.register_recipe(
            name,
            recipe=args.recipe,
            n_train=args.n_train,
            n_val=args.n_val,
            missing_rate=args.missing_rate,
            k=args.k,
            seed=args.seed,
            backend=args.backend,
            n_jobs=args.n_jobs,
        )
        print(f"registered recipe {args.recipe!r} as dataset {name!r}")
    serve_forever(
        registry,
        host=args.host,
        port=args.port,
        window_s=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        backend=args.backend,
        n_jobs=args.n_jobs,
        cache=not args.no_cache,
        ttl_s=args.ttl,
        tile_rows=args.tile_rows,
        tile_candidates=args.tile_candidates,
        executors=args.executors,
        partitions_per_executor=args.partitions_per_executor,
        executor_timeout_s=args.executor_timeout,
        trace=not args.no_trace,
        trace_buffer=args.trace_buffer,
        slow_ms=args.slow_ms,
        access_log=args.access_log,
    )
    return 0


def _format_quantiles(histogram: dict) -> str:
    """``p50=1.2ms p95=3.4ms p99=7.8ms`` from one histogram snapshot."""
    from repro.obs import quantile_from_buckets

    parts = []
    for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        value = quantile_from_buckets(histogram, q)
        parts.append(f"{label}=—" if value is None else f"{label}={value * 1e3:.2f}ms")
    return " ".join(parts)


def _command_metrics(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.traces:
        traces = client.traces(limit=args.limit)
        if not traces:
            print("no buffered traces (is tracing enabled on the server?)")
            return 0
        for record in traces:
            print(json.dumps(record, indent=2, default=str))
        return 0
    if args.format == "prometheus":
        print(client.metrics(format="prometheus"), end="")
        return 0
    payload = client.metrics()
    if args.format == "raw":
        print(json.dumps(payload, indent=2, default=str))
        return 0

    broker = payload.get("broker", {})
    obs = payload.get("obs", {})
    uptime = float(payload.get("uptime_s", 0.0))
    requests = int(broker.get("requests", 0))
    print(f"service        {args.url}")
    print(f"uptime         {uptime:.1f}s")
    throughput = requests / uptime if uptime > 0 else 0.0
    print(f"requests       {requests} ({throughput:.2f}/s over uptime)")
    served = int(broker.get("served_from_cache", 0))
    if requests:
        print(f"cache hit rate {served / requests:.1%} ({served} served from cache)")
    batches = int(broker.get("batches_executed", 0))
    if batches:
        print(
            f"micro-batches  {batches} "
            f"(max size {broker.get('max_batch_size', 0)}, "
            f"{broker.get('coalesced_batches', 0)} coalesced)"
        )
    gateway = broker.get("gateway")
    if gateway:
        print(
            f"gateway        {gateway.get('queries', 0)} queries over "
            f"{gateway.get('executors_alive', gateway.get('n_executors', 0))} executors "
            f"({gateway.get('respawns', 0)} respawns)"
        )
    histograms = obs.get("histograms", {})
    latency = {
        name: snap
        for name, snap in sorted(histograms.items())
        if name.startswith("broker_request_seconds")
        or name.startswith("http_request_seconds")
    }
    if latency:
        print("latency:")
        for name, snap in latency.items():
            if not snap.get("count"):
                continue
            print(f"  {name}: n={snap['count']} {_format_quantiles(snap)}")
    tracing = obs.get("tracing", {})
    if tracing:
        state = "on" if tracing.get("enabled") else "off"
        print(
            f"tracing        {state}: {tracing.get('published', 0)} traces "
            f"({tracing.get('buffered', 0)} buffered, "
            f"{tracing.get('slow_queries', 0)} slow)"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _command_demo()
    if args.command == "screen":
        return _command_screen(args)
    if args.command == "clean":
        return _command_clean(args)
    if args.command == "csv-screen":
        return _command_csv_screen(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "metrics":
        return _command_metrics(args)
    if args.command == "patch":
        return _command_patch(args)
    if args.command == "sql":
        return _command_sql(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
