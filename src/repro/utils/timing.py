"""Lightweight wall-clock timing helpers used by the complexity benchmarks."""

from __future__ import annotations

import time
from collections.abc import Callable

__all__ = ["Stopwatch", "time_callable"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Stopwatch() as watch:
            run_query()
        print(watch.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(func: Callable[[], object], repeats: int = 3) -> float:
    """Return the fastest of ``repeats`` timings of ``func`` in seconds."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best
