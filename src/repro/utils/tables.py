"""Minimal ASCII-table rendering for benchmark and experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_percent", "format_float"]


def format_percent(value: float, digits: int = 0) -> str:
    """Render ``0.153`` as ``'15%'`` (or ``'15.3%'`` with ``digits=1``)."""
    return f"{100.0 * value:.{digits}f}%"


def format_float(value: float, digits: int = 3) -> str:
    """Render a float with a fixed number of decimals."""
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator))
    lines.append(render_row(headers))
    lines.append(separator)
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
