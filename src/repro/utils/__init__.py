"""Shared utilities: RNG handling, argument validation, tables, timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_options,
    check_matrix,
    check_positive_int,
    check_vector,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in_options",
    "check_matrix",
    "check_positive_int",
    "check_vector",
]
