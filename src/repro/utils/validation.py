"""Argument-validation helpers shared across the library.

All helpers raise ``ValueError``/``TypeError`` with messages that name the
offending argument, so failures surface at API boundaries rather than deep
inside numerical code.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = [
    "check_positive_int",
    "check_fraction",
    "check_matrix",
    "check_vector",
    "check_in_options",
]


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, closed: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if open)."""
    value = float(value)
    if closed:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_matrix(array: object, name: str, *, n_cols: int | None = None) -> np.ndarray:
    """Coerce ``array`` to a 2-D float matrix, optionally checking its width."""
    matrix = np.asarray(array, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {matrix.shape}")
    if n_cols is not None and matrix.shape[1] != n_cols:
        raise ValueError(f"{name} must have {n_cols} columns, got {matrix.shape[1]}")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} must be finite (no NaN/inf values)")
    return matrix


def check_vector(array: object, name: str, *, length: int | None = None) -> np.ndarray:
    """Coerce ``array`` to a 1-D float vector, optionally checking its length."""
    vector = np.asarray(array, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {vector.shape}")
    if length is not None and vector.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {vector.shape[0]}")
    if not np.all(np.isfinite(vector)):
        raise ValueError(f"{name} must be finite (no NaN/inf values)")
    return vector


def check_in_options(value: str, name: str, options: Iterable[str]) -> str:
    """Validate that ``value`` is one of ``options`` and return it."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value
