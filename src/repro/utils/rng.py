"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`. Centralising the coercion here keeps all
experiments reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can thread
    a single generator through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used by experiments that average over repetitions: each repetition gets
    its own stream so results do not depend on evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)]
