"""Simulated human-cleaning oracles (paper §5.1 cleaning protocol).

The paper simulates the human in the loop by "picking the candidate repair
that is closest to the ground truth". An oracle here is anything callable as
``oracle(row) -> candidate_index``; :class:`GroundTruthOracle` implements
the paper's protocol from a cleaning task's precomputed choices, and
:class:`NoisyOracle` is an extension for robustness experiments (a human who
sometimes picks a wrong candidate).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction

__all__ = ["CleaningOracle", "GroundTruthOracle", "NoisyOracle"]

#: Any callable mapping a training-row index to the chosen candidate index.
CleaningOracle = Callable[[int], int]


class GroundTruthOracle:
    """The paper's oracle: always returns the closest-to-truth candidate."""

    def __init__(self, gt_choice: Sequence[int]) -> None:
        self._choice = np.asarray(gt_choice, dtype=np.int64)

    def __call__(self, row: int) -> int:
        if not 0 <= row < self._choice.shape[0]:
            raise IndexError(f"row {row} out of range [0, {self._choice.shape[0]})")
        return int(self._choice[row])


class NoisyOracle:
    """A fallible human: answers the truth with probability ``1 - error_rate``.

    On an error, a uniformly random *other* candidate of the row is
    returned. Candidate counts must be supplied so errors stay in range.
    """

    def __init__(
        self,
        gt_choice: Sequence[int],
        candidate_counts: Sequence[int],
        error_rate: float = 0.1,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._choice = np.asarray(gt_choice, dtype=np.int64)
        self._counts = np.asarray(candidate_counts, dtype=np.int64)
        if self._choice.shape != self._counts.shape:
            raise ValueError("gt_choice and candidate_counts must have the same length")
        self.error_rate = check_fraction(error_rate, "error_rate")
        self._rng = ensure_rng(seed)

    def __call__(self, row: int) -> int:
        truth = int(self._choice[row])
        count = int(self._counts[row])
        if count <= 1 or self._rng.random() >= self.error_rate:
            return truth
        wrong = int(self._rng.integers(0, count - 1))
        return wrong if wrong < truth else wrong + 1
