"""CPClean — cleaning by sequential information maximisation (paper §4.1).

Algorithm 3: at every step, for every not-yet-cleaned dirty row ``i`` and
every candidate ``x_{i,j}``, estimate the validation-prediction entropy that
would remain if a human revealed ``c_i = x_{i,j}``; average over candidates
(the uniform prior of Eq. (4)) and clean the row with the smallest expected
remaining entropy. The entropies come from exact Q2 counts.

The per-row evaluation uses
:meth:`repro.core.prepared.PreparedQuery.counts_per_fixing`, which computes
the Q2 counts of *all* "row fixed to candidate j" variants against one
validation point in a single sort-scan, so one selection step costs
``O(n_dirty * |Dval|)`` scans instead of ``O(n_dirty * M * |Dval|)`` full
query evaluations. The scans are scored through
:meth:`repro.cleaning.sequential.CleaningSession.expected_entropies`, which
fans the candidate rows out across the session's worker pool when
``n_jobs > 1`` (results are identical for every ``n_jobs``).

``CPCleanStrategy`` plugs into :class:`repro.cleaning.sequential.CleaningSession`;
:func:`run_cp_clean` is the packaged end-to-end entry point.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport
from repro.cleaning.sequential import CleaningSession, CleaningStrategy
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel

__all__ = ["CPCleanStrategy", "run_cp_clean"]


class CPCleanStrategy(CleaningStrategy):
    """Greedy minimum-expected-entropy selection (Algorithm 3, lines 5-9)."""

    name = "cpclean"

    def select(self, session: CleaningSession, remaining: list[int]) -> tuple[int, float | None]:
        if not remaining:
            raise ValueError("no dirty rows remain to select from")
        # Expected remaining entropy after cleaning each row, Eq. (4):
        # uniform prior over which candidate is the truth, averaged over
        # the validation set (Eq. (3)). Scored via the session's batch
        # executor (parallel across rows when the session has n_jobs > 1).
        entropies = session.expected_entropies(remaining)
        best_row = remaining[0]
        best_entropy = float("inf")
        for row in remaining:
            expected = entropies[row]
            if expected < best_entropy - 1e-15:
                best_entropy = expected
                best_row = row
        return best_row, best_entropy


def run_cp_clean(
    dataset: IncompleteDataset,
    val_X: np.ndarray,
    oracle: CleaningOracle,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_cleaned: int | None = None,
    on_step=None,
    n_jobs: int | None = 1,
    use_cache: bool = True,
    backend: str = "auto",
    tile_rows: int | None = None,
    tile_candidates: int | None = None,
) -> CleaningReport:
    """Run CPClean until all validation points are CP'ed (or budget is hit).

    Returns the :class:`~repro.cleaning.report.CleaningReport`; the cleaned
    dataset is recoverable through ``report.final_fixed`` (any world of the
    partially cleaned dataset has the same validation accuracy as the
    ground-truth world once every validation point is CP'ed — the paper's
    termination guarantee). ``n_jobs``/``use_cache``/``backend`` and the
    ``tile_rows``/``tile_candidates`` bounds of the ``sharded`` backend
    configure the session's planner-routed query execution (see
    :class:`CleaningSession`); they change the wall-clock, never the report.
    """
    session = CleaningSession(
        dataset, val_X, k=k, kernel=kernel, n_jobs=n_jobs, use_cache=use_cache,
        backend=backend, tile_rows=tile_rows, tile_candidates=tile_candidates,
    )
    return session.run(CPCleanStrategy(), oracle, max_cleaned=max_cleaned, on_step=on_step)
