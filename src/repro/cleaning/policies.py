"""Alternative row-selection policies for the cleaning session (ablation).

The paper commits to one selection rule — minimum expected entropy
(sequential information maximisation, Algorithm 3). This module adds
cheaper heuristic policies that plug into the same
:class:`~repro.cleaning.sequential.CleaningSession`, so the ablation bench
can quantify how much of CPClean's advantage comes from the principled
objective versus from merely being *validation-aware* at all:

* :class:`ReachCountStrategy` — clean the row that can still enter the
  top-K of the most not-yet-CP'ed validation points (a pure reachability
  argument using per-row min/max similarities; no counting at all).
* :class:`MembershipUncertaintyStrategy` — clean the row whose top-K
  membership probability is most undecided, summed over the uncertain
  validation points (one label-free polynomial scan per point, cheaper
  than the full entropy objective).
* :class:`DirtiestFirstStrategy` — validation-oblivious strawman: clean
  the row with the most candidates first.

All policies share CPClean's termination rule (all validation points
CP'ed), so they differ only in *how fast* they get there — exactly the
quantity Figure 9 plots for CPClean vs. RandomClean.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport
from repro.cleaning.sequential import CleaningSession, CleaningStrategy
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.topk_prob import topk_inclusion_probabilities

__all__ = [
    "ReachCountStrategy",
    "MembershipUncertaintyStrategy",
    "DirtiestFirstStrategy",
    "run_policy",
    "POLICIES",
]


def _uncertain_points(session: CleaningSession) -> list[int]:
    """Indices of validation points that are not yet CP'ed."""
    return [
        i for i, label in enumerate(session.val_certain_labels()) if label is None
    ]


class ReachCountStrategy(CleaningStrategy):
    """Clean the row that can reach the top-K of the most uncertain points.

    A row *reaches* a validation point when its best candidate similarity
    is not dominated by ``K`` other rows' guaranteed similarities — the
    same criterion :class:`~repro.core.incremental.IncrementalCPState`
    uses for pruning, inverted into a selection score.
    """

    name = "reach-count"

    def select(self, session: CleaningSession, remaining: list[int]) -> tuple[int, float | None]:
        if not remaining:
            raise ValueError("no dirty rows remain to select from")
        uncertain = _uncertain_points(session)
        best_row, best_score = remaining[0], -1
        for row in remaining:
            score = 0
            for point in uncertain:
                query = session.queries[point]
                sims = query._row_sims
                best = sims[row].max()  # remaining rows are never pinned
                n_dominating = 0
                for other in range(session.dataset.n_rows):
                    if other == row:
                        continue
                    pinned = session.fixed.get(other)
                    low = sims[other][pinned] if pinned is not None else sims[other].min()
                    if low > best:
                        n_dominating += 1
                if n_dominating < session.k:
                    score += 1
            if score > best_score:
                best_row, best_score = row, score
        return best_row, None


class MembershipUncertaintyStrategy(CleaningStrategy):
    """Clean the row with the most undecided top-K membership.

    Score of a row = ``Σ_points (1/2 - |P(row in top-K) - 1/2|)`` over the
    not-yet-CP'ed validation points; the row closest to a coin flip in the
    most places is cleaned first.
    """

    name = "membership"

    def select(self, session: CleaningSession, remaining: list[int]) -> tuple[int, float | None]:
        if not remaining:
            raise ValueError("no dirty rows remain to select from")
        uncertain = _uncertain_points(session)
        dataset = _pinned_dataset(session)
        scores = {row: Fraction(0) for row in remaining}
        for point in uncertain:
            probabilities = topk_inclusion_probabilities(
                dataset, session.val_X[point], k=session.k, kernel=session.kernel
            )
            half = Fraction(1, 2)
            for row in remaining:
                scores[row] += half - abs(probabilities[row] - half)
        best_row = max(remaining, key=lambda row: (scores[row], -row))
        return best_row, None


class DirtiestFirstStrategy(CleaningStrategy):
    """Validation-oblivious strawman: most candidates first, ties by index."""

    name = "dirtiest-first"

    def select(self, session: CleaningSession, remaining: list[int]) -> tuple[int, float | None]:
        if not remaining:
            raise ValueError("no dirty rows remain to select from")
        counts = session.dataset.candidate_counts()
        return max(remaining, key=lambda row: (int(counts[row]), -row)), None


def _pinned_dataset(session: CleaningSession) -> IncompleteDataset:
    """The session's dataset with all human answers applied."""
    dataset = session.dataset
    for row, candidate in session.fixed.items():
        dataset = dataset.restrict_row(row, candidate)
    return dataset


#: Name -> zero-argument strategy factory, for the ablation harness.
POLICIES = {
    "reach-count": ReachCountStrategy,
    "membership": MembershipUncertaintyStrategy,
    "dirtiest-first": DirtiestFirstStrategy,
}


def run_policy(
    strategy: CleaningStrategy,
    dataset: IncompleteDataset,
    val_X: np.ndarray,
    oracle: CleaningOracle,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_cleaned: int | None = None,
    on_step=None,
) -> CleaningReport:
    """Run any selection policy inside the standard cleaning session."""
    session = CleaningSession(dataset, val_X, k=k, kernel=kernel)
    return session.run(strategy, oracle, max_cleaned=max_cleaned, on_step=on_step)
