"""RandomClean — the paper's uninformed-prioritisation baseline (§5.2).

Identical cleaning session to CPClean, but the next row to clean is drawn
uniformly at random from the remaining dirty rows. Comparing its CP'ed /
gap-closed curves against CPClean's isolates the value of the
information-maximisation selection (Figure 9).
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport
from repro.cleaning.sequential import CleaningSession, CleaningStrategy
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.utils.rng import ensure_rng

__all__ = ["RandomCleanStrategy", "run_random_clean"]


class RandomCleanStrategy(CleaningStrategy):
    """Uniformly random row selection."""

    name = "random"

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = ensure_rng(seed)

    def select(self, session: CleaningSession, remaining: list[int]) -> tuple[int, float | None]:
        if not remaining:
            raise ValueError("no dirty rows remain to select from")
        return remaining[int(self._rng.integers(0, len(remaining)))], None


def run_random_clean(
    dataset: IncompleteDataset,
    val_X: np.ndarray,
    oracle: CleaningOracle,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_cleaned: int | None = None,
    seed: int | np.random.Generator | None = None,
    on_step=None,
) -> CleaningReport:
    """Run the RandomClean baseline to full validation certainty (or budget)."""
    session = CleaningSession(dataset, val_X, k=k, kernel=kernel)
    return session.run(
        RandomCleanStrategy(seed=seed), oracle, max_cleaned=max_cleaned, on_step=on_step
    )
