"""Standalone-cleaner confidences as priors for ML-aware cleaning.

The paper's evaluation treats HoloClean and CPClean as competitors, but its
outlook suggests combining them: a standalone probabilistic cleaner knows
*which repair is likely*, an ML-aware cleaner knows *which repair matters*.
This module is that bridge — it turns the per-cell repair confidences of
the HoloClean stand-in (:func:`repro.cleaning.holo_clean.holo_cell_confidences`)
into per-row candidate priors for
:class:`~repro.cleaning.weighted_clean.WeightedCPCleanStrategy`:

* a row's candidates are the Cartesian product of its missing cells'
  repairs (:meth:`RepairSpace.row_repairs` order, including the truncation
  cap), so a candidate's weight is the product of its cells' confidences;
* weights are snapped to a rational grid and renormalised exactly, because
  the weighted engine demands distributions that sum to exactly 1.
"""

from __future__ import annotations

import itertools
import math
from fractions import Fraction

from repro.cleaning.holo_clean import holo_cell_confidences
from repro.data.repairs import RepairSpace
from repro.data.table import Table

__all__ = ["holo_candidate_weights"]

#: Grid used to rationalise float confidences before exact normalisation.
_GRID = 1_000_000


def holo_candidate_weights(
    table: Table,
    repair_space: RepairSpace | None = None,
    max_row_candidates: int = 25,
    n_neighbors: int = 15,
) -> list[list[Fraction]]:
    """Per-row candidate priors from the HoloClean-style repair model.

    The weight list of row ``i`` matches
    ``repair_space.row_repairs(i)`` index for index (hence also the
    candidate order of :func:`repro.data.ingest.incomplete_from_dirty_table`
    when built from the same repair space). Clean rows get the trivial
    ``[1]`` prior.
    """
    if repair_space is None:
        repair_space = RepairSpace(table, max_row_candidates=max_row_candidates)
    confidences = holo_cell_confidences(table, repair_space, n_neighbors=n_neighbors)

    weights: list[list[Fraction]] = []
    for row in range(table.n_rows):
        cells = repair_space.missing_cells(row)
        if not cells:
            weights.append([Fraction(1)])
            continue
        per_cell = [confidences[(row, kind, col)] for kind, col in cells]
        raw = [
            max(
                int(round(_GRID * math.prod(combo))),
                1,  # keep every candidate reachable (validity assumption)
            )
            for combo in itertools.islice(
                itertools.product(*per_cell), repair_space.max_row_candidates
            )
        ]
        total = sum(raw)
        weights.append([Fraction(value, total) for value in raw])
    return weights
