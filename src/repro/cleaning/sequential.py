"""The shared human-in-the-loop cleaning session (paper §4, Algorithm 3 skeleton).

Both CPClean and the RandomClean baseline run the same outer loop:

1. stop when every validation example is certainly predicted (or a budget
   is exhausted);
2. select the next dirty training row by some strategy;
3. ask the (simulated) human oracle for its true candidate;
4. fix the row and repeat.

:class:`CleaningSession` owns the loop, the per-validation-point
:class:`~repro.core.prepared.PreparedQuery` caches, and the CP bookkeeping;
strategies only implement :meth:`CleaningStrategy.select`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport, CleaningStep
from repro.core.dataset import IncompleteDataset
from repro.core.entropy import certain_label_from_counts
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.prepared import PreparedQuery
from repro.utils.validation import check_matrix

__all__ = ["CleaningStrategy", "CleaningSession"]


class CleaningStrategy(ABC):
    """Chooses which dirty row to clean next."""

    name = "abstract"

    @abstractmethod
    def select(self, session: "CleaningSession", remaining: list[int]) -> tuple[int, float | None]:
        """Return ``(row, expected_entropy_or_None)`` for the next cleaning step."""


class CleaningSession:
    """One cleaning run over an incomplete training set and a validation set."""

    def __init__(
        self,
        dataset: IncompleteDataset,
        val_X: np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
    ) -> None:
        self.dataset = dataset
        self.val_X = check_matrix(val_X, "val_X", n_cols=dataset.n_features)
        self.k = k
        self.kernel = resolve_kernel(kernel)
        self.queries = [
            PreparedQuery(dataset, t, k=k, kernel=self.kernel) for t in self.val_X
        ]
        self.fixed: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def n_val(self) -> int:
        return self.val_X.shape[0]

    def remaining_dirty_rows(self) -> list[int]:
        """Dirty rows that have not been cleaned yet."""
        return [row for row in self.dataset.uncertain_rows() if row not in self.fixed]

    def val_certain_labels(self) -> list[int | None]:
        """The CP'ed label (or None) of every validation point, given cleaning so far."""
        if self.dataset.n_labels == 2:
            return [query.certain_label_minmax(self.fixed) for query in self.queries]
        return [
            certain_label_from_counts(query.counts(self.fixed)) for query in self.queries
        ]

    def cp_fraction(self) -> float:
        """Fraction of validation points currently CP'ed.

        An empty validation set is trivially fully certain (there is
        nothing left for cleaning to change), so it reports 1.0.
        """
        labels = self.val_certain_labels()
        if not labels:
            return 1.0
        return sum(label is not None for label in labels) / len(labels)

    def all_certain(self) -> bool:
        return all(label is not None for label in self.val_certain_labels())

    # ------------------------------------------------------------------
    def clean_row(self, row: int, candidate: int) -> None:
        """Record a human answer: pin ``row`` to ``candidate``."""
        if row in self.fixed:
            raise ValueError(f"row {row} was already cleaned")
        counts = self.dataset.candidate_counts()
        if not 0 <= candidate < counts[row]:
            raise IndexError(
                f"candidate {candidate} out of range for row {row} with {counts[row]} candidates"
            )
        self.fixed[row] = candidate

    def run(
        self,
        strategy: CleaningStrategy,
        oracle: CleaningOracle,
        max_cleaned: int | None = None,
        on_step=None,
    ) -> CleaningReport:
        """Execute the cleaning loop (Algorithm 3's outer structure).

        ``on_step(step)`` is an optional callback invoked after every
        cleaning interaction (used by the experiment harness to trace
        accuracy curves).
        """
        report = CleaningReport()
        iteration = 0
        while True:
            cp_before = self.cp_fraction()
            if cp_before >= 1.0:
                break
            remaining = self.remaining_dirty_rows()
            if not remaining:
                break
            if max_cleaned is not None and iteration >= max_cleaned:
                report.terminated_early = True
                break
            row, expected_entropy = strategy.select(self, remaining)
            candidate = oracle(row)
            self.clean_row(row, candidate)
            step = CleaningStep(
                iteration=iteration,
                row=row,
                chosen_candidate=candidate,
                cp_fraction_before=cp_before,
                expected_entropy=expected_entropy,
            )
            report.steps.append(step)
            if on_step is not None:
                on_step(step)
            iteration += 1
        report.final_fixed = dict(self.fixed)
        report.cp_fraction_final = self.cp_fraction()
        return report
