"""The shared human-in-the-loop cleaning session (paper §4, Algorithm 3 skeleton).

Both CPClean and the RandomClean baseline run the same outer loop:

1. stop when every validation example is certainly predicted (or a budget
   is exhausted);
2. select the next dirty training row by some strategy;
3. ask the (simulated) human oracle for its true candidate;
4. fix the row and repeat.

:class:`CleaningSession` owns the loop, the CP bookkeeping, and the query
infrastructure: certainty checks route through the unified planner
(:mod:`repro.core.planner`), with the session's
:class:`~repro.core.batch_engine.PreparedBatch` (the vectorised
candidate-distance state for the whole validation set) and shared
:class:`~repro.core.batch_engine.QueryResultCache` handed to whichever
backend the planner runs. The ``backend`` parameter picks the execution
strategy: ``"auto"`` uses the vectorised-MinMax batch path for binary
labels and the ``incremental`` backend otherwise — the latter keeps exact
Q2 counts maintained across cleaning steps
(:class:`~repro.core.incremental.IncrementalCPState`) instead of
re-preparing every validation point after every pin. The expected-entropy
scoring of candidate rows can fan out across ``n_jobs`` worker processes.
Strategies only implement :meth:`CleaningStrategy.select`; the per-point
:class:`~repro.core.prepared.PreparedQuery` objects remain available as
``session.queries`` for code that works one point at a time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport, CleaningStep
from repro.core.batch_engine import (
    BatchQueryExecutor,
    PreparedBatch,
    QueryResultCache,
    fanout_map,
    get_fanout_state,
)
from repro.core.dataset import IncompleteDataset
from repro.core.deltas import (
    CellRepair,
    Delta,
    DeltaMaintainedState,
    RowDelete,
)
from repro.core.entropy import prediction_entropy
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.planner import ExecutionOptions, execute_query, get_backend, make_query
from repro.utils.validation import check_positive_int

__all__ = ["CleaningStrategy", "CleaningSession"]


class CleaningStrategy(ABC):
    """Chooses which dirty row to clean next."""

    name = "abstract"

    @abstractmethod
    def select(self, session: "CleaningSession", remaining: list[int]) -> tuple[int, float | None]:
        """Return ``(row, expected_entropy_or_None)`` for the next cleaning step."""


def _expected_entropy_worker(row: int) -> tuple[int, float]:
    """Pool worker: expected post-cleaning entropy of one candidate row.

    Reads ``(session, fixed)`` from the fork-inherited fan-out state; the
    session's prepared queries are shared read-only across workers.
    """
    session, fixed = get_fanout_state()
    return row, session._expected_entropy_of(row, fixed)


class CleaningSession:
    """One cleaning run over an incomplete training set and a validation set.

    Parameters
    ----------
    dataset, val_X, k, kernel:
        The cleaning problem, as in the paper.
    n_jobs:
        Worker processes for the expected-entropy scoring fan-out (and the
        batch Q2 counts behind certainty checks on datasets with more than
        two labels; binary MinMax checks are vectorised in-process and
        never fork). ``1`` = in-process; ``None``/``-1`` = all CPUs.
        Results are identical for every value (tested).
    use_cache:
        Whether repeated CP queries (same dataset, pins, and point) are
        served from the session's LRU result cache. On by default; results
        are identical either way.
    backend:
        Planner backend for the per-step certainty checks:
        ``"sequential"``, ``"batch"``, ``"incremental"``, ``"sharded"``,
        or ``"auto"`` (default) which picks ``"batch"`` for binary labels
        (the vectorised MinMax check) and ``"incremental"`` otherwise
        (exact Q2 counts maintained across cleaning steps). Every choice
        returns bit-identical labels (tested); only wall-clock changes.
    tile_rows, tile_candidates:
        Tile bounds handed to the ``sharded`` backend's streamed
        certainty checks (:mod:`repro.core.shards`); ``None`` keeps the
        backend defaults. Ignored by the other backends. Note the
        session's own selection scoring still uses its dense prepared
        batch — the sharded backend bounds the certainty-check path.
    """

    def __init__(
        self,
        dataset: IncompleteDataset,
        val_X: np.ndarray,
        k: int = 3,
        kernel: Kernel | str | None = None,
        n_jobs: int | None = 1,
        use_cache: bool = True,
        backend: str = "auto",
        tile_rows: int | None = None,
        tile_candidates: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.k = k
        self.kernel = resolve_kernel(kernel)
        self.n_jobs = n_jobs
        self.cache = QueryResultCache() if use_cache else None
        self.batch = PreparedBatch(dataset, val_X, k=k, kernel=self.kernel)
        self.val_X = self.batch.test_X
        self._executor: BatchQueryExecutor | None = None
        self._delta_state: DeltaMaintainedState | None = None
        self.fixed: dict[int, int] = {}
        self.backend = backend
        self.tile_rows = (
            None if tile_rows is None else check_positive_int(tile_rows, "tile_rows")
        )
        self.tile_candidates = (
            None
            if tile_candidates is None
            else check_positive_int(tile_candidates, "tile_candidates")
        )
        if backend != "auto":
            get_backend(backend)  # fail fast on unknown backend names
        if backend == "auto":
            # Cost-model-lite at the session level: binary certainty checks
            # are cheapest through the vectorised MinMax batch path; larger
            # label spaces need real counts, where maintaining them
            # incrementally beats a full recount per step.
            self._check_backend = "batch" if dataset.n_labels == 2 else "incremental"
        else:
            self._check_backend = backend

    # ------------------------------------------------------------------
    @property
    def executor(self) -> BatchQueryExecutor:
        """A batch executor over the session's prepared state (built lazily).

        Kept for code that drives the session's query family directly;
        the session itself routes certainty checks through the planner.
        """
        if self._executor is None:
            self._executor = BatchQueryExecutor(
                prepared=self.batch, n_jobs=self.n_jobs, cache=self.cache
            )
        return self._executor

    @property
    def queries(self) -> list:
        """Per-point :class:`~repro.core.prepared.PreparedQuery` objects.

        Delegates to the session's prepared batch (which materialises and
        caches them per point), so a base-data delta — which swaps the
        batch — only rebuilds the queries that are actually read again.
        """
        return self.batch.queries()

    @property
    def n_val(self) -> int:
        return self.val_X.shape[0]

    def remaining_dirty_rows(self) -> list[int]:
        """Dirty rows that have not been cleaned yet."""
        return [row for row in self.dataset.uncertain_rows() if row not in self.fixed]

    def val_certain_labels(self) -> list[int | None]:
        """The CP'ed label (or None) of every validation point, given cleaning so far.

        Routed through the planner onto the session's check backend; the
        session's prepared batch and result cache are handed along so no
        backend re-prepares state the session already holds.
        """
        query = make_query(
            self.dataset,
            self.val_X,
            kind="certain_label",
            k=self.k,
            kernel=self.kernel,
            pins=self.fixed,
        )
        options = ExecutionOptions(
            n_jobs=self.n_jobs,
            cache=self.cache if self.cache is not None else False,
            prepared=self.batch,
            tile_rows=self.tile_rows,
            tile_candidates=self.tile_candidates,
        )
        return execute_query(query, backend=self._check_backend, options=options).values

    def cp_fraction(self) -> float:
        """Fraction of validation points currently CP'ed.

        An empty validation set is trivially fully certain (there is
        nothing left for cleaning to change), so it reports 1.0.
        """
        labels = self.val_certain_labels()
        if not labels:
            return 1.0
        return sum(label is not None for label in labels) / len(labels)

    def all_certain(self) -> bool:
        return all(label is not None for label in self.val_certain_labels())

    # ------------------------------------------------------------------
    def _expected_entropy_of(self, row: int, fixed: Mapping[int, int]) -> float:
        """Expected remaining entropy after cleaning ``row`` (Eq. 4, uniform prior)."""
        m = int(self.dataset.candidate_counts()[row])
        total = 0.0
        for query in self.queries:
            variants = query.counts_per_fixing(row, fixed)
            total += sum(prediction_entropy(counts) for counts in variants)
        return total / (m * max(self.n_val, 1))

    def expected_entropies(self, rows: Sequence[int]) -> dict[int, float]:
        """CPClean's selection objective for every row, fanned out over workers.

        ``result[row]`` is the expected post-cleaning validation entropy of
        cleaning ``row`` (Equation 4 under the uniform prior, averaged over
        the validation set per Equation 3). With ``n_jobs > 1`` the rows
        are scored in parallel worker processes; scores are bit-identical
        to the in-process loop because each row's computation is untouched.
        """
        pairs = fanout_map(
            _expected_entropy_worker,
            rows,
            n_jobs=self.n_jobs,
            state=(self, dict(self.fixed)),
        )
        return dict(pairs)

    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """A JSON-able snapshot of cleaning progress.

        This is the unit :mod:`repro.service` ships over the wire after
        every ``/clean/step`` call: the pins applied so far, the current
        per-point certain labels, and the derived certainty summary. The
        certainty check runs once; everything else is bookkeeping.
        """
        labels = self.val_certain_labels()
        n_certain = sum(label is not None for label in labels)
        return {
            "n_cleaned": len(self.fixed),
            "fixed": {int(row): int(cand) for row, cand in sorted(self.fixed.items())},
            "certain_labels": [None if lbl is None else int(lbl) for lbl in labels],
            "n_certain": n_certain,
            "cp_fraction": n_certain / len(labels) if labels else 1.0,
            "all_certain": n_certain == len(labels),
            "remaining_dirty_rows": self.remaining_dirty_rows(),
        }

    def clean_row(self, row: int, candidate: int) -> None:
        """Record a human answer: pin ``row`` to ``candidate``."""
        if row in self.fixed:
            raise ValueError(f"row {row} was already cleaned")
        counts = self.dataset.candidate_counts()
        if not 0 <= candidate < counts[row]:
            raise IndexError(
                f"candidate {candidate} out of range for row {row} with {counts[row]} candidates"
            )
        self.fixed[row] = candidate

    # ------------------------------------------------------------------
    # Physical base-data deltas (the service's PATCH traffic)
    # ------------------------------------------------------------------
    def apply_repair(self, row: int, candidate: int) -> dict:
        """Physically repair ``row`` to ``candidate`` via the delta layer.

        Unlike :meth:`clean_row` — which records a *hypothetical* pin that
        queries condition on — a repair rewrites the dataset itself. See
        :meth:`apply_delta` for how the warm state follows in O(Δ).
        """
        return self.apply_delta(CellRepair(int(row), int(candidate)))

    def apply_delta(self, delta: Delta) -> dict:
        """Apply one base-data delta and update the session's warm state.

        The session keeps a :class:`~repro.core.deltas.DeltaMaintainedState`
        seeded from the prepared batch's similarity matrix (no kernel
        recompute), absorbs the delta there, and swaps in the state's
        reassembled :class:`~repro.core.batch_engine.PreparedBatch` — so
        the certainty checks and entropy scoring that follow see the new
        dataset version without a full re-preparation.

        Pins are reconciled with the delta: a :class:`CellRepair` matching
        an existing pin absorbs it (the pin is physical now) while a
        conflicting one raises ``ValueError``; a :class:`RowDelete` drops
        the deleted row's pin and shifts later pinned rows down by one.
        Returns the delta report (see :meth:`DeltaMaintainedState.apply`).
        """
        if isinstance(delta, CellRepair):
            pinned = self.fixed.get(delta.row)
            if pinned is not None and pinned != delta.candidate:
                raise ValueError(
                    f"repair of row {delta.row} to candidate {delta.candidate} "
                    f"conflicts with the session pin to candidate {pinned}"
                )
        if self._delta_state is None:
            self._delta_state = DeltaMaintainedState(
                self.dataset,
                self.val_X,
                k=self.k,
                kernel=self.kernel,
                sims_matrix=self.batch.sims_matrix,
            )
        report = self._delta_state.apply(delta)
        self.dataset = self._delta_state.dataset
        self.batch = self._delta_state.prepared_batch()
        self._executor = None  # held the previous batch
        if isinstance(delta, CellRepair):
            self.fixed.pop(delta.row, None)  # the pin is physical now
        elif isinstance(delta, RowDelete):
            self.fixed = {
                (row - 1 if row > delta.row else row): cand
                for row, cand in self.fixed.items()
                if row != delta.row
            }
        return report

    def run(
        self,
        strategy: CleaningStrategy,
        oracle: CleaningOracle,
        max_cleaned: int | None = None,
        on_step=None,
    ) -> CleaningReport:
        """Execute the cleaning loop (Algorithm 3's outer structure).

        ``on_step(step)`` is an optional callback invoked after every
        cleaning interaction (used by the experiment harness to trace
        accuracy curves).
        """
        report = CleaningReport()
        iteration = 0
        while True:
            cp_before = self.cp_fraction()
            if cp_before >= 1.0:
                break
            remaining = self.remaining_dirty_rows()
            if not remaining:
                break
            if max_cleaned is not None and iteration >= max_cleaned:
                report.terminated_early = True
                break
            row, expected_entropy = strategy.select(self, remaining)
            candidate = oracle(row)
            self.clean_row(row, candidate)
            step = CleaningStep(
                iteration=iteration,
                row=row,
                chosen_candidate=candidate,
                cp_fraction_before=cp_before,
                expected_entropy=expected_entropy,
            )
            report.steps.append(step)
            if on_step is not None:
                on_step(step)
            iteration += 1
        report.final_fixed = dict(self.fixed)
        report.cp_fraction_final = self.cp_fraction()
        return report
