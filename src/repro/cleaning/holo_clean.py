"""A HoloClean-style probabilistic cleaner (paper §5.1; Rekatsinas et al. [11]).

HoloClean proper is a weakly-supervised probabilistic inference system that
combines quality rules, co-occurrence statistics and reference data to find
the *most likely* repair for each cell, without looking at any downstream
model. This stand-in keeps exactly that role in the comparison: it scores
every candidate repair of a cell by a pseudo-likelihood learned from the
clean rows — a local neighbourhood model over the row's *observed*
attributes — and commits the argmax. It never sees the validation set or
the classifier, which is the property the paper's experiment isolates
(standalone "most likely fix" cleaning can fail to help, or even hurt,
downstream accuracy).

Scoring model, per dirty cell:

1. find the ``n_neighbors`` complete rows most similar to the dirty row on
   its observed attributes (z-scored numeric distance + categorical
   mismatch);
2. numeric candidate score = Gaussian likelihood under the neighbours'
   mean/std for that column;
3. categorical candidate score = (smoothed) frequency of the candidate among
   the neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.data.repairs import RepairSpace
from repro.data.table import MISSING_CATEGORY, Table
from repro.utils.validation import check_positive_int

__all__ = ["run_holo_clean", "holo_cell_confidences"]


def _observed_distance_matrix(table: Table, row: int, complete_rows: np.ndarray) -> np.ndarray:
    """Distance from ``row`` to each complete row over the row's observed cells."""
    distances = np.zeros(complete_rows.shape[0])
    n_used = 0
    for j in range(table.n_numeric):
        value = table.numeric[row, j]
        if np.isnan(value):
            continue
        column = table.numeric[complete_rows, j]
        std = float(np.nanstd(table.numeric[:, j]))
        std = std if std > 1e-12 else 1.0
        distances += ((column - value) / std) ** 2
        n_used += 1
    for j in range(table.n_categorical):
        value = table.categorical[row, j]
        if value == MISSING_CATEGORY:
            continue
        distances += (table.categorical[complete_rows, j] != value).astype(np.float64)
        n_used += 1
    if n_used == 0:
        # Nothing observed: every complete row is equally close.
        return np.zeros(complete_rows.shape[0])
    return distances


def holo_cell_confidences(
    table: Table,
    repair_space: RepairSpace | None = None,
    n_neighbors: int = 15,
) -> dict[tuple[int, str, int], list[float]]:
    """The repair model's confidence per missing cell, as distributions.

    Returns ``{(row, kind, column): probabilities}`` with one probability
    per candidate of that column's repair list, summing to 1. This is the
    model :func:`run_holo_clean` argmaxes over; exposed separately so the
    confidences can also serve as an *informative prior* for weighted
    CPClean (:mod:`repro.cleaning.holo_priors`) — the pipeline the paper's
    "combine standalone and ML-aware cleaning" outlook suggests.
    """
    n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
    if repair_space is None:
        repair_space = RepairSpace(table)

    dirty_rows = table.dirty_rows()
    complete_mask = np.ones(table.n_rows, dtype=bool)
    complete_mask[dirty_rows] = False
    complete_rows = np.flatnonzero(complete_mask)
    if complete_rows.size == 0:
        raise ValueError("HoloClean-style repair needs at least one complete row")

    confidences: dict[tuple[int, str, int], list[float]] = {}
    for row in dirty_rows:
        distances = _observed_distance_matrix(table, int(row), complete_rows)
        order = np.argsort(distances, kind="stable")
        neighbours = complete_rows[order[: min(n_neighbors, complete_rows.size)]]

        for kind, col in repair_space.missing_cells(int(row)):
            candidates = repair_space.cell_candidates(kind, col)
            if kind == "numeric":
                local = table.numeric[neighbours, col]
                mean = float(local.mean())
                std = float(local.std())
                std = std if std > 1e-9 else 1e-9
                scores = np.array(
                    [np.exp(-(((float(v) - mean) / std) ** 2)) for v in candidates]
                )
            else:
                local = table.categorical[neighbours, col]
                # Laplace-smoothed neighbourhood frequency per candidate.
                scores = np.array(
                    [float(np.sum(local == int(v))) + 0.5 for v in candidates]
                )
            total = float(scores.sum())
            if total <= 0:
                scores = np.ones(len(candidates))
                total = float(len(candidates))
            confidences[(int(row), kind, col)] = [float(s) / total for s in scores]
    return confidences


def run_holo_clean(
    table: Table,
    repair_space: RepairSpace | None = None,
    n_neighbors: int = 15,
) -> Table:
    """Return a complete table with every missing cell repaired probabilistically.

    When ``repair_space`` is given, repairs are restricted to its candidate
    values (the comparison setting: all methods share one repair space);
    otherwise candidates are built from the table directly. Each cell gets
    the most confident candidate of :func:`holo_cell_confidences` (ties by
    the earlier candidate, matching ``np.argmax``).
    """
    if repair_space is None:
        repair_space = RepairSpace(table)
    confidences = holo_cell_confidences(table, repair_space, n_neighbors=n_neighbors)

    cleaned = table.copy()
    for (row, kind, col), probabilities in confidences.items():
        candidates = repair_space.cell_candidates(kind, col)
        best = int(np.argmax(probabilities))
        if kind == "numeric":
            cleaned.numeric[row, col] = float(candidates[best])
        else:
            cleaned.categorical[row, col] = int(candidates[best])
    return cleaned
