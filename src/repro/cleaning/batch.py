"""Batch cleaning: several human answers per selection round.

Algorithm 3 re-optimises after every single human answer. Real cleaning
workflows (crowdsourcing, data-steward queues) hand out *batches*: the
system picks ``batch_size`` rows at once, humans clean them in parallel,
and only then does the system look again. This module implements that
variant of CPClean:

* each round ranks the remaining dirty rows by the same expected-entropy
  objective (Equation 4, one single-scan evaluation per row per validation
  point) and submits the ``batch_size`` best;
* the certainty check and re-ranking happen once per round, not per row.

Batching trades adaptivity for latency: the batch is chosen without seeing
the answers inside it, so it can include rows a sequential run would have
skipped (the adaptivity gap of greedy policies) — though a batch can also
get lucky and finish early. ``batch_size=1`` reproduces the sequential
algorithm exactly (tested), and certification always completes.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport, CleaningStep
from repro.cleaning.sequential import CleaningSession
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.utils.validation import check_positive_int

__all__ = ["rank_rows_by_expected_entropy", "run_batch_clean"]


def rank_rows_by_expected_entropy(
    session: CleaningSession, remaining: list[int]
) -> list[tuple[int, float]]:
    """All remaining rows with their expected post-cleaning entropy, best first.

    The scoring is exactly CPClean's selection objective (Equation 4 under
    the uniform prior), computed through the session's batch executor —
    parallel across rows when the session has ``n_jobs > 1``; ties break
    toward the smaller row index.
    """
    entropies = session.expected_entropies(remaining)
    scored = [(row, entropies[row]) for row in remaining]
    scored.sort(key=lambda item: (item[1], item[0]))
    return scored


def run_batch_clean(
    dataset: IncompleteDataset,
    val_X: np.ndarray,
    oracle: CleaningOracle,
    batch_size: int = 5,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_cleaned: int | None = None,
    on_step=None,
    n_jobs: int | None = 1,
    use_cache: bool = True,
    backend: str = "auto",
    tile_rows: int | None = None,
    tile_candidates: int | None = None,
) -> CleaningReport:
    """CPClean with ``batch_size`` human answers per selection round.

    ``batch_size=1`` reproduces the sequential algorithm exactly. Returns
    the usual :class:`~repro.cleaning.report.CleaningReport`; steps within
    one round share their ``cp_fraction_before`` value (the check runs once
    per round). ``n_jobs``/``use_cache``/``backend`` and the sharded
    backend's ``tile_rows``/``tile_candidates`` bounds configure the
    session's planner-routed query execution (wall-clock only; the report
    is identical).
    """
    batch_size = check_positive_int(batch_size, "batch_size")
    session = CleaningSession(
        dataset, val_X, k=k, kernel=kernel, n_jobs=n_jobs, use_cache=use_cache,
        backend=backend, tile_rows=tile_rows, tile_candidates=tile_candidates,
    )
    report = CleaningReport()
    iteration = 0
    while True:
        cp_before = session.cp_fraction()
        if cp_before >= 1.0:
            break
        remaining = session.remaining_dirty_rows()
        if not remaining:
            break
        if max_cleaned is not None and iteration >= max_cleaned:
            report.terminated_early = True
            break
        budget_left = (
            batch_size if max_cleaned is None else min(batch_size, max_cleaned - iteration)
        )
        ranked = rank_rows_by_expected_entropy(session, remaining)
        for row, expected_entropy in ranked[:budget_left]:
            candidate = oracle(row)
            session.clean_row(row, candidate)
            step = CleaningStep(
                iteration=iteration,
                row=row,
                chosen_candidate=candidate,
                cp_fraction_before=cp_before,
                expected_entropy=expected_entropy,
            )
            report.steps.append(step)
            if on_step is not None:
                on_step(step)
            iteration += 1
    report.final_fixed = dict(session.fixed)
    report.cp_fraction_final = session.cp_fraction()
    return report
