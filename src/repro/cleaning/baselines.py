"""One-shot cleaning baselines: Ground Truth and Default Cleaning (§5.1).

Both produce a complete training matrix and a fitted KNN classifier:

* **Ground Truth** trains on the true values — the paper's accuracy upper
  bound (every other method is scored by how much of the gap to this bound
  it closes);
* **Default Cleaning** imputes numeric cells with the column mean and
  categorical cells with the most frequent category — the paper's lower
  bound ("the default and most commonly used way").
"""

from __future__ import annotations

from repro.core.knn import KNNClassifier
from repro.data.task import CleaningTask

__all__ = ["ground_truth_classifier", "default_clean_classifier"]


def ground_truth_classifier(task: CleaningTask) -> KNNClassifier:
    """KNN trained on the ground-truth training matrix (upper bound)."""
    return KNNClassifier(k=task.k).fit(task.train_gt_X, task.train_labels)


def default_clean_classifier(task: CleaningTask) -> KNNClassifier:
    """KNN trained on the mean/mode-imputed training matrix (lower bound)."""
    return KNNClassifier(k=task.k).fit(task.train_default_X, task.train_labels)
