"""Data cleaning for ML: CPClean and every baseline of the paper's evaluation."""

from repro.cleaning.baselines import default_clean_classifier, ground_truth_classifier
from repro.cleaning.batch import rank_rows_by_expected_entropy, run_batch_clean
from repro.cleaning.information import (
    information_gains,
    optimal_cleaning_set,
    row_information_gain,
    validation_entropy,
)
from repro.cleaning.boost_clean import BoostCleanModel, run_boost_clean
from repro.cleaning.cp_clean import CPCleanStrategy, run_cp_clean
from repro.cleaning.holo_clean import holo_cell_confidences, run_holo_clean
from repro.cleaning.holo_priors import holo_candidate_weights
from repro.cleaning.oracle import CleaningOracle, GroundTruthOracle, NoisyOracle
from repro.cleaning.policies import (
    POLICIES,
    DirtiestFirstStrategy,
    MembershipUncertaintyStrategy,
    ReachCountStrategy,
    run_policy,
)
from repro.cleaning.random_clean import RandomCleanStrategy, run_random_clean
from repro.cleaning.report import CleaningReport, CleaningStep
from repro.cleaning.weighted_clean import (
    WeightedCPCleanStrategy,
    distance_to_default_weights,
    run_weighted_cp_clean,
)
from repro.cleaning.sequential import CleaningSession, CleaningStrategy

__all__ = [
    "CleaningSession",
    "CleaningStrategy",
    "CleaningReport",
    "CleaningStep",
    "CleaningOracle",
    "GroundTruthOracle",
    "NoisyOracle",
    "CPCleanStrategy",
    "run_cp_clean",
    "RandomCleanStrategy",
    "run_random_clean",
    "run_boost_clean",
    "BoostCleanModel",
    "run_holo_clean",
    "holo_cell_confidences",
    "holo_candidate_weights",
    "ground_truth_classifier",
    "default_clean_classifier",
    "POLICIES",
    "ReachCountStrategy",
    "MembershipUncertaintyStrategy",
    "DirtiestFirstStrategy",
    "run_policy",
    "WeightedCPCleanStrategy",
    "run_weighted_cp_clean",
    "distance_to_default_weights",
    "run_batch_clean",
    "rank_rows_by_expected_entropy",
    "validation_entropy",
    "row_information_gain",
    "information_gains",
    "optimal_cleaning_set",
]
