"""Step-by-step records of a sequential cleaning run."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CleaningStep", "CleaningReport"]


@dataclass(frozen=True)
class CleaningStep:
    """One human-cleaning interaction.

    ``cp_fraction_before`` is the fraction of validation examples that were
    already certainly predicted when the row was selected;
    ``expected_entropy`` is the selection criterion's value for the chosen
    row (``None`` for strategies that do not estimate it).
    """

    iteration: int
    row: int
    chosen_candidate: int
    cp_fraction_before: float
    expected_entropy: float | None = None


@dataclass
class CleaningReport:
    """The outcome of a sequential cleaning run.

    Attributes
    ----------
    steps:
        One :class:`CleaningStep` per human interaction, in order.
    final_fixed:
        Mapping of cleaned row -> chosen candidate index.
    cp_fraction_final:
        Fraction of validation examples CP'ed after the last step.
    terminated_early:
        True when the run stopped because of a cleaning budget rather than
        full validation certainty.
    """

    steps: list[CleaningStep] = field(default_factory=list)
    final_fixed: dict[int, int] = field(default_factory=dict)
    cp_fraction_final: float = 0.0
    terminated_early: bool = False

    @property
    def n_cleaned(self) -> int:
        """Number of examples a human was asked to clean."""
        return len(self.steps)

    def cleaned_rows(self) -> list[int]:
        """Row indices in cleaning order."""
        return [step.row for step in self.steps]

    def cp_fraction_curve(self) -> list[float]:
        """CP'ed validation fraction before each step plus the final value."""
        curve = [step.cp_fraction_before for step in self.steps]
        curve.append(self.cp_fraction_final)
        return curve
