"""Information-theoretic instrumentation for the cleaning objective (§4.1, App. C).

CPClean is analysed through sequential information maximisation: cleaning
row ``i`` is worth ``I(A_D(Dval); c_i)`` bits about the validation
predictions, and Corollary 1 bounds how close the greedy policy gets to the
best size-``t`` set ``D_Opt``. This module computes those quantities
*exactly* from Q2 counts, so the guarantee can be inspected empirically:

* :func:`validation_entropy` — ``H(A_D(Dval) | pins)``, Equation (3);
* :func:`row_information_gain` — ``I(A_D(Dval); c_i | pins)`` for one row
  under the uniform candidate prior of Equation (4);
* :func:`information_gains` — the gain of every remaining dirty row (the
  quantity CPClean greedily maximises — its argmax is CPClean's pick);
* :func:`optimal_cleaning_set` — brute-force ``D_Opt`` for small instances
  (enumerate subsets and joint candidate assignments), the yardstick in
  Corollary 1;
* :func:`greedy_vs_optimal_curve` — the measured analogue of the
  ``1 - exp(-T/θt')`` bound.

Entropies are in nats (natural log), matching
:func:`repro.core.entropy.prediction_entropy`.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Mapping, Sequence

from repro.cleaning.sequential import CleaningSession
from repro.core.entropy import prediction_entropy

__all__ = [
    "validation_entropy",
    "row_information_gain",
    "information_gains",
    "set_information_gain",
    "optimal_cleaning_set",
    "greedy_vs_optimal_curve",
]


def validation_entropy(
    session: CleaningSession, fixed: Mapping[int, int] | None = None
) -> float:
    """``H(A_D(Dval) | pins)`` — the average per-point prediction entropy.

    ``fixed`` defaults to the session's own pins; pass an explicit mapping
    to evaluate hypothetical cleaning states.
    """
    pins = session.fixed if fixed is None else dict(fixed)
    if session.n_val == 0:
        return 0.0
    total = sum(
        prediction_entropy(query.counts(pins)) for query in session.queries
    )
    return total / session.n_val


def row_information_gain(session: CleaningSession, row: int) -> float:
    """``I(A_D(Dval); c_i | pins)`` for one dirty row, uniform prior (Eq. 4).

    The mutual information equals the current conditional entropy minus the
    expected entropy after cleaning the row — exactly the quantity whose
    *minimisation* drives Algorithm 3's selection step.
    """
    if row in session.fixed:
        raise ValueError(f"row {row} is already cleaned")
    m = int(session.dataset.candidate_counts()[row])
    before = validation_entropy(session)
    after = 0.0
    for query in session.queries:
        variants = query.counts_per_fixing(row, session.fixed)
        after += sum(prediction_entropy(counts) for counts in variants)
    after /= m * max(session.n_val, 1)
    # Numerical floor: conditioning can only reduce entropy in expectation.
    return max(before - after, 0.0)


def information_gains(session: CleaningSession) -> dict[int, float]:
    """Information gain of every remaining dirty row (CPClean picks the argmax)."""
    return {
        row: row_information_gain(session, row)
        for row in session.remaining_dirty_rows()
    }


def set_information_gain(session: CleaningSession, rows: Sequence[int]) -> float:
    """``I(A_D(Dval); {c_i : i in rows} | pins)`` by joint-assignment enumeration.

    Exponential in ``len(rows)`` (the product of their candidate counts);
    intended for the small instances where ``D_Opt`` is computable at all.
    """
    rows = list(dict.fromkeys(rows))
    for row in rows:
        if row in session.fixed:
            raise ValueError(f"row {row} is already cleaned")
    counts = session.dataset.candidate_counts()
    before = validation_entropy(session)
    domains = [range(int(counts[row])) for row in rows]
    n_assignments = math.prod(len(d) for d in domains)
    after = 0.0
    for assignment in itertools.product(*domains):
        pins = {**session.fixed, **dict(zip(rows, assignment))}
        after += validation_entropy(session, pins)
    after /= max(n_assignments, 1)
    return max(before - after, 0.0)


def optimal_cleaning_set(
    session: CleaningSession, size: int, max_subsets: int = 5_000
) -> tuple[tuple[int, ...], float]:
    """``D_Opt``: the size-``size`` row set with maximal joint information gain.

    Brute force over all subsets of the remaining dirty rows; guarded by
    ``max_subsets`` because the problem is NP-hard in general [Ko et al.].
    Returns ``(rows, gain)``.
    """
    remaining = session.remaining_dirty_rows()
    if size > len(remaining):
        raise ValueError(
            f"size {size} exceeds the {len(remaining)} remaining dirty rows"
        )
    n_subsets = math.comb(len(remaining), size)
    if n_subsets > max_subsets:
        raise ValueError(
            f"{n_subsets} candidate subsets exceed the cap {max_subsets}; "
            "optimal_cleaning_set is only meant for small instances"
        )
    best_rows: tuple[int, ...] = ()
    best_gain = -1.0
    for subset in itertools.combinations(remaining, size):
        gain = set_information_gain(session, subset)
        if gain > best_gain:
            best_rows, best_gain = subset, gain
    return best_rows, best_gain


def greedy_vs_optimal_curve(
    session: CleaningSession,
    oracle,
    horizon: int,
    optimal_size: int,
) -> dict[str, list[float] | float]:
    """Measure Corollary 1's quantities on a live session.

    Runs ``horizon`` greedy (max-information) cleaning steps, recording the
    cumulative information gathered after each, and compares against the
    optimal size-``optimal_size`` set's information. Returns a dict with
    ``greedy_curve`` (cumulative gain after step T), ``optimal`` (the
    ``I(A_D(Dval); D_Opt)`` reference) and ``initial_entropy``.

    The session is mutated (rows actually get cleaned), mirroring how the
    guarantee speaks about the executed policy.
    """
    initial = validation_entropy(session)
    optimal_rows, optimal_gain = optimal_cleaning_set(session, optimal_size)
    curve: list[float] = []
    for _ in range(horizon):
        remaining = session.remaining_dirty_rows()
        if not remaining:
            break
        gains = information_gains(session)
        row = max(gains, key=lambda r: (gains[r], -r))
        session.clean_row(row, oracle(row))
        curve.append(initial - validation_entropy(session))
    return {
        "greedy_curve": curve,
        "optimal": optimal_gain,
        "optimal_rows": list(optimal_rows),
        "initial_entropy": initial,
    }
