"""CPClean under a non-uniform candidate prior.

Equation (4) estimates the post-cleaning entropy with a *uniform* prior over
which candidate is the truth, and the paper notes a uniform prior "already
works well". When better information exists — repair confidences from a
probabilistic cleaner such as HoloClean, or distance-to-default scores —
the same greedy machinery applies with the prior swapped in:

* the selection step weighs each hypothetical answer by ``p_{i,j}`` instead
  of ``1/m_i``;
* the entropy of a validation point becomes the entropy of the *weighted*
  prediction distribution (:mod:`repro.core.weighted`), i.e. the classifier
  evaluated over a block tuple-independent probabilistic database.

The weighted evaluations route through the unified planner
(:mod:`repro.core.planner`) with the session's prepared batch handed
along, so scoring a candidate row against the whole validation set shares
one vectorised distance pass and can fan out over the session's worker
pool — the weighted flavor inherits the same batch execution the binary
path got in PR 1.

With the uniform prior this strategy selects exactly the same rows as
:class:`~repro.cleaning.cp_clean.CPCleanStrategy` (tested), so it is a
strict generalisation — at a constant-factor cost for exact rational
arithmetic.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.report import CleaningReport
from repro.cleaning.sequential import CleaningSession, CleaningStrategy
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.core.weighted import condition_weights, uniform_candidate_weights

__all__ = ["WeightedCPCleanStrategy", "run_weighted_cp_clean", "distance_to_default_weights"]


def _entropy(probabilities: list[Fraction]) -> float:
    """Shannon entropy (nats) of an exact distribution."""
    out = 0.0
    for p in probabilities:
        if p > 0:
            value = float(p)
            out -= value * math.log(value)
    return out


def distance_to_default_weights(
    dataset: IncompleteDataset, default_choice: np.ndarray, sharpness: float = 1.0
) -> list[list[Fraction]]:
    """A simple informative prior: candidates near the default repair are likelier.

    Weight of candidate ``j`` of row ``i`` is proportional to
    ``1 / (1 + sharpness * ||x_{i,j} - x_{i,default}||)``, normalised to sum
    to one with exact rationals (weights are rounded to a 1e-6 grid first so
    the normalisation stays exact).
    """
    weights: list[list[Fraction]] = []
    for row in range(dataset.n_rows):
        candidates = dataset.candidates(row)
        anchor = candidates[int(default_choice[row])]
        raw = [
            1.0 / (1.0 + sharpness * float(np.linalg.norm(candidate - anchor)))
            for candidate in candidates
        ]
        grid = [Fraction(max(int(round(value * 1_000_000)), 1), 1_000_000) for value in raw]
        total = sum(grid)
        weights.append([w / total for w in grid])
    return weights


class WeightedCPCleanStrategy(CleaningStrategy):
    """Greedy minimum expected *weighted* entropy selection.

    Parameters
    ----------
    weights:
        ``weights[i][j]`` is the prior probability that candidate ``j`` of
        row ``i`` is the true value; ``None`` means uniform (recovering the
        paper's Equation 4 and the plain CPClean selection).
    backend:
        Planner backend for the weighted evaluations (``"auto"`` lets the
        planner pick — the batch backend for a multi-point validation
        set). Wall-clock only; the exact rational results are identical.
    """

    name = "cpclean-weighted"

    def __init__(
        self, weights: list[list[Fraction]] | None = None, backend: str = "auto"
    ) -> None:
        self._weights = weights
        self.backend = backend

    # ------------------------------------------------------------------
    def _session_weights(self, session: CleaningSession) -> list[list[Fraction]]:
        if self._weights is None:
            self._weights = uniform_candidate_weights(session.dataset)
        if len(self._weights) != session.dataset.n_rows:
            raise ValueError(
                f"weights cover {len(self._weights)} rows, dataset has "
                f"{session.dataset.n_rows}"
            )
        return self._weights

    def _val_probabilities(
        self, session: CleaningSession, conditioned: list[list[Fraction]]
    ) -> list[list[Fraction]]:
        """Weighted prediction distributions of every validation point."""
        query = make_query(
            session.dataset,
            session.val_X,
            kind="counts",
            flavor="weighted",
            k=session.k,
            kernel=session.kernel,
            weights=conditioned,
        )
        options = ExecutionOptions(
            n_jobs=session.n_jobs,
            cache=session.cache if session.cache is not None else False,
            prepared=session.batch,
            tile_rows=session.tile_rows,
            tile_candidates=session.tile_candidates,
        )
        return execute_query(query, backend=self.backend, options=options).values

    def select(self, session: CleaningSession, remaining: list[int]) -> tuple[int, float | None]:
        if not remaining:
            raise ValueError("no dirty rows remain to select from")
        weights = condition_weights(self._session_weights(session), session.fixed)
        best_row, best_entropy = remaining[0], float("inf")
        for row in remaining:
            row_weights = weights[row]
            expected = 0.0
            for cand, prior in enumerate(row_weights):
                if prior == 0:
                    continue
                conditioned = condition_weights(weights, {row: cand})
                for probabilities in self._val_probabilities(session, conditioned):
                    expected += float(prior) * _entropy(probabilities)
            expected /= max(session.n_val, 1)
            if expected < best_entropy - 1e-15:
                best_entropy = expected
                best_row = row
        return best_row, best_entropy


def run_weighted_cp_clean(
    dataset: IncompleteDataset,
    val_X: np.ndarray,
    oracle: CleaningOracle,
    weights: list[list[Fraction]] | None = None,
    k: int = 3,
    kernel: Kernel | str | None = None,
    max_cleaned: int | None = None,
    on_step=None,
    n_jobs: int | None = 1,
    use_cache: bool = True,
    backend: str = "auto",
    tile_rows: int | None = None,
    tile_candidates: int | None = None,
) -> CleaningReport:
    """Run CPClean with a non-uniform candidate prior.

    ``n_jobs``/``use_cache``/``backend`` (and the sharded backend's
    ``tile_rows``/``tile_candidates`` bounds) configure the planner-routed
    query execution (wall-clock only; the report is identical).
    """
    session = CleaningSession(
        dataset, val_X, k=k, kernel=kernel, n_jobs=n_jobs, use_cache=use_cache,
        backend=backend, tile_rows=tile_rows, tile_candidates=tile_candidates,
    )
    # The incremental backend maintains integer counts only; weighted
    # evaluations fall back to the planner's choice in that case.
    strategy_backend = (
        backend if backend in ("sequential", "batch", "sharded") else "auto"
    )
    return session.run(
        WeightedCPCleanStrategy(weights, backend=strategy_backend), oracle,
        max_cleaned=max_cleaned, on_step=on_step,
    )
