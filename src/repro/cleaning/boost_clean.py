"""BoostClean-style automatic cleaning (paper §5.1; Krishnan et al. [7]).

BoostClean treats each repair action as producing a candidate classifier and
uses a labelled validation set to combine them. Our repair-action space
matches the paper's comparison setup exactly: the same global per-column
candidates CPClean uses (numeric min / p25 / mean / p75 / max; categorical
top-1..top-4 / other) — "to ensure fair comparison, we use the same cleaning
method as in CPClean".

Two modes:

* ``n_rounds=1`` — pick the single action with the best validation
  accuracy (the selection the paper describes);
* ``n_rounds>1`` — AdaBoost-style statistical boosting over the action
  classifiers (the original BoostClean's mechanism), yielding a weighted-
  vote ensemble.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.knn import KNNClassifier
from repro.data.task import CleaningTask
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["BoostCleanModel", "run_boost_clean"]


class BoostCleanModel:
    """A weighted-vote ensemble over repair-action classifiers."""

    def __init__(self, classifiers: list[KNNClassifier], weights: list[float], n_labels: int) -> None:
        if len(classifiers) != len(weights) or not classifiers:
            raise ValueError("classifiers and weights must be non-empty and equally long")
        self.classifiers = classifiers
        self.weights = weights
        self.n_labels = n_labels

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = check_matrix(X, "X")
        votes = np.zeros((X.shape[0], self.n_labels))
        for clf, weight in zip(self.classifiers, self.weights):
            predictions = clf.predict(X)
            votes[np.arange(X.shape[0]), predictions] += weight
        return np.argmax(votes, axis=1)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        predictions = self.predict(X)
        y = np.asarray(y, dtype=np.int64)
        return float(np.mean(predictions == y))


def run_boost_clean(task: CleaningTask, n_rounds: int = 1) -> BoostCleanModel:
    """Select/boost repair actions on the validation set.

    Returns the fitted :class:`BoostCleanModel`; with ``n_rounds=1`` the
    model contains the single best action's classifier.
    """
    n_rounds = check_positive_int(n_rounds, "n_rounds")
    space = task.repair_space
    n_labels = int(task.train_labels.max()) + 1

    action_classifiers: list[KNNClassifier] = []
    for action in range(space.n_actions):
        cleaned = space.apply_global_action(action)
        X = task.encoder.encode_table(cleaned)
        action_classifiers.append(KNNClassifier(k=task.k).fit(X, task.train_labels))

    val_predictions = [clf.predict(task.val_X) for clf in action_classifiers]
    val_y = task.val_y

    if n_rounds == 1:
        accuracies = [float(np.mean(p == val_y)) for p in val_predictions]
        best = int(np.argmax(accuracies))
        return BoostCleanModel([action_classifiers[best]], [1.0], n_labels)

    # AdaBoost.M1 over the fixed pool of action classifiers.
    n_val = val_y.shape[0]
    sample_weights = np.full(n_val, 1.0 / n_val)
    chosen: list[KNNClassifier] = []
    alphas: list[float] = []
    for _ in range(n_rounds):
        errors = [
            float(np.sum(sample_weights * (p != val_y))) for p in val_predictions
        ]
        best = int(np.argmin(errors))
        error = min(max(errors[best], 1e-10), 1.0 - 1e-10)
        if error >= 0.5 and chosen:
            break  # no action beats weighted chance; stop boosting
        alpha = 0.5 * math.log((1.0 - error) / error)
        chosen.append(action_classifiers[best])
        alphas.append(alpha)
        mistakes = val_predictions[best] != val_y
        sample_weights = sample_weights * np.exp(np.where(mistakes, alpha, -alpha))
        sample_weights /= sample_weights.sum()
    if not chosen:  # degenerate: fall back to the best single action
        accuracies = [float(np.mean(p == val_y)) for p in val_predictions]
        best = int(np.argmax(accuracies))
        return BoostCleanModel([action_classifiers[best]], [1.0], n_labels)
    return BoostCleanModel(chosen, alphas, n_labels)
