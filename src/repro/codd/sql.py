"""A miniature SQL front door for the Codd-table machinery.

The paper presents its Figure-1 example as SQL (``SELECT * FROM Person
WHERE age < 30``); this module parses exactly that fragment into the
relational-algebra AST of :mod:`repro.codd.algebra`, so examples, the CLI
and tests can write the query the way the paper does:

    >>> parse_sql("SELECT name FROM person WHERE age < 30")
    Project(child=Select(child=Scan(relation='person'), ...), attributes=('name',))

Supported grammar (case-insensitive keywords)::

    query      := SELECT columns FROM identifier [WHERE predicate]
    columns    := '*' | identifier (',' identifier)*
    predicate  := disjunct (OR disjunct)*
    disjunct   := conjunct (AND conjunct)*
    conjunct   := NOT conjunct | '(' predicate ')' | comparison
    comparison := term op term,   op ∈ {=, ==, !=, <>, <, <=, >, >=}
    term       := identifier | number | 'string' | "string"

This is intentionally a fragment — single table, no aggregation, no nested
queries — matching the select-project class for which certain answers are
tractable over Codd tables.
"""

from __future__ import annotations

import re

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Predicate,
    Project,
    Query,
    Scan,
    Select,
)

__all__ = ["parse_sql", "SqlError"]


class SqlError(ValueError):
    """Raised on any lexical or syntactic problem in the SQL text."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<op><>|<=|>=|!=|==|=|<|>)
      | (?P<punct>[(),*])
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "or", "not"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SqlError(f"cannot tokenise SQL at: {remainder[:25]!r}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(("keyword", value.lower()))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> str:
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            want = value if value is not None else kind
            raise SqlError(f"expected {want!r}, got {token[1]!r}")
        return token[1]

    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        self._expect("keyword", "select")
        columns = self._parse_columns()
        self._expect("keyword", "from")
        table = self._expect("ident")
        predicate: Predicate | None = None
        token = self._peek()
        if token == ("keyword", "where"):
            self._next()
            predicate = self._parse_predicate()
        if self._peek() is not None:
            raise SqlError(f"trailing tokens after query: {self._peek()[1]!r}")

        query: Query = Scan(table)
        if predicate is not None:
            query = Select(query, predicate)
        if columns is not None:
            query = Project(query, columns)
        return query

    def _parse_columns(self) -> tuple[str, ...] | None:
        token = self._peek()
        if token == ("punct", "*"):
            self._next()
            return None
        columns = [self._expect("ident")]
        while self._peek() == ("punct", ","):
            self._next()
            columns.append(self._expect("ident"))
        return tuple(columns)

    # ------------------------------------------------------------------
    def _parse_predicate(self) -> Predicate:
        parts = [self._parse_disjunct()]
        while self._peek() == ("keyword", "or"):
            self._next()
            parts.append(self._parse_disjunct())
        return parts[0] if len(parts) == 1 else Disjunction(*parts)

    def _parse_disjunct(self) -> Predicate:
        parts = [self._parse_conjunct()]
        while self._peek() == ("keyword", "and"):
            self._next()
            parts.append(self._parse_conjunct())
        return parts[0] if len(parts) == 1 else Conjunction(*parts)

    def _parse_conjunct(self) -> Predicate:
        token = self._peek()
        if token == ("keyword", "not"):
            self._next()
            return Negation(self._parse_conjunct())
        if token == ("punct", "("):
            self._next()
            inner = self._parse_predicate()
            self._expect("punct", ")")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        kind, op = self._next()
        if kind != "op":
            raise SqlError(f"expected a comparison operator, got {op!r}")
        op = {"=": "==", "<>": "!="}.get(op, op)
        right = self._parse_term()
        return Comparison(left, op, right)

    def _parse_term(self) -> Attribute | Literal:
        kind, value = self._next()
        if kind == "ident":
            return Attribute(value)
        if kind == "number":
            number = float(value)
            return Literal(int(number) if number.is_integer() else number)
        if kind == "string":
            return Literal(value[1:-1])
        raise SqlError(f"expected a column, number or string, got {value!r}")


def parse_sql(text: str) -> Query:
    """Parse a ``SELECT ... FROM ... [WHERE ...]`` string into the algebra AST.

    Raises :class:`SqlError` on anything outside the supported fragment.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise SqlError("empty query")
    return _Parser(tokens).parse_query()
