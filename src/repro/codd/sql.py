"""A miniature SQL front door for the Codd-table machinery.

The paper presents its Figure-1 example as SQL (``SELECT * FROM Person
WHERE age < 30``); this module parses that fragment — now grown to
two-or-more-table joins and SUMMARIZE-style aggregation — into the
relational-algebra AST of :mod:`repro.codd.algebra`, so examples, the CLI
and the ``/sql`` service can write queries the way the paper does:

    >>> parse_sql("SELECT name FROM person WHERE age < 30")
    Project(child=Select(child=Scan(relation='person'), ...), attributes=('name',))

Supported grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM table_ref join* [WHERE predicate]
                  [GROUP BY column (',' column)*]
    table_ref  := identifier [[AS] identifier]
    join       := JOIN table_ref ON predicate
    select_list:= '*' | select_item (',' select_item)*
    select_item:= column | agg '(' ('*' | column) ')' [AS identifier]
    agg        := COUNT | SUM | MIN | MAX          (contextual, before '(')
    column     := identifier ['.' identifier]
    predicate  := disjunct (OR disjunct)*
    disjunct   := conjunct (AND conjunct)*
    conjunct   := NOT conjunct | '(' predicate ')' | comparison
    comparison := term op term,   op ∈ {=, ==, !=, <>, <, <=, >, >=}
    term       := column | number | 'string' | "string"

String literals escape an embedded quote by doubling it (``'it''s'``).
Parse errors carry the character offset and nearby source text.

**Single-table queries** (no join, no alias, no dots) parse to exactly the
AST they always did — ``π?(σ?(Scan))`` over bare column names.

**Multi-table queries** name every table with an alias (defaulting to the
table name) and require every column reference to be ``alias.column``.
Each source lowers to a full ``Rename`` over its ``Scan`` mapping every
schema column to its qualified name — which requires knowing the schemas,
so ``parse_sql(text, schemas=...)`` takes a ``{table: columns}`` mapping
and :func:`referenced_tables` lets a caller discover, pre-parse, which
schemas to fetch.  Qualification makes the sources' attribute sets
disjoint, so the algebra's natural ``Join`` is exactly the SQL cross join
and ``ON`` / ``WHERE`` become ordinary ``Select`` predicates.

**Aggregation** lowers to an :class:`~repro.codd.algebra.Aggregate` node
(``GROUP BY`` keys plus one :class:`~repro.codd.algebra.AggregateSpec` per
aggregate item), wrapped in a final ``Project`` when the select list's
order or width differs from the node's canonical ``keys + aliases``
schema.  Plain select-list columns must appear in ``GROUP BY``.
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence

from repro.codd.algebra import (
    AGGREGATE_FUNCS,
    Aggregate,
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Join,
    Literal,
    Negation,
    Predicate,
    Project,
    Query,
    Rename,
    Scan,
    Select,
)

__all__ = ["parse_sql", "referenced_tables", "SqlError"]


class SqlError(ValueError):
    """Raised on any lexical or syntactic problem in the SQL text.

    ``offset`` is the character position the error points at (``None``
    when no position applies); the message embeds it plus nearby source.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        super().__init__(message)
        self.offset = offset


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
      | (?P<op><>|<=|>=|!=|==|=|<|>)
      | (?P<punct>[(),*.])
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "join",
    "on",
    "as",
    "group",
    "by",
}


def _positioned(text: str, offset: int) -> str:
    """``" at offset N near '...'"`` — the error-location suffix."""
    start = max(0, offset - 20)
    end = min(len(text), offset + 20)
    snippet = text[start:end]
    if offset >= len(text.rstrip()):
        return f" at offset {offset} (end of query)"
    return f" at offset {offset} near {snippet!r}"


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    """``(kind, value, offset)`` triples; keywords are lower-cased."""
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            offset = pos + (len(text[pos:]) - len(text[pos:].lstrip()))
            raise SqlError(
                f"cannot tokenise SQL at: {remainder[:25]!r}"
                + _positioned(text, offset),
                offset=offset,
            )
        kind = match.lastgroup
        value = match.group(kind)
        offset = match.start(kind)
        pos = match.end()
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(("keyword", value.lower(), offset))
        else:
            tokens.append((kind, value, offset))
    return tokens


def _unescape_string(raw: str) -> str:
    quote = raw[0]
    return raw[1:-1].replace(quote + quote, quote)


def referenced_tables(text: str) -> list[str]:
    """The table names a query reads, sorted and deduplicated.

    A cheap pre-parse scan (``FROM``/``JOIN`` targets only) so a caller
    holding the catalog — the service broker, the CLI — can look up the
    schemas :func:`parse_sql` needs for a multi-table query before running
    the full parse.  Raises :class:`SqlError` only on lexical problems.
    """
    tokens = _tokenize(text)
    names: set[str] = set()
    for i, (kind, value, _) in enumerate(tokens):
        if kind == "keyword" and value in ("from", "join"):
            if i + 1 < len(tokens) and tokens[i + 1][0] == "ident":
                names.add(tokens[i + 1][1])
    return sorted(names)


class _Parser:
    def __init__(
        self,
        text: str,
        tokens: list[tuple[str, str, int]],
        schemas: Mapping[str, Sequence[str]] | None,
    ) -> None:
        self._text = text
        self._tokens = tokens
        self._schemas = schemas
        self._pos = 0
        self._saw_qualified = False

    # ------------------------------------------------------------------
    def _peek(self) -> tuple[str, str] | None:
        if self._pos < len(self._tokens):
            kind, value, _ = self._tokens[self._pos]
            return (kind, value)
        return None

    def _offset(self) -> int:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos][2]
        return len(self._text)

    def _fail(self, message: str, offset: int | None = None) -> SqlError:
        at = self._offset() if offset is None else offset
        return SqlError(message + _positioned(self._text, at), offset=at)

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise self._fail("unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> str:
        offset = self._offset()
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            want = value if value is not None else kind
            raise self._fail(
                f"expected {want!r}, got {token[1]!r}", offset=offset
            )
        return token[1]

    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        self._expect("keyword", "select")
        select_items = self._parse_select_list()
        self._expect("keyword", "from")
        tables = [self._parse_table_ref()]
        joins: list[tuple[tuple[str, str | None, int], Predicate]] = []
        while self._peek() == ("keyword", "join"):
            self._next()
            ref = self._parse_table_ref()
            self._expect("keyword", "on")
            joins.append((ref, self._parse_predicate()))
        predicate: Predicate | None = None
        if self._peek() == ("keyword", "where"):
            self._next()
            predicate = self._parse_predicate()
        group_by: list[str] = []
        grouped = False
        if self._peek() == ("keyword", "group"):
            self._next()
            self._expect("keyword", "by")
            grouped = True
            group_by.append(self._parse_column_name())
            while self._peek() == ("punct", ","):
                self._next()
                group_by.append(self._parse_column_name())
        if self._peek() is not None:
            raise self._fail(
                f"trailing tokens after query: {self._peek()[1]!r}"
            )

        qualified = bool(joins) or any(alias is not None for _, alias, _ in tables)
        qualified = qualified or self._saw_qualified
        if qualified:
            source = self._build_qualified_sources(tables, joins)
        else:
            source = Scan(tables[0][0])
        query: Query = source
        if predicate is not None:
            query = Select(query, predicate)
        return self._apply_select_list(query, select_items, group_by, grouped)

    def _parse_table_ref(self) -> tuple[str, str | None, int]:
        offset = self._offset()
        table = self._expect("ident")
        alias: str | None = None
        if self._peek() == ("keyword", "as"):
            self._next()
            alias = self._expect("ident")
        elif self._peek() is not None and self._peek()[0] == "ident":
            alias = self._next()[1]
        return (table, alias, offset)

    def _build_qualified_sources(
        self,
        tables: list[tuple[str, str | None, int]],
        joins: list[tuple[tuple[str, str | None, int], Predicate]],
    ) -> Query:
        refs = tables + [ref for ref, _ in joins]
        seen_aliases: set[str] = set()
        for table, alias, offset in refs:
            name = alias or table
            if name in seen_aliases:
                raise self._fail(
                    f"duplicate table alias {name!r}", offset=offset
                )
            seen_aliases.add(name)

        def lower(ref: tuple[str, str | None, int]) -> Query:
            table, alias, offset = ref
            alias = alias or table
            if self._schemas is None:
                raise self._fail(
                    "multi-table queries need table schemas: call "
                    "parse_sql(text, schemas={table: columns}); "
                    "referenced_tables(text) lists the tables to look up",
                    offset=offset,
                )
            columns = self._schemas.get(table)
            if columns is None:
                raise self._fail(f"unknown table {table!r}", offset=offset)
            return Rename(
                Scan(table), {col: f"{alias}.{col}" for col in columns}
            )

        query = lower(tables[0])
        for ref, on in joins:
            query = Select(Join(query, lower(ref)), on)
        return query

    # ------------------------------------------------------------------
    # Select list / aggregation
    # ------------------------------------------------------------------
    def _parse_column_name(self) -> str:
        name = self._expect("ident")
        if self._peek() == ("punct", "."):
            self._next()
            self._saw_qualified = True
            name = f"{name}.{self._expect('ident')}"
        return name

    def _parse_select_list(self):
        if self._peek() == ("punct", "*"):
            self._next()
            return None
        items: list[tuple[str, ...]] = []
        while True:
            items.append(self._parse_select_item())
            if self._peek() == ("punct", ","):
                self._next()
                continue
            return items

    def _parse_select_item(self) -> tuple[str, ...]:
        token = self._peek()
        if (
            token is not None
            and token[0] == "ident"
            and token[1].lower() in AGGREGATE_FUNCS
            and self._pos + 1 < len(self._tokens)
            and self._tokens[self._pos + 1][:2] == ("punct", "(")
        ):
            func = self._next()[1].lower()
            self._expect("punct", "(")
            attribute: str | None = None
            if self._peek() == ("punct", "*"):
                if func != "count":
                    raise self._fail(f"{func.upper()}(*) is not supported")
                self._next()
            else:
                attribute = self._parse_column_name()
            self._expect("punct", ")")
            alias = f"{func}({attribute if attribute is not None else '*'})"
            if self._peek() == ("keyword", "as"):
                self._next()
                alias = self._expect("ident")
            return ("agg", func, attribute, alias)
        return ("col", self._parse_column_name())

    def _apply_select_list(
        self,
        query: Query,
        select_items,
        group_by: list[str],
        grouped: bool,
    ) -> Query:
        has_aggregate = select_items is not None and any(
            item[0] == "agg" for item in select_items
        )
        if not grouped and not has_aggregate:
            if select_items is None:
                return query
            return Project(query, tuple(item[1] for item in select_items))
        if select_items is None:
            raise self._fail("aggregate queries cannot SELECT *")
        if not has_aggregate:
            raise self._fail(
                "GROUP BY needs at least one aggregate in the select list"
            )
        keys = tuple(group_by)
        specs = []
        names: list[str] = []
        for item in select_items:
            if item[0] == "col":
                if item[1] not in keys:
                    raise self._fail(
                        f"column {item[1]!r} must appear in GROUP BY to be "
                        "selected alongside aggregates"
                    )
                names.append(item[1])
            else:
                _, func, attribute, alias = item
                specs.append(AggregateSpec(func, attribute, alias))
                names.append(alias)
        query = Aggregate(query, keys, tuple(specs))
        canonical = keys + tuple(spec.alias for spec in specs)
        if tuple(names) != canonical:
            return Project(query, tuple(names))
        return query

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _parse_predicate(self) -> Predicate:
        parts = [self._parse_disjunct()]
        while self._peek() == ("keyword", "or"):
            self._next()
            parts.append(self._parse_disjunct())
        return parts[0] if len(parts) == 1 else Disjunction(*parts)

    def _parse_disjunct(self) -> Predicate:
        parts = [self._parse_conjunct()]
        while self._peek() == ("keyword", "and"):
            self._next()
            parts.append(self._parse_conjunct())
        return parts[0] if len(parts) == 1 else Conjunction(*parts)

    def _parse_conjunct(self) -> Predicate:
        token = self._peek()
        if token == ("keyword", "not"):
            self._next()
            return Negation(self._parse_conjunct())
        if token == ("punct", "("):
            self._next()
            inner = self._parse_predicate()
            self._expect("punct", ")")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        offset = self._offset()
        kind, op = self._next()
        if kind != "op":
            raise self._fail(
                f"expected a comparison operator, got {op!r}", offset=offset
            )
        op = {"=": "==", "<>": "!="}.get(op, op)
        right = self._parse_term()
        return Comparison(left, op, right)

    def _parse_term(self) -> Attribute | Literal:
        offset = self._offset()
        kind, value = self._next()
        if kind == "ident":
            if self._peek() == ("punct", "."):
                self._next()
                self._saw_qualified = True
                value = f"{value}.{self._expect('ident')}"
            return Attribute(value)
        if kind == "number":
            number = float(value)
            return Literal(int(number) if number.is_integer() else number)
        if kind == "string":
            return Literal(_unescape_string(value))
        raise self._fail(
            f"expected a column, number or string, got {value!r}", offset=offset
        )


def parse_sql(
    text: str, schemas: Mapping[str, Sequence[str]] | None = None
) -> Query:
    """Parse SQL into the algebra AST; :class:`SqlError` outside the fragment.

    ``schemas`` (``{table: columns}``) is only consulted for multi-table
    queries, whose sources must be fully qualified — see the module
    docstring.  Single-table queries parse identically with or without it.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise SqlError("empty query", offset=0)
    return _Parser(text, tokens, schemas).parse_query()
