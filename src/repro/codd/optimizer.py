"""A rule-based rewriter over :mod:`repro.codd.plan` trees.

Every rule is a *classical* set-semantics equivalence — it preserves the
query's value in each individual possible world — so by the definition of
certain/possible answers (intersection/union over worlds) every rewrite
preserves both.  The fuzz harness certifies this: optimized and
unoptimized plans are required to produce bit-identical answers across
all backends on 30 seeded schemas.

Logical rules (applied bottom-up, to a fixpoint):

``merge-selects``
    collapse stacked selections into one conjunction.
``push-select-below-project`` / ``...-rename``
    move filters through projections and renamings (predicates rewritten
    through the inverse renaming).
``push-select-below-join``
    split a conjunction and send each conjunct to the join side(s) whose
    schema covers it; conjuncts over shared attributes go to *both* sides.
``push-select-below-union`` / ``...-difference``
    distribute the filter over both branches (valid for difference too:
    ``σ(L−R) = σ(L)−σ(R)`` in every world).
``push-select-below-aggregate``
    conjuncts over group-by keys select whole groups, so they commute
    below the aggregation.
``merge-projects`` / ``drop-identity-project`` / ``push-project-below-join``
  / ``push-project-below-union``
    projection closure: compose, drop no-ops, and narrow join/union inputs
    to the attributes actually needed (join keys included).
``compose-renames`` / ``drop-identity-rename`` / ``push-rename-below-union``
  / ``push-rename-below-difference``
    rename closure and distribution.

The physical stage, :func:`prune_rewrite`, is the PR-5 ``prune_database``
pass recast as an optimizer rewrite: it shrinks the world product (rows
whose local completions all fail their scan chains, tables the query never
scans) and reports what it did alongside the logical rewrites, so
``explain`` shows the whole pipeline.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Predicate,
    Query,
    predicate_attributes,
)
from repro.codd.plan import (
    AggregateNode,
    DifferenceNode,
    JoinNode,
    LogicalPlan,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SelectNode,
    UnionNode,
    aggregate_node,
    difference_node,
    join_node,
    project_node,
    rename_node,
    select_node,
    to_query,
    union_node,
)

__all__ = [
    "OptimizedPlan",
    "optimize",
    "optimize_query",
    "prune_rewrite",
    "MAX_OPTIMIZER_PASSES",
]

#: Safety valve: the rule set is confluent and terminating in practice, but
#: the driver still refuses to loop forever on a pathological plan.
MAX_OPTIMIZER_PASSES = 32


@dataclass(frozen=True)
class OptimizedPlan:
    """The result of :func:`optimize`: the rewritten plan plus a trace."""

    plan: LogicalPlan
    rewrites: tuple[str, ...]

    @property
    def root(self) -> PlanNode:
        return self.plan.root

    def query(self) -> Query:
        return to_query(self.plan.root)


# ----------------------------------------------------------------------
# Predicate helpers
# ----------------------------------------------------------------------
def _conjuncts(pred: Predicate) -> list[Predicate]:
    if isinstance(pred, Conjunction):
        out: list[Predicate] = []
        for part in pred.parts:
            out.extend(_conjuncts(part))
        return out
    return [pred]


def _conjoin(parts: list[Predicate]) -> Predicate:
    return parts[0] if len(parts) == 1 else Conjunction(*parts)


def _rename_predicate(pred: Predicate, mapping: Mapping[str, str]) -> Predicate:
    """Rewrite every attribute reference through ``mapping`` (missing kept)."""
    if isinstance(pred, Comparison):
        def term(t: Attribute | Literal) -> Attribute | Literal:
            if isinstance(t, Attribute):
                return Attribute(mapping.get(t.name, t.name))
            return t
        return Comparison(term(pred.left), pred.op, term(pred.right))
    if isinstance(pred, Conjunction):
        return Conjunction(*(_rename_predicate(p, mapping) for p in pred.parts))
    if isinstance(pred, Disjunction):
        return Disjunction(*(_rename_predicate(p, mapping) for p in pred.parts))
    if isinstance(pred, Negation):
        return Negation(_rename_predicate(pred.part, mapping))
    raise TypeError(f"not a predicate: {pred!r}")


# ----------------------------------------------------------------------
# Rules.  Each takes a node and returns a replacement or None.
# ----------------------------------------------------------------------
def _merge_selects(node: PlanNode) -> PlanNode | None:
    if isinstance(node, SelectNode) and isinstance(node.child, SelectNode):
        merged = _conjoin(_conjuncts(node.predicate) + _conjuncts(node.child.predicate))
        return select_node(node.child.child, merged)
    return None


def _push_select_below_project(node: PlanNode) -> PlanNode | None:
    if isinstance(node, SelectNode) and isinstance(node.child, ProjectNode):
        inner = node.child
        if predicate_attributes(node.predicate) <= set(inner.attributes):
            return project_node(select_node(inner.child, node.predicate), inner.attributes)
    return None


def _push_select_below_rename(node: PlanNode) -> PlanNode | None:
    if isinstance(node, SelectNode) and isinstance(node.child, RenameNode):
        inner = node.child
        if isinstance(inner.child, ScanNode):
            # σ(ρ(Scan)) is already the canonical tractable shape the
            # vectorized/rowwise single-scan paths recognise; flipping it
            # to ρ(σ(Scan)) would push those queries off the fast path.
            return None
        inverse = {new: old for old, new in inner.mapping}
        rewritten = _rename_predicate(node.predicate, inverse)
        return rename_node(select_node(inner.child, rewritten), dict(inner.mapping))
    return None


def _push_select_below_join(node: PlanNode) -> PlanNode | None:
    if not (isinstance(node, SelectNode) and isinstance(node.child, JoinNode)):
        return None
    join = node.child
    left_schema, right_schema = set(join.left.schema), set(join.right.schema)
    left_parts: list[Predicate] = []
    right_parts: list[Predicate] = []
    keep: list[Predicate] = []
    for part in _conjuncts(node.predicate):
        attrs = predicate_attributes(part)
        pushed = False
        if attrs <= left_schema:
            left_parts.append(part)
            pushed = True
        if attrs <= right_schema:
            right_parts.append(part)
            pushed = True
        if not pushed:
            keep.append(part)
    if not left_parts and not right_parts:
        return None
    left = select_node(join.left, _conjoin(left_parts)) if left_parts else join.left
    right = select_node(join.right, _conjoin(right_parts)) if right_parts else join.right
    out: PlanNode = join_node(left, right)
    if keep:
        out = select_node(out, _conjoin(keep))
    return out


def _push_select_below_union(node: PlanNode) -> PlanNode | None:
    if isinstance(node, SelectNode) and isinstance(node.child, UnionNode):
        inner = node.child
        return union_node(
            select_node(inner.left, node.predicate),
            select_node(inner.right, node.predicate),
        )
    return None


def _push_select_below_difference(node: PlanNode) -> PlanNode | None:
    if isinstance(node, SelectNode) and isinstance(node.child, DifferenceNode):
        inner = node.child
        return difference_node(
            select_node(inner.left, node.predicate),
            select_node(inner.right, node.predicate),
        )
    return None


def _push_select_below_aggregate(node: PlanNode) -> PlanNode | None:
    if not (isinstance(node, SelectNode) and isinstance(node.child, AggregateNode)):
        return None
    agg = node.child
    keys = set(agg.group_by)
    pushable = [p for p in _conjuncts(node.predicate) if predicate_attributes(p) <= keys]
    if not pushable:
        return None
    keep = [p for p in _conjuncts(node.predicate) if not predicate_attributes(p) <= keys]
    out: PlanNode = aggregate_node(
        select_node(agg.child, _conjoin(pushable)), agg.group_by, agg.aggregates
    )
    if keep:
        out = select_node(out, _conjoin(keep))
    return out


def _merge_projects(node: PlanNode) -> PlanNode | None:
    if isinstance(node, ProjectNode) and isinstance(node.child, ProjectNode):
        return project_node(node.child.child, node.attributes)
    return None


def _drop_identity_project(node: PlanNode) -> PlanNode | None:
    if isinstance(node, ProjectNode) and node.attributes == node.child.schema:
        return node.child
    return None


def _push_project_below_join(node: PlanNode) -> PlanNode | None:
    if not (isinstance(node, ProjectNode) and isinstance(node.child, JoinNode)):
        return None
    join = node.child
    shared = {a for a in join.left.schema if a in join.right.schema}
    needed = set(node.attributes) | shared
    left_keep = tuple(a for a in join.left.schema if a in needed)
    right_keep = tuple(a for a in join.right.schema if a in needed)
    if left_keep == join.left.schema and right_keep == join.right.schema:
        return None
    left = join.left if left_keep == join.left.schema else project_node(join.left, left_keep)
    right = (
        join.right if right_keep == join.right.schema else project_node(join.right, right_keep)
    )
    return project_node(join_node(left, right), node.attributes)


def _push_project_below_union(node: PlanNode) -> PlanNode | None:
    if isinstance(node, ProjectNode) and isinstance(node.child, UnionNode):
        inner = node.child
        return union_node(
            project_node(inner.left, node.attributes),
            project_node(inner.right, node.attributes),
        )
    return None


def _compose_renames(node: PlanNode) -> PlanNode | None:
    if isinstance(node, RenameNode) and isinstance(node.child, RenameNode):
        inner = node.child
        outer = dict(node.mapping)
        composed: dict[str, str] = {}
        for name in inner.child.schema:
            mid = dict(inner.mapping).get(name, name)
            final = outer.get(mid, mid)
            if final != name:
                composed[name] = final
        return rename_node(inner.child, composed)
    return None


def _drop_identity_rename(node: PlanNode) -> PlanNode | None:
    if isinstance(node, RenameNode) and node.schema == node.child.schema:
        return node.child
    return None


def _push_rename_below_union(node: PlanNode) -> PlanNode | None:
    if isinstance(node, RenameNode) and isinstance(node.child, UnionNode):
        inner = node.child
        mapping = dict(node.mapping)
        return union_node(
            rename_node(inner.left, mapping), rename_node(inner.right, mapping)
        )
    return None


def _push_rename_below_difference(node: PlanNode) -> PlanNode | None:
    if isinstance(node, RenameNode) and isinstance(node.child, DifferenceNode):
        inner = node.child
        mapping = dict(node.mapping)
        return difference_node(
            rename_node(inner.left, mapping), rename_node(inner.right, mapping)
        )
    return None


_RULES: tuple[tuple[str, Callable[[PlanNode], PlanNode | None]], ...] = (
    ("merge-selects", _merge_selects),
    ("push-select-below-project", _push_select_below_project),
    ("push-select-below-rename", _push_select_below_rename),
    ("push-select-below-join", _push_select_below_join),
    ("push-select-below-union", _push_select_below_union),
    ("push-select-below-difference", _push_select_below_difference),
    ("push-select-below-aggregate", _push_select_below_aggregate),
    ("merge-projects", _merge_projects),
    ("drop-identity-project", _drop_identity_project),
    ("push-project-below-join", _push_project_below_join),
    ("push-project-below-union", _push_project_below_union),
    ("compose-renames", _compose_renames),
    ("drop-identity-rename", _drop_identity_rename),
    ("push-rename-below-union", _push_rename_below_union),
    ("push-rename-below-difference", _push_rename_below_difference),
)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _rebuild(node: PlanNode, applied: list[str]) -> PlanNode:
    """One bottom-up pass: rewrite children, then try rules at this node."""
    if isinstance(node, SelectNode):
        node = select_node(_rebuild(node.child, applied), node.predicate)
    elif isinstance(node, ProjectNode):
        node = project_node(_rebuild(node.child, applied), node.attributes)
    elif isinstance(node, RenameNode):
        node = rename_node(_rebuild(node.child, applied), dict(node.mapping))
    elif isinstance(node, AggregateNode):
        node = aggregate_node(_rebuild(node.child, applied), node.group_by, node.aggregates)
    elif isinstance(node, JoinNode):
        node = join_node(_rebuild(node.left, applied), _rebuild(node.right, applied))
    elif isinstance(node, UnionNode):
        node = union_node(_rebuild(node.left, applied), _rebuild(node.right, applied))
    elif isinstance(node, DifferenceNode):
        node = difference_node(_rebuild(node.left, applied), _rebuild(node.right, applied))
    for name, rule in _RULES:
        replacement = rule(node)
        if replacement is not None and replacement != node:
            applied.append(name)
            return replacement
    return node


def optimize(plan: LogicalPlan) -> OptimizedPlan:
    """Run the logical rule set to a fixpoint and record every application."""
    root = plan.root
    rewrites: list[str] = []
    for _ in range(MAX_OPTIMIZER_PASSES):
        applied: list[str] = []
        root = _rebuild(root, applied)
        if not applied:
            break
        rewrites.extend(applied)
    return OptimizedPlan(plan.with_root(root), tuple(rewrites))


def optimize_query(
    query: Query, database: Mapping[str, Any]
) -> OptimizedPlan:
    """Lower ``query`` against ``database``'s schemas and optimize it."""
    plan = LogicalPlan.from_query(query, LogicalPlan.catalog_of(database))
    return optimize(plan)


# ----------------------------------------------------------------------
# Physical stage: world-product pruning as a rewrite
# ----------------------------------------------------------------------
def prune_rewrite(
    query: Query, database: Mapping[str, Any]
) -> tuple[dict[str, Any], tuple[str, ...]]:
    """Apply the ``prune_database`` pass and describe it like a rule firing.

    Returns the (possibly) shrunk database plus one trace record per table
    whose world product actually changed, e.g.
    ``prune-database[orders: 12/40 rows, 3 -> 1 nulls]``.
    """
    from repro.codd.certain import prune_database

    pruned = prune_database(query, database)
    records = []
    for name in sorted(database):
        before, after = database[name], pruned[name]
        n_before = len(before.variables)
        n_after = len(after.variables)
        if len(after.rows) != len(before.rows) or n_after != n_before:
            records.append(
                f"prune-database[{name}: {len(after.rows)}/{len(before.rows)} rows, "
                f"{n_before} -> {n_after} nulls]"
            )
    return pruned, tuple(records)
