"""Conditional tables (c-tables): a strong representation system.

Codd tables are a *weak* representation system: the answer of a query over a
Codd table is in general not itself a Codd table. Conditional tables fix
this (Imieliński & Lipski): cells may hold shared variables, and each row
carries a *local condition* — a boolean formula over the variables — that
states when the row exists. This module implements

* the variable / condition language (:class:`CVar`, :class:`CTrue`,
  :class:`CComparison`, :class:`CAnd`, :class:`COr`, :class:`CNot`);
* :class:`CTable` with possible-world semantics over finite variable
  domains;
* :func:`evaluate_ctable` — select, project, rename, union, join **and
  difference** over c-tables, returning c-tables (closure under the full
  relational algebra);
* certain-answer extraction: :func:`ctable_certain_rows` (the syntactic
  fast path: constant rows with valid conditions) and
  :func:`ctable_certain_answers` (the complete semantics by valuation
  enumeration).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Difference,
    Disjunction,
    Join,
    Literal,
    Negation,
    Predicate,
    Project,
    Query,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.codd.relation import Relation, _check_schema

__all__ = [
    "CVar",
    "Condition",
    "CTrue",
    "CComparison",
    "CAnd",
    "COr",
    "CNot",
    "ConditionalRow",
    "CTable",
    "evaluate_ctable",
    "ctable_certain_rows",
    "ctable_certain_answers",
    "ctable_possible_answers",
]

#: Refuse valuation enumeration beyond this many assignments.
MAX_VALUATIONS = 1_000_000


# ----------------------------------------------------------------------
# Variables and conditions
# ----------------------------------------------------------------------
class CVar:
    """A named variable shared across cells and conditions, over a finite domain."""

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Sequence[Any]) -> None:
        if not name:
            raise ValueError("variable names must be non-empty")
        values = tuple(dict.fromkeys(domain))
        if not values:
            raise ValueError(f"variable {name!r} needs a non-empty domain")
        self.name = name
        self.domain = values

    def __repr__(self) -> str:
        return f"CVar({self.name!r})"


def _resolve(term: Any, valuation: Mapping[str, Any]) -> Any:
    if isinstance(term, CVar):
        return valuation[term.name]
    return term


_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class CTrue:
    """The always-true condition."""

    def holds(self, valuation: Mapping[str, Any]) -> bool:
        return True


@dataclass(frozen=True)
class CComparison:
    """``left op right`` where terms are constants or :class:`CVar`."""

    left: Any
    op: str
    right: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def holds(self, valuation: Mapping[str, Any]) -> bool:
        return bool(
            _COMPARATORS[self.op](_resolve(self.left, valuation), _resolve(self.right, valuation))
        )


@dataclass(frozen=True)
class CAnd:
    parts: tuple["Condition", ...]

    def __init__(self, *parts: "Condition") -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, valuation: Mapping[str, Any]) -> bool:
        return all(p.holds(valuation) for p in self.parts)


@dataclass(frozen=True)
class COr:
    parts: tuple["Condition", ...]

    def __init__(self, *parts: "Condition") -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, valuation: Mapping[str, Any]) -> bool:
        return any(p.holds(valuation) for p in self.parts)


@dataclass(frozen=True)
class CNot:
    part: "Condition"

    def holds(self, valuation: Mapping[str, Any]) -> bool:
        return not self.part.holds(valuation)


Condition = CTrue | CComparison | CAnd | COr | CNot


def _condition_vars(cond: Condition) -> dict[str, CVar]:
    if isinstance(cond, CTrue):
        return {}
    if isinstance(cond, CComparison):
        out = {}
        for term in (cond.left, cond.right):
            if isinstance(term, CVar):
                out[term.name] = term
        return out
    if isinstance(cond, (CAnd, COr)):
        out = {}
        for part in cond.parts:
            out.update(_condition_vars(part))
        return out
    if isinstance(cond, CNot):
        return _condition_vars(cond.part)
    raise TypeError(f"not a condition: {cond!r}")


# ----------------------------------------------------------------------
# Conditional rows and tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConditionalRow:
    """A row of cell terms plus the condition under which it exists."""

    cells: tuple[Any, ...]
    condition: Condition = CTrue()

    def __init__(self, cells: Sequence[Any], condition: Condition | None = None) -> None:
        object.__setattr__(self, "cells", tuple(cells))
        object.__setattr__(self, "condition", condition if condition is not None else CTrue())

    def instantiate(self, valuation: Mapping[str, Any]) -> tuple[Any, ...] | None:
        """The concrete tuple in this valuation, or None if the condition fails."""
        if not self.condition.holds(valuation):
            return None
        return tuple(_resolve(cell, valuation) for cell in self.cells)


class CTable:
    """A conditional table: schema, conditional rows, shared variables."""

    def __init__(self, schema: Sequence[str], rows: Sequence[ConditionalRow]) -> None:
        self._schema = _check_schema(schema)
        arity = len(self._schema)
        variables: dict[str, CVar] = {}
        checked: list[ConditionalRow] = []
        for i, row in enumerate(rows):
            if len(row.cells) != arity:
                raise ValueError(
                    f"row {i} has arity {len(row.cells)}, schema {self._schema} needs {arity}"
                )
            for cell in row.cells:
                if isinstance(cell, CVar):
                    self._register(variables, cell)
            for var in _condition_vars(row.condition).values():
                self._register(variables, var)
            checked.append(row)
        self._rows = tuple(checked)
        self._variables = dict(sorted(variables.items()))

    @staticmethod
    def _register(variables: dict[str, CVar], var: CVar) -> None:
        existing = variables.get(var.name)
        if existing is not None and existing is not var and existing.domain != var.domain:
            raise ValueError(
                f"variable {var.name!r} used with two different domains: "
                f"{existing.domain} and {var.domain}"
            )
        variables[var.name] = var

    # ------------------------------------------------------------------
    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    @property
    def rows(self) -> tuple[ConditionalRow, ...]:
        return self._rows

    @property
    def variables(self) -> dict[str, CVar]:
        """All variables by name (cells and conditions combined)."""
        return dict(self._variables)

    def n_valuations(self) -> int:
        """Number of variable assignments (product of domain sizes)."""
        out = 1
        for var in self._variables.values():
            out *= len(var.domain)
        return out

    def valuations(self) -> Iterator[dict[str, Any]]:
        """Iterate every assignment of all variables, deterministically."""
        names = list(self._variables)
        domains = [self._variables[n].domain for n in names]
        for combo in itertools.product(*domains):
            yield dict(zip(names, combo))

    def world(self, valuation: Mapping[str, Any]) -> Relation:
        """The complete relation this valuation induces."""
        rows = []
        for row in self._rows:
            tup = row.instantiate(valuation)
            if tup is not None:
                rows.append(tup)
        return Relation(self._schema, rows)

    def possible_worlds(self) -> Iterator[Relation]:
        """All worlds (one per valuation; distinct valuations may coincide)."""
        for valuation in self.valuations():
            yield self.world(valuation)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"CTable(schema={self._schema}, n_rows={len(self._rows)}, "
            f"n_variables={len(self._variables)})"
        )

    @classmethod
    def from_relation(cls, relation: Relation) -> "CTable":
        """Wrap a complete relation: every row exists unconditionally."""
        return cls(relation.schema, [ConditionalRow(row) for row in sorted(relation.rows, key=repr)])

    @classmethod
    def from_codd_table(cls, table) -> "CTable":
        """Lift a Codd table: every NULL becomes a fresh variable ``v{r}_{c}``.

        Codd tables are the special case of c-tables with unconditional rows
        and unshared variables; certain/possible answers agree between the
        two representations (tested).
        """
        from repro.codd.codd_table import CoddTable, Null

        if not isinstance(table, CoddTable):
            raise TypeError(f"expected a CoddTable, got {type(table).__name__}")
        rows = []
        for r, row in enumerate(table.rows):
            cells = [
                CVar(f"v{r}_{c}", cell.domain) if isinstance(cell, Null) else cell
                for c, cell in enumerate(row)
            ]
            rows.append(ConditionalRow(cells))
        return cls(table.schema, rows)


# ----------------------------------------------------------------------
# Lifting algebra predicates into conditions
# ----------------------------------------------------------------------
def _lift_term(term: Attribute | Literal, schema: Sequence[str], cells: Sequence[Any]) -> Any:
    if isinstance(term, Attribute):
        try:
            return cells[list(schema).index(term.name)]
        except ValueError:
            raise KeyError(f"attribute {term.name!r} not in schema {tuple(schema)}") from None
    return term.value


def _lift_predicate(pred: Predicate, schema: Sequence[str], cells: Sequence[Any]) -> Condition:
    """Turn a selection predicate into a condition over the row's cell terms."""
    if isinstance(pred, Comparison):
        left = _lift_term(pred.left, schema, cells)
        right = _lift_term(pred.right, schema, cells)
        if not isinstance(left, CVar) and not isinstance(right, CVar):
            # Constant comparison: fold now.
            return CTrue() if Comparison(Literal(left), pred.op, Literal(right)).holds((), ()) else CNot(CTrue())
        return CComparison(left, pred.op, right)
    if isinstance(pred, Conjunction):
        return CAnd(*(_lift_predicate(p, schema, cells) for p in pred.parts))
    if isinstance(pred, Disjunction):
        return COr(*(_lift_predicate(p, schema, cells) for p in pred.parts))
    if isinstance(pred, Negation):
        return CNot(_lift_predicate(pred.part, schema, cells))
    raise TypeError(f"not a predicate: {pred!r}")


def _cells_equal_condition(
    left_cells: Sequence[Any], right_cells: Sequence[Any]
) -> Condition:
    """The condition that two tuples of terms are component-wise equal."""
    parts: list[Condition] = []
    for a, b in zip(left_cells, right_cells):
        if not isinstance(a, CVar) and not isinstance(b, CVar):
            if a != b:
                return CNot(CTrue())
            continue
        parts.append(CComparison(a, "==", b))
    if not parts:
        return CTrue()
    return CAnd(*parts)


# ----------------------------------------------------------------------
# Algebra over c-tables (closure)
# ----------------------------------------------------------------------
def evaluate_ctable(query: Query, database: Mapping[str, CTable]) -> CTable:
    """Evaluate a relational-algebra query over c-tables, returning a c-table.

    The construction follows Imieliński & Lipski: selection conjoins the
    lifted predicate into each row's condition; projection drops cells;
    join pairs rows and conjoins cell-equality conditions on the shared
    attributes; union concatenates; difference keeps a left row with the
    condition that **no** right row both exists and equals it.
    """
    if isinstance(query, Scan):
        try:
            return database[query.relation]
        except KeyError:
            raise KeyError(
                f"relation {query.relation!r} not in database {sorted(database)}"
            ) from None
    if isinstance(query, Select):
        child = evaluate_ctable(query.child, database)
        rows = [
            ConditionalRow(
                row.cells,
                CAnd(row.condition, _lift_predicate(query.predicate, child.schema, row.cells)),
            )
            for row in child.rows
        ]
        return CTable(child.schema, rows)
    if isinstance(query, Project):
        child = evaluate_ctable(query.child, database)
        indices = [child.schema.index(a) for a in query.attributes]
        rows = [
            ConditionalRow(tuple(row.cells[i] for i in indices), row.condition)
            for row in child.rows
        ]
        return CTable(query.attributes, rows)
    if isinstance(query, Rename):
        child = evaluate_ctable(query.child, database)
        mapping = dict(query.mapping)
        return CTable(tuple(mapping.get(a, a) for a in child.schema), list(child.rows))
    if isinstance(query, Union):
        left = evaluate_ctable(query.left, database)
        right = evaluate_ctable(query.right, database)
        if left.schema != right.schema:
            raise ValueError(
                f"union needs identical schemas, got {left.schema} and {right.schema}"
            )
        return CTable(left.schema, list(left.rows) + list(right.rows))
    if isinstance(query, Join):
        left = evaluate_ctable(query.left, database)
        right = evaluate_ctable(query.right, database)
        shared = [a for a in left.schema if a in right.schema]
        li = [left.schema.index(a) for a in shared]
        ri = [right.schema.index(a) for a in shared]
        right_extra = [i for i, a in enumerate(right.schema) if a not in shared]
        out_schema = left.schema + tuple(right.schema[i] for i in right_extra)
        rows = []
        for lrow in left.rows:
            for rrow in right.rows:
                equal = _cells_equal_condition(
                    [lrow.cells[i] for i in li], [rrow.cells[i] for i in ri]
                )
                cells = lrow.cells + tuple(rrow.cells[i] for i in right_extra)
                rows.append(
                    ConditionalRow(cells, CAnd(lrow.condition, rrow.condition, equal))
                )
        return CTable(out_schema, rows)
    if isinstance(query, Difference):
        left = evaluate_ctable(query.left, database)
        right = evaluate_ctable(query.right, database)
        if left.schema != right.schema:
            raise ValueError(
                f"difference needs identical schemas, got {left.schema} and {right.schema}"
            )
        rows = []
        for lrow in left.rows:
            absent_parts: list[Condition] = [
                CNot(CAnd(rrow.condition, _cells_equal_condition(lrow.cells, rrow.cells)))
                for rrow in right.rows
            ]
            rows.append(ConditionalRow(lrow.cells, CAnd(lrow.condition, *absent_parts)))
        return CTable(left.schema, rows)
    raise TypeError(f"not a query: {query!r}")


# ----------------------------------------------------------------------
# Certain answers over c-tables
# ----------------------------------------------------------------------
def ctable_certain_rows(table: CTable) -> Relation:
    """The syntactic fast path: constant rows whose condition is valid.

    Sound but not complete — a tuple can be certain through different rows
    in different valuations; use :func:`ctable_certain_answers` for the full
    semantics. Validity is checked by enumerating the condition's own
    variables only.
    """
    out: set[tuple[Any, ...]] = set()
    for row in table.rows:
        if any(isinstance(cell, CVar) for cell in row.cells):
            continue
        own_vars = _condition_vars(row.condition)
        names = list(own_vars)
        domains = [own_vars[n].domain for n in names]
        if all(
            row.condition.holds(dict(zip(names, combo)))
            for combo in itertools.product(*domains)
        ):
            out.add(row.cells)
    return Relation(table.schema, out)


def _check_valuations(table: CTable) -> None:
    n = table.n_valuations()
    if n > MAX_VALUATIONS:
        raise ValueError(
            f"c-table has {n} valuations, above the enumeration cap {MAX_VALUATIONS}"
        )


def ctable_certain_answers(table: CTable) -> Relation:
    """Tuples present in the world of **every** valuation."""
    _check_valuations(table)
    result: frozenset[tuple[Any, ...]] | None = None
    for world in table.possible_worlds():
        result = world.rows if result is None else result & world.rows
        if not result:
            break
    assert result is not None
    return Relation(table.schema, result)


def ctable_possible_answers(table: CTable) -> Relation:
    """Tuples present in the world of **some** valuation."""
    _check_valuations(table)
    rows: set[tuple[Any, ...]] = set()
    for world in table.possible_worlds():
        rows |= world.rows
    return Relation(table.schema, rows)
