"""Exact certain/possible SUMMARIZE bounds over Codd tables, world-free.

The classical semantics is fixed by :func:`repro.codd.algebra.evaluate`:
per world, the aggregate's child evaluates to a *set* of tuples, which is
grouped and folded with :func:`~repro.codd.algebra.aggregate_column`.  The
naive oracle therefore needs no code here.  This module computes the same
certain/possible answer relations without enumerating worlds, via a
dynamic program over row-local completions of the flattened child
(:class:`~repro.codd.joins.FlatQuery`):

* For every base row, enumerate its local completions once, keeping the
  distinct child-output tuples that pass the filter plus whether the row
  can *avoid* contributing (some completion fails, or lands in another
  group).
* Rows are independent (every NULL variable lives in one row), so per
  group the set of achievable aggregate results is the product-closure of
  per-row choices — a set-of-states DP, capped by
  :data:`MAX_AGGREGATE_STATES`.
* A group is certainly present iff some row contributes to it under
  every completion; its tuple is certain iff additionally every reachable
  state finalizes to the same values.  Possible answers are all reachable
  finalized states of all groups.

**Exactness guards.**  Set semantics collapses equal child tuples *before*
grouping, so if two different base rows could ever produce the same child
tuple the per-row independence breaks; the preparation detects that (and
any state-cap overflow, non-finite float, or overflowing int-to-float
conversion) and *declines*, sending the planner to naive enumeration.
Integer sums use exact integer arithmetic; once a float joins a group the
sum is tracked as an exact :class:`fractions.Fraction` over
``float()``-converted inputs, whose final ``float()`` equals the
correctly-rounded ``math.fsum`` the oracle computes — bit-identical, in
any accumulation order.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.codd.algebra import AggregateSpec
from repro.codd.relation import Relation

__all__ = [
    "MAX_AGGREGATE_STATES",
    "aggregate_answers",
    "prepare_aggregation",
    "summarize",
]

#: Cap on the per-group DP state set; past it the fast path declines and
#: the planner falls back to naive enumeration (itself world-capped).
MAX_AGGREGATE_STATES = 50_000


class _Absent:
    """Sentinel for 'no non-None contribution yet' (hashable singleton)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<absent>"


_ABSENT = _Absent()


# ----------------------------------------------------------------------
# Per-spec accumulators
# ----------------------------------------------------------------------
def _combine(func: str, acc: Any, value: Any) -> Any:
    from repro.codd.joins import _Decline

    if func == "count":
        return acc + (0 if value is None else 1)
    if value is None:
        return acc
    if func == "min":
        return value if acc is _ABSENT else min(acc, value)
    if func == "max":
        return value if acc is _ABSENT else max(acc, value)
    if func == "sum":
        if not isinstance(value, (int, float)):
            raise _Decline(f"sum over non-numeric value {value!r}")
        if isinstance(value, float) and not math.isfinite(value):
            raise _Decline("sum over a non-finite float")
        try:
            converted = Fraction(float(value))
        except OverflowError:
            raise _Decline("sum contribution overflows float conversion") from None
        if acc is _ABSENT:
            all_int, int_sum, conv = True, 0, Fraction(0)
        else:
            all_int, int_sum, conv = acc
        if isinstance(value, bool) or isinstance(value, int):
            return (all_int, int_sum + int(value), conv + converted)
        return (False, int_sum, conv + converted)
    raise ValueError(f"unknown aggregate function {func!r}")


def _finalize(func: str, acc: Any) -> Any:
    if func == "count":
        return acc
    if acc is _ABSENT:
        return None
    if func in ("min", "max"):
        return acc
    all_int, int_sum, conv = acc
    # Matches aggregate_column: exact integer sum while the group is all
    # ints, else the correctly-rounded float sum (fsum == float(Fraction)).
    return int_sum if all_int else float(conv)


def _initial(func: str) -> Any:
    return 0 if func == "count" else _ABSENT


# ----------------------------------------------------------------------
# Preparation: enumerate row options, run the DP, build both relations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PreparedAggregation:
    certain: Relation
    possible: Relation


_CACHE: OrderedDict[Any, _PreparedAggregation] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_SIZE = 32


def _row_options(flat) -> list[tuple[list[tuple[Any, ...]], bool]]:
    """Per base row: the distinct passing child-output tuples and whether
    the row can fail the filter.  Raises on cross-row tuple collisions."""
    from repro.codd.certain import _row_local_valuations
    from repro.codd.joins import _Decline

    out_idx = [flat.working.index(a) for a in flat.output]
    owners: dict[tuple[Any, ...], int] = {}
    rows = []
    for r, row in enumerate(flat.table.rows):
        options: list[tuple[Any, ...]] = []
        seen: set[tuple[Any, ...]] = set()
        can_fail = False
        for completion in _row_local_valuations(row):
            if flat.predicate is not None and not flat.predicate.holds(
                flat.working, completion
            ):
                can_fail = True
                continue
            tup = tuple(completion[i] for i in out_idx)
            if tup not in seen:
                seen.add(tup)
                options.append(tup)
                owner = owners.setdefault(tup, r)
                if owner != r:
                    raise _Decline(
                        "two base rows can produce the same child tuple; set "
                        "semantics would couple them across worlds"
                    )
        rows.append((options, can_fail))
    return rows


def prepare_aggregation(
    flat,
    group_by: tuple[str, ...],
    aggregates: tuple[AggregateSpec, ...],
) -> _PreparedAggregation:
    """Run the aggregation DP for ``flat`` once; results are cached so the
    planner's ``supports``/``estimate_cost``/``answer`` sequence (times two
    backends, times two modes) pays for it a single time.

    Raises :class:`repro.codd.joins._Decline` when the fast path would be
    inexact or unaffordable — callers treat that as "not supported".
    """
    from repro.codd.joins import _Decline

    key = (
        flat.table.fingerprint(),
        flat.working,
        flat.output,
        flat.predicate,
        group_by,
        aggregates,
    )
    with _CACHE_LOCK:
        if key in _CACHE:
            _CACHE.move_to_end(key)
            return _CACHE[key]

    try:
        rows = _row_options(flat)
    except TypeError:
        # Mixed-type comparison somewhere in the filter: enumeration order
        # determines which world trips it, so let naive raise canonically.
        raise _Decline("type error while enumerating row completions") from None
    key_idx = [flat.output.index(k) for k in group_by]
    value_idx = [
        None if spec.attribute is None else flat.output.index(spec.attribute)
        for spec in aggregates
    ]
    funcs = [spec.func for spec in aggregates]

    # Group the per-row options by group key.
    participants: dict[tuple[Any, ...], list[tuple[list[tuple[Any, ...]], bool]]] = {}
    certain_present: dict[tuple[Any, ...], bool] = {}
    if not group_by:
        participants[()] = []
    for options, can_fail in rows:
        by_key: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for tup in options:
            by_key.setdefault(tuple(tup[i] for i in key_idx), []).append(tup)
        for group, group_options in by_key.items():
            avoidable = can_fail or len(by_key) > 1
            participants.setdefault(group, []).append((group_options, avoidable))
            if not avoidable:
                certain_present[group] = True

    initial = tuple(_initial(f) for f in funcs)
    out_schema = group_by + tuple(spec.alias for spec in aggregates)
    certain_rows: set[tuple[Any, ...]] = set()
    possible_rows: set[tuple[Any, ...]] = set()
    for group, members in participants.items():
        # states: (present, accumulator tuple) reachable over this group's
        # worlds; rows are independent so choices multiply.
        states: set[tuple[bool, tuple[Any, ...]]] = {(False, initial)}
        for group_options, avoidable in members:
            next_states: set[tuple[bool, tuple[Any, ...]]] = set()
            for present, accs in states:
                if avoidable:
                    next_states.add((present, accs))
                for tup in group_options:
                    try:
                        combined = tuple(
                            _combine(
                                f, acc, True if idx is None else tup[idx]
                            )
                            for f, acc, idx in zip(funcs, accs, value_idx)
                        )
                    except TypeError:
                        # e.g. MIN over incomparable types; naive raises the
                        # canonical error in whichever world mixes them.
                        raise _Decline(
                            "type error while combining aggregate states"
                        ) from None
                    next_states.add((True, combined))
            if len(next_states) > MAX_AGGREGATE_STATES:
                raise _Decline(
                    f"aggregate DP exceeded {MAX_AGGREGATE_STATES} states"
                )
            states = next_states
        finalized = {
            group + tuple(_finalize(f, acc) for f, acc in zip(funcs, accs))
            for present, accs in states
            if present or not group_by
        }
        possible_rows |= finalized
        if len(finalized) == 1 and (not group_by or certain_present.get(group)):
            certain_rows |= finalized

    prepared = _PreparedAggregation(
        certain=Relation(out_schema, certain_rows),
        possible=Relation(out_schema, possible_rows),
    )
    with _CACHE_LOCK:
        _CACHE[key] = prepared
        _CACHE.move_to_end(key)
        while len(_CACHE) > _CACHE_SIZE:
            _CACHE.popitem(last=False)
    return prepared


def aggregate_answers(
    flat,
    group_by: tuple[str, ...],
    aggregates: tuple[AggregateSpec, ...],
    mode: str,
) -> Relation:
    """The certain or possible answer relation of the aggregation."""
    prepared = prepare_aggregation(flat, group_by, aggregates)
    return prepared.certain if mode == "certain" else prepared.possible


# ----------------------------------------------------------------------
# The user-facing bounds API
# ----------------------------------------------------------------------
def summarize(
    query,
    database,
    group_by: Sequence[str] = (),
    aggregates: Sequence[AggregateSpec] = (),
) -> dict[tuple[Any, ...], dict[str, Any]]:
    """SUMMARIZE-style bounds: per group, what is certain vs merely possible.

    Wraps ``query`` in an :class:`~repro.codd.algebra.Aggregate` and
    answers it in both modes through the engine, then reshapes the result
    per group key::

        {group_key: {"certain": row_or_None, "possible": [rows...]}}

    ``certain`` is the group's exact tuple when one exists in every world,
    else ``None`` (the group may be absent, or its values vary);
    ``possible`` lists every achievable tuple for the group.
    """
    from repro.codd.algebra import Aggregate
    from repro.codd.engine import answer_query

    wrapped = Aggregate(query, tuple(group_by), tuple(aggregates))
    n_keys = len(tuple(group_by))
    certain = answer_query(wrapped, database, mode="certain").relation
    possible = answer_query(wrapped, database, mode="possible").relation
    out: dict[tuple[Any, ...], dict[str, Any]] = {}
    for row in sorted(possible.rows, key=repr):
        entry = out.setdefault(row[:n_keys], {"certain": None, "possible": []})
        entry["possible"].append(row)
    for row in certain.rows:
        out[row[:n_keys]]["certain"] = row
    return out
