"""Set-semantic joins and set operators over Codd tables, without worlds.

The tractable single-table machinery (:mod:`repro.codd.vectorized`,
:mod:`repro.codd.certain`) answers ``π(σ(ρ(Scan)))`` column-at-a-time via
the row-local rule.  This module extends that reach to ``Join`` / ``Union``
/ ``Difference`` / ``Aggregate`` trees by *reduction*, never enumeration:

**Flattening.**  Any ``Scan``/``Select``/``Project``/``Rename``/``Join``
subtree is compiled to a :class:`FlatQuery`: one Codd table, one working
schema, one conjunctive-ish predicate, one output projection.  For a join,
the table is a synthesized *pair table*: a hash probe over each row's
possible join-key values finds the candidate pairs — constant-equal keys
are certain matches, overlapping NULL domains only possible ones — and
each candidate pair's cells (NULL objects included) are concatenated into
one row.  The join condition and both side filters become a single ``σ``
over the pair table, so the whole join runs through the unchanged
single-table engine.

**Exactness.**  Worlds of the pair table correspond exactly to worlds of
the database *provided no NULL variable occurs in two pair rows* — a
NULL-bearing base row matched by two partners would otherwise have its
variable decoupled, which is unsound for certain answers (a tuple can be
certain via different rows in different worlds) and for aggregate
multiplicities.  Whenever that happens — or an incomplete table is scanned
on both sides of a join/union/difference — flattening *declines* and the
planner falls back to naive world enumeration.  Rows whose side filter
rejects every local completion are dropped before pairing (the
``prune_database`` idea applied inside the join), which is what makes the
hash join beat enumeration by orders of magnitude.

**Set operators.**  With the two sides touching disjoint sets of
incomplete tables, worlds factor independently, giving the classic exact
combinators::

    certain(A ∪ B) = certain(A) ∪ certain(B)    possible(A ∪ B) = possible(A) ∪ possible(B)
    certain(A − B) = certain(A) − possible(B)   possible(A − B) = possible(A) − certain(B)

:func:`composite_analysis` performs the whole analysis (cached — planning
calls ``supports``/``estimate_cost``/``answer`` back to back) and
:func:`composite_answer` evaluates, parameterised by the leaf evaluators
so the vectorized and rowwise backends share every decision above.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass, replace
from typing import Any

from repro.codd.algebra import (
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Predicate,
    Project,
    Query,
    Rename,
    Scan,
    Select,
    predicate_attributes,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.plan import (
    AggregateNode,
    DifferenceNode,
    JoinNode,
    LogicalPlan,
    PlanNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SelectNode,
    UnionNode,
    lower,
)
from repro.codd.relation import Relation

__all__ = [
    "MAX_JOIN_PRUNE_COMPLETIONS",
    "FlatQuery",
    "Composite",
    "composite_analysis",
    "composite_answer",
]

#: Per-row completion cap for the pre-pairing filter prune (same idea as
#: :data:`repro.codd.certain.MAX_PRUNE_COMPLETIONS`): rows more ambiguous
#: than this are conservatively kept.
MAX_JOIN_PRUNE_COMPLETIONS = 4096


# ----------------------------------------------------------------------
# FlatQuery: one table, one rename, one filter, one projection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlatQuery:
    """A normalized single-table query: ``π_output(σ_pred(ρ(Scan)))``.

    ``working`` names the table's columns after the renaming (same arity
    and order as ``table.schema``); ``output`` is a subset of ``working``
    in output order; ``predicate`` reads working names.  ``sources`` lists
    the *incomplete* base tables this flat query draws rows from (the
    disjointness currency of the set-operator combinators); ``name`` binds
    the scan.
    """

    table: CoddTable
    name: str
    working: tuple[str, ...]
    output: tuple[str, ...]
    predicate: Predicate | None
    sources: frozenset[str]

    def completion_cells(self) -> int:
        """Cells a stacked completion grid of ``table`` would hold."""
        total = 0
        for row in self.table.rows:
            n = 1
            for cell in row:
                if isinstance(cell, Null):
                    n *= len(cell.domain)
            total += n
        return total * max(len(self.table.schema), 1)

    def to_query(self) -> Query:
        """The canonical ``π(σ(ρ(Scan)))`` the single-table engines accept."""
        query: Query = Scan(self.name)
        mapping = {
            old: new
            for old, new in zip(self.table.schema, self.working)
            if old != new
        }
        if mapping:
            query = Rename(query, mapping)
        if self.predicate is not None:
            query = Select(query, self.predicate)
        if self.output != self.working:
            query = Project(query, self.output)
        return query


class _Decline(Exception):
    """Internal: this subtree cannot be flattened exactly — fall back."""


def _rename_predicate(pred: Predicate, mapping: Mapping[str, str]) -> Predicate:
    from repro.codd.optimizer import _rename_predicate as impl

    return impl(pred, mapping)


def _conjoin(parts: list[Predicate]) -> Predicate | None:
    if not parts:
        return None
    return parts[0] if len(parts) == 1 else Conjunction(*parts)


def _conjuncts(pred: Predicate) -> list[Predicate]:
    if isinstance(pred, Conjunction):
        return [p for part in pred.parts for p in _conjuncts(part)]
    return [pred]


def _equi_pairs(
    pred: Predicate | None,
    left: FlatQuery,
    right: FlatQuery,
) -> list[tuple[str, str]]:
    """``(left_attr, right_attr)`` pairs from ``attr == attr`` conjuncts
    spanning the two sides — the hash-probe keys of a qualified
    ``JOIN ... ON`` whose sources have disjoint schemas."""
    pairs: list[tuple[str, str]] = []
    if pred is None:
        return pairs
    left_attrs, right_attrs = set(left.output), set(right.output)
    for part in _conjuncts(pred):
        if not (
            isinstance(part, Comparison)
            and part.op == "=="
            and isinstance(part.left, Attribute)
            and isinstance(part.right, Attribute)
        ):
            continue
        a, b = part.left.name, part.right.name
        if a in left_attrs and b in right_attrs:
            pairs.append((a, b))
        elif b in left_attrs and a in right_attrs:
            pairs.append((b, a))
    return pairs


def _fresh_names(taken: set[str], n: int, prefix: str) -> list[str]:
    out = []
    counter = 0
    while len(out) < n:
        candidate = f"{prefix}{counter}"
        counter += 1
        if candidate not in taken:
            taken.add(candidate)
            out.append(candidate)
    return out


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------
def _flatten(node: PlanNode, database: Mapping[str, CoddTable], max_cells: int) -> FlatQuery:
    if isinstance(node, ScanNode):
        table = database.get(node.relation)
        if table is None:
            raise _Decline(f"relation {node.relation!r} not bound")
        sources = frozenset() if table.is_complete() else frozenset((node.relation,))
        return FlatQuery(
            table=table,
            name=node.relation,
            working=table.schema,
            output=table.schema,
            predicate=None,
            sources=sources,
        )
    if isinstance(node, SelectNode):
        if isinstance(node.child, JoinNode):
            # σ directly over a join carries the ON condition of a
            # qualified (disjoint-schema) SQL join; hand it to the pair
            # synthesis so its equality conjuncts drive the hash probe.
            flat = _flatten_join(node.child, node.predicate, database, max_cells)
        else:
            flat = _flatten(node.child, database, max_cells)
        if not predicate_attributes(node.predicate) <= set(flat.output):
            # Referencing a projected-away attribute must raise the naive
            # path's KeyError, not silently read a hidden working column.
            raise _Decline("select predicate references a hidden attribute")
        parts = [flat.predicate] if flat.predicate is not None else []
        # The plan predicate reads visible (output) names, all of which are
        # working names too, so it composes without rewriting.
        return replace(flat, predicate=_conjoin(parts + [node.predicate]))
    if isinstance(node, ProjectNode):
        flat = _flatten(node.child, database, max_cells)
        return replace(flat, output=node.attributes)
    if isinstance(node, RenameNode):
        flat = _flatten(node.child, database, max_cells)
        mapping = dict(node.mapping)
        visible = set(flat.output)
        rename: dict[str, str] = {
            old: new for old, new in mapping.items() if old in visible and old != new
        }
        new_visible = {rename.get(a, a) for a in flat.output}
        # Hidden (projected-away) working columns whose names now collide
        # with a visible name move to fresh private names; they are only
        # ever referenced by the stored predicate, which is rewritten too.
        taken = set(flat.working) | new_visible
        hidden_clashes = [
            a for a in flat.working if a not in visible and a in new_visible
        ]
        for a, fresh in zip(
            hidden_clashes, _fresh_names(taken, len(hidden_clashes), "#h")
        ):
            rename[a] = fresh
        working = tuple(rename.get(a, a) for a in flat.working)
        if len(set(working)) != len(working):
            raise _Decline("rename produced colliding working names")
        predicate = (
            _rename_predicate(flat.predicate, rename)
            if flat.predicate is not None
            else None
        )
        return replace(
            flat,
            working=working,
            output=tuple(rename.get(a, a) for a in flat.output),
            predicate=predicate,
        )
    if isinstance(node, JoinNode):
        return _flatten_join(node, None, database, max_cells)
    raise _Decline(f"cannot flatten a {type(node).__name__}")


def _flatten_join(
    node: JoinNode,
    on_predicate: Predicate | None,
    database: Mapping[str, CoddTable],
    max_cells: int,
) -> FlatQuery:
    """Flatten a join; ``on_predicate`` (the σ directly above, if any) is
    mined for equality conjuncts to use as hash-probe keys but NOT applied
    here — the caller conjoins it onto the result."""
    left = _flatten(node.left, database, max_cells)
    right = _flatten(node.right, database, max_cells)
    if left.sources & right.sources:
        raise _Decline(
            "an incomplete table is scanned on both sides of the join; "
            "its variables would be coupled across pair rows"
        )
    key_pairs = [(a, a) for a in left.output if a in right.output]
    key_pairs.extend(_equi_pairs(on_predicate, left, right))
    return _synthesize_pair(left, right, key_pairs, max_cells)


def _row_completions(row: tuple[Any, ...]) -> int:
    n = 1
    for cell in row:
        if isinstance(cell, Null):
            n *= len(cell.domain)
    return n


def _prune_rows(flat: FlatQuery) -> list[tuple[Any, ...]]:
    """Rows of ``flat.table`` that could pass ``flat.predicate`` in some
    world — the pre-pairing prune that makes the hash join fast.  Rows too
    ambiguous to check cheaply (or whose check raises, e.g. a mixed-type
    ordering the oracle would also choke on) are conservatively kept."""
    if flat.predicate is None:
        return list(flat.table.rows)
    from repro.codd.certain import _row_local_valuations

    kept = []
    for row in flat.table.rows:
        if _row_completions(row) > MAX_JOIN_PRUNE_COMPLETIONS:
            kept.append(row)
            continue
        try:
            if any(
                flat.predicate.holds(flat.working, completion)
                for completion in _row_local_valuations(row)
            ):
                kept.append(row)
        except (TypeError, KeyError):
            kept.append(row)
    return kept


def _possible_values(cell: Any) -> tuple[Any, ...]:
    return cell.domain if isinstance(cell, Null) else (cell,)


def _synthesize_pair(
    left: FlatQuery,
    right: FlatQuery,
    key_pairs: list[tuple[str, str]],
    max_cells: int,
) -> FlatQuery:
    """Build the candidate-pair table for ``left ⋈ right``.

    ``key_pairs`` are ``(left_attr, right_attr)`` equalities known to hold
    in the final query — the shared attributes of a natural join plus any
    ``ON`` equalities mined by the caller.  They drive the hash probe that
    keeps the candidate set near the true match set; the actual equality
    predicates (σ over the pair table) are what make the answer exact.
    """
    shared = tuple(a for a in left.output if a in right.output)

    # Disambiguate: right working names colliding with left working names
    # move to fresh private names; for shared join attributes we keep the
    # right copy under a private name and add the equality below.
    taken = set(left.working) | set(right.working)
    clashes = [a for a in right.working if a in left.working]
    fresh = dict(zip(clashes, _fresh_names(taken, len(clashes), "#r")))
    right_working = tuple(fresh.get(a, a) for a in right.working)
    right_pred = (
        _rename_predicate(right.predicate, fresh)
        if right.predicate is not None
        else None
    )

    left_rows = _prune_rows(left)
    right_rows = _prune_rows(right)

    left_key_idx = [left.working.index(a) for a, _ in key_pairs]
    right_key_idx = [right.working.index(b) for _, b in key_pairs]

    # Hash probe on the first key pair's possible values; remaining key
    # pairs are verified by possible-overlap.  Probing is only candidate
    # pruning — the σ equalities below are what make matches exact.
    if key_pairs:
        probe: dict[Any, list[int]] = {}
        for j, row in enumerate(right_rows):
            for value in _possible_values(row[right_key_idx[0]]):
                try:
                    bucket = probe.setdefault(value, [])
                except TypeError:
                    raise _Decline("unhashable join-key value")
                if not bucket or bucket[-1] != j:
                    bucket.append(j)

    pairs: list[tuple[int, int]] = []
    for i, lrow in enumerate(left_rows):
        if key_pairs:
            candidates: list[int] = []
            seen: set[int] = set()
            for value in _possible_values(lrow[left_key_idx[0]]):
                for j in probe.get(value, ()):
                    if j not in seen:
                        seen.add(j)
                        candidates.append(j)
            candidates.sort()
        else:
            candidates = range(len(right_rows))  # cross product
        for j in candidates:
            rrow = right_rows[j]
            ok = True
            for li, ri in zip(left_key_idx[1:], right_key_idx[1:]):
                lvals = _possible_values(lrow[li])
                rvals = set(_possible_values(rrow[ri]))
                if not any(v in rvals for v in lvals):
                    ok = False
                    break
            if ok:
                pairs.append((i, j))

    # Exactness guard: a NULL-bearing row in two pairs would decouple its
    # variable.  Complete rows carry no variables and may repeat freely.
    used_left: set[int] = set()
    used_right: set[int] = set()
    for i, j in pairs:
        if not all(not isinstance(c, Null) for c in left_rows[i]):
            if i in used_left:
                raise _Decline("a NULL-bearing left row matches several right rows")
            used_left.add(i)
        if not all(not isinstance(c, Null) for c in right_rows[j]):
            if j in used_right:
                raise _Decline("a NULL-bearing right row matches several left rows")
            used_right.add(j)

    arity = len(left.working) + len(right_working)
    total_completions = sum(
        _row_completions(left_rows[i]) * _row_completions(right_rows[j])
        for i, j in pairs
    )
    if total_completions * arity > max_cells:
        raise _Decline(
            f"pair table needs {total_completions * arity} completion cells, "
            f"above the cap {max_cells}"
        )

    working = left.working + right_working
    table = CoddTable(
        working, [left_rows[i] + right_rows[j] for i, j in pairs]
    )
    parts: list[Predicate] = []
    if left.predicate is not None:
        parts.append(left.predicate)
    if right_pred is not None:
        parts.append(right_pred)
    for a in shared:
        right_copy = right_working[right.working.index(a)]
        parts.append(Comparison(Attribute(a), "==", Attribute(right_copy)))
    output = left.output + tuple(a for a in right.output if a not in shared)
    return FlatQuery(
        table=table,
        name=f"{left.name}*{right.name}",
        working=working,
        output=output,
        predicate=_conjoin(parts),
        sources=left.sources | right.sources,
    )


# ----------------------------------------------------------------------
# Composite trees: set operators and aggregation over flat leaves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Composite:
    """The analyzed form of a fast-evaluable query tree."""

    kind: str  # "flat" | "union" | "difference" | "aggregate"
    flat: FlatQuery | None = None
    left: "Composite | None" = None
    right: "Composite | None" = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()

    @property
    def sources(self) -> frozenset[str]:
        if self.flat is not None:
            return self.flat.sources
        return self.left.sources | self.right.sources

    def estimated_cells(self) -> float:
        if self.kind == "flat":
            return float(self.flat.completion_cells())
        if self.kind == "aggregate":
            # The aggregation DP walks every completion of the flat child.
            return 2.0 * self.flat.completion_cells()
        return self.left.estimated_cells() + self.right.estimated_cells()


def _analyze(node: PlanNode, database: Mapping[str, CoddTable], max_cells: int) -> Composite:
    if isinstance(node, UnionNode) or isinstance(node, DifferenceNode):
        left = _analyze(node.left, database, max_cells)
        right = _analyze(node.right, database, max_cells)
        if left.sources & right.sources:
            raise _Decline(
                "an incomplete table is scanned on both sides of the set "
                "operator; its worlds would be coupled across the sides"
            )
        kind = "union" if isinstance(node, UnionNode) else "difference"
        return Composite(kind=kind, left=left, right=right)
    if isinstance(node, AggregateNode):
        flat = _flatten(node.child, database, max_cells)
        if flat.completion_cells() > max_cells:
            raise _Decline("aggregate child above the completion-cell cap")
        from repro.codd.aggregate import prepare_aggregation

        # Raises _Decline when cross-row tuple collisions or the DP state
        # cap make the fast path inexact/unaffordable for this input.
        prepare_aggregation(flat, node.group_by, node.aggregates)
        return Composite(
            kind="aggregate",
            flat=flat,
            group_by=node.group_by,
            aggregates=node.aggregates,
        )
    flat = _flatten(node, database, max_cells)
    if flat.completion_cells() > max_cells:
        raise _Decline("flattened table above the completion-cell cap")
    return Composite(kind="flat", flat=flat)


# Planning calls supports/estimate_cost/answer back to back on the same
# query, and two backends each do so; cache the (potentially expensive)
# analysis keyed by query + table fingerprints.
_ANALYSIS_CACHE: OrderedDict[Any, Composite | None] = OrderedDict()
_ANALYSIS_LOCK = threading.Lock()
_ANALYSIS_CACHE_SIZE = 32


def composite_analysis(
    query: Query, database: Mapping[str, CoddTable], max_cells: int
) -> Composite | None:
    """Analyze ``query`` for fast evaluation; ``None`` when it must fall
    back to naive enumeration (shape, size, or exactness decline)."""
    try:
        key = (
            query,
            max_cells,
            tuple(sorted((n, t.fingerprint()) for n, t in database.items())),
        )
    except TypeError:  # unhashable literal somewhere in the query
        key = None
    if key is not None:
        with _ANALYSIS_LOCK:
            if key in _ANALYSIS_CACHE:
                _ANALYSIS_CACHE.move_to_end(key)
                return _ANALYSIS_CACHE[key]
    try:
        plan = LogicalPlan.from_query(query, LogicalPlan.catalog_of(database))
        result: Composite | None = _analyze(plan.root, database, max_cells)
    except _Decline:
        result = None
    except (KeyError, ValueError):
        # Unknown relations/attributes or incompatible schemas: let the
        # naive path raise the canonical error.
        result = None
    if key is not None:
        with _ANALYSIS_LOCK:
            _ANALYSIS_CACHE[key] = result
            _ANALYSIS_CACHE.move_to_end(key)
            while len(_ANALYSIS_CACHE) > _ANALYSIS_CACHE_SIZE:
                _ANALYSIS_CACHE.popitem(last=False)
    return result


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
#: ``(flat, mode, grid) -> Relation`` — how a backend answers one leaf.
LeafEvaluator = Callable[[FlatQuery, str], Relation]


def composite_answer(
    composite: Composite,
    mode: str,
    leaf: LeafEvaluator,
) -> Relation:
    """Evaluate an analyzed composite in ``mode`` (``certain``/``possible``).

    ``leaf`` evaluates one :class:`FlatQuery` in a given mode — the
    vectorized and rowwise backends differ only there.  Set operators use
    the exact mode-flipping combinators; aggregation runs the shared DP.
    """
    if composite.kind == "flat":
        return leaf(composite.flat, mode)
    if composite.kind == "aggregate":
        from repro.codd.aggregate import aggregate_answers

        return aggregate_answers(
            composite.flat, composite.group_by, composite.aggregates, mode
        )
    other = "possible" if mode == "certain" else "certain"
    if composite.kind == "union":
        return composite_answer(composite.left, mode, leaf).union(
            composite_answer(composite.right, mode, leaf)
        )
    if composite.kind == "difference":
        return composite_answer(composite.left, mode, leaf).difference(
            composite_answer(composite.right, other, leaf)
        )
    raise ValueError(f"unknown composite kind {composite.kind!r}")
