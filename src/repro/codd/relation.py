"""Complete relations with named attributes and set semantics.

A :class:`Relation` is the substrate everything else in :mod:`repro.codd`
builds on: a schema (ordered tuple of attribute names) plus a *set* of rows.
Set semantics matches the textbook treatment of certain answers (duplicate
tuples carry no information), and makes the certain-answer intersection
``sure(Q, T) = ∩ Q(I)`` a plain set intersection.

Cell values are arbitrary hashable Python scalars (numbers, strings,
booleans); the algebra only ever compares them, so no numeric coercion is
applied.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["Relation"]


def _check_schema(schema: Sequence[str]) -> tuple[str, ...]:
    names = tuple(schema)
    if not names:
        raise ValueError("a relation needs at least one attribute")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate attribute names in schema {names}")
    for name in names:
        if not isinstance(name, str) or not name:
            raise ValueError(f"attribute names must be non-empty strings, got {name!r}")
    return names


class Relation:
    """An immutable relation: a schema and a set of same-arity rows.

    Parameters
    ----------
    schema:
        Ordered attribute names, e.g. ``("name", "age")``.
    rows:
        Iterable of tuples, each of the schema's arity. Duplicates are
        collapsed (set semantics).
    """

    def __init__(self, schema: Sequence[str], rows: Iterable[Sequence[Any]] = ()) -> None:
        self._schema = _check_schema(schema)
        arity = len(self._schema)
        collected: set[tuple[Any, ...]] = set()
        for row in rows:
            tup = tuple(row)
            if len(tup) != arity:
                raise ValueError(
                    f"row {tup!r} has arity {len(tup)}, schema {self._schema} needs {arity}"
                )
            collected.add(tup)
        self._rows = frozenset(collected)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> tuple[str, ...]:
        """Ordered attribute names."""
        return self._schema

    @property
    def rows(self) -> frozenset[tuple[Any, ...]]:
        """The row set."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._schema)

    def attribute_index(self, name: str) -> int:
        """Position of attribute ``name`` in the schema."""
        try:
            return self._schema.index(name)
        except ValueError:
            raise KeyError(f"attribute {name!r} not in schema {self._schema}") from None

    def column(self, name: str) -> set[Any]:
        """The set of values appearing in attribute ``name``."""
        idx = self.attribute_index(name)
        return {row[idx] for row in self._rows}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:
        return f"Relation(schema={self._schema}, n_rows={len(self._rows)})"

    # ------------------------------------------------------------------
    # Derivation helpers used by the algebra
    # ------------------------------------------------------------------
    def with_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A relation with the same schema but different rows."""
        return Relation(self._schema, rows)

    def renamed(self, mapping: dict[str, str]) -> "Relation":
        """A copy with attributes renamed via ``mapping`` (missing keys kept)."""
        new_schema = tuple(mapping.get(name, name) for name in self._schema)
        return Relation(new_schema, self._rows)

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection onto ``attributes`` (set semantics removes duplicates)."""
        indices = [self.attribute_index(a) for a in attributes]
        return Relation(attributes, {tuple(row[i] for i in indices) for row in self._rows})

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must match exactly."""
        self._check_compatible(other, "union")
        return Relation(self._schema, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``self - other``; schemas must match exactly."""
        self._check_compatible(other, "difference")
        return Relation(self._schema, self._rows - other._rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on the shared attribute names.

        With no shared attributes this degenerates to the Cartesian product,
        as in the textbook definition.
        """
        shared = [a for a in self._schema if a in other._schema]
        left_idx = [self.attribute_index(a) for a in shared]
        right_idx = [other.attribute_index(a) for a in shared]
        right_extra = [i for i, a in enumerate(other._schema) if a not in shared]
        out_schema = self._schema + tuple(other._schema[i] for i in right_extra)

        by_key: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for row in other._rows:
            by_key.setdefault(tuple(row[i] for i in right_idx), []).append(row)

        out_rows: set[tuple[Any, ...]] = set()
        for row in self._rows:
            key = tuple(row[i] for i in left_idx)
            for match in by_key.get(key, ()):
                out_rows.add(row + tuple(match[i] for i in right_extra))
        return Relation(out_schema, out_rows)

    def _check_compatible(self, other: "Relation", op: str) -> None:
        if self._schema != other._schema:
            raise ValueError(
                f"{op} needs identical schemas, got {self._schema} and {other._schema}"
            )
