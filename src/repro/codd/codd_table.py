"""Codd tables: relations whose cells may hold NULL variables.

A :class:`CoddTable` is the paper's Figure-1 object: a relation in which
some cells contain :class:`Null` markers. Each Null is a *distinct* variable
(Codd semantics: variables are never shared between cells) ranging over a
finite domain, so a table with nulls ``v_1 .. v_n`` over domains
``D_1 .. D_n`` represents ``|D_1| × ... × |D_n|`` possible worlds — each a
complete :class:`~repro.codd.relation.Relation`.

Finite domains keep the possible-world set enumerable, exactly as the
paper's incomplete *dataset* bounds each candidate set ``C_i`` by ``M``.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.codd.relation import Relation, _check_schema

__all__ = ["Null", "CoddTable"]


class Null:
    """A NULL variable with a finite domain of possible values.

    Each instance is a distinct variable; two ``Null`` objects never compare
    equal even with identical domains (Codd tables do not share variables
    between cells).
    """

    __slots__ = ("_domain",)

    def __init__(self, domain: Iterable[Any]) -> None:
        values = tuple(dict.fromkeys(domain))  # dedupe, keep order
        if not values:
            raise ValueError("a NULL variable needs a non-empty domain")
        self._domain = values

    @property
    def domain(self) -> tuple[Any, ...]:
        """The possible values of this variable."""
        return self._domain

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._domain[:3])
        suffix = ", ..." if len(self._domain) > 3 else ""
        return f"Null({{{preview}{suffix}}})"


class CoddTable:
    """A relation with NULL variables in some cells.

    Parameters
    ----------
    schema:
        Ordered attribute names.
    rows:
        Sequence of tuples whose entries are either constants or
        :class:`Null` instances. Unlike :class:`Relation`, rows form a
        *list*, not a set: two rows that look identical before valuation may
        differ after it.
    """

    def __init__(self, schema: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
        self._schema = _check_schema(schema)
        arity = len(self._schema)
        table: list[tuple[Any, ...]] = []
        variables: list[tuple[int, int, Null]] = []
        for r, row in enumerate(rows):
            tup = tuple(row)
            if len(tup) != arity:
                raise ValueError(
                    f"row {r} has arity {len(tup)}, schema {self._schema} needs {arity}"
                )
            for c, cell in enumerate(tup):
                if isinstance(cell, Null):
                    variables.append((r, c, cell))
            table.append(tup)
        self._rows = tuple(table)
        self._variables = tuple(variables)
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> tuple[str, ...]:
        """Ordered attribute names."""
        return self._schema

    @property
    def rows(self) -> tuple[tuple[Any, ...], ...]:
        """Rows with constants and :class:`Null` markers."""
        return self._rows

    @property
    def variables(self) -> tuple[tuple[int, int, Null], ...]:
        """All NULL variables as ``(row, column, null)`` triples."""
        return self._variables

    @property
    def n_variables(self) -> int:
        """Number of NULL cells."""
        return len(self._variables)

    def n_worlds(self) -> int:
        """Exact number of possible worlds (big int)."""
        return math.prod(len(null.domain) for _, _, null in self._variables)

    def is_complete(self) -> bool:
        """True iff the table holds no NULLs."""
        return not self._variables

    def fingerprint(self) -> str:
        """A content hash of the table (schema, constants, NULL domains).

        Two tables with identical schemas, constants and NULL domains share
        a fingerprint even though their :class:`Null` *variables* are
        distinct objects — evaluation depends only on positions and
        domains, which is exactly what caches (the vectorized engine's
        prepared-grid LRU, the service's SQL result cache) need to key on.
        Instances are immutable, so the hash is computed once.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(repr(self._schema).encode("utf-8"))
            for row in self._rows:
                for cell in row:
                    if isinstance(cell, Null):
                        digest.update(b"N")
                        digest.update(repr(cell.domain).encode("utf-8"))
                    else:
                        digest.update(b"C")
                        digest.update(repr(cell).encode("utf-8"))
                digest.update(b"|")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def attribute_index(self, name: str) -> int:
        """Position of attribute ``name`` in the schema."""
        try:
            return self._schema.index(name)
        except ValueError:
            raise KeyError(f"attribute {name!r} not in schema {self._schema}") from None

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"CoddTable(schema={self._schema}, n_rows={len(self._rows)}, "
            f"n_variables={self.n_variables}, n_worlds={self.n_worlds()})"
        )

    # ------------------------------------------------------------------
    # Possible-world semantics
    # ------------------------------------------------------------------
    def world(self, valuation: Mapping[tuple[int, int], Any]) -> Relation:
        """Materialise the world where each NULL cell takes ``valuation[(r, c)]``.

        Every NULL cell must be assigned a value from its domain.
        """
        filled: list[tuple[Any, ...]] = []
        seen: set[tuple[int, int]] = set()
        for r, row in enumerate(self._rows):
            cells = []
            for c, cell in enumerate(row):
                if isinstance(cell, Null):
                    if (r, c) not in valuation:
                        raise KeyError(f"valuation missing NULL cell ({r}, {c})")
                    value = valuation[(r, c)]
                    if value not in cell.domain:
                        raise ValueError(
                            f"value {value!r} outside the domain of NULL cell ({r}, {c})"
                        )
                    cells.append(value)
                    seen.add((r, c))
                else:
                    cells.append(cell)
            filled.append(tuple(cells))
        extra = set(valuation) - seen
        if extra:
            raise KeyError(f"valuation assigns non-NULL cells {sorted(extra)}")
        return Relation(self._schema, filled)

    def possible_worlds(self) -> Iterator[Relation]:
        """Iterate over every possible world (``n_worlds()`` relations).

        The iteration order is the lexicographic product of the variable
        domains in ``(row, column)`` order, so it is deterministic.
        """
        cells = [(r, c) for r, c, _ in self._variables]
        domains = [null.domain for _, _, null in self._variables]
        for combo in itertools.product(*domains):
            yield self.world(dict(zip(cells, combo)))

    # ------------------------------------------------------------------
    # Constructors / derivation
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "CoddTable":
        """Wrap a complete relation as a Codd table without NULLs."""
        return cls(relation.schema, sorted(relation.rows, key=repr))

    def with_cell_fixed(self, row: int, column: int, value: Any) -> "CoddTable":
        """A copy in which NULL cell ``(row, column)`` is replaced by ``value``.

        Mirrors :meth:`repro.core.dataset.IncompleteDataset.with_row_fixed`:
        the value must come from the variable's domain (validity assumption).
        """
        cell = self._rows[row][column]
        if not isinstance(cell, Null):
            raise ValueError(f"cell ({row}, {column}) is not NULL")
        if value not in cell.domain:
            raise ValueError(f"value {value!r} outside the domain of cell ({row}, {column})")
        rows = [list(r) for r in self._rows]
        rows[row][column] = value
        return CoddTable(self._schema, rows)
