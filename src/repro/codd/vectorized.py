"""NumPy-vectorised certain/possible answers for select-project queries.

The tractable select-project(-rename) evaluation over a single Codd table
(see :mod:`repro.codd.certain`) is row-local: a constant tuple is certain
iff some row yields it under **every** valuation of that row's own NULL
variables, and possible iff some row yields it under **some** valuation.
The original implementation walked each row's ``itertools.product`` of
domains in pure Python; this module replaces that with a columnar engine:

* :class:`StackedTable` materialises, once per table, the *stacked
  completion grid*: for every row, every row-local completion, laid out
  as one NumPy column array per attribute plus ``offsets``/``counts``
  arrays marking each row's contiguous segment. The grid is the Codd
  layer's analogue of :class:`~repro.core.batch_engine.PreparedBatch` —
  the expensive, perfectly reusable part of evaluation — and the service
  registry pins one per registered table.
* :func:`certain_answers_vectorized` / :func:`possible_answers_vectorized`
  evaluate the query's predicate **once** over the whole stacked grid
  (columns that are numeric throughout get a cached ``float64`` view, so
  comparisons run as real vector ops; mixed-type columns fall back to
  elementwise object semantics identical to Python's), then reduce per
  row with ``np.logical_and.reduceat`` (certain: the predicate holds for
  *all* of a row's completions and the projected tuple is constant) or a
  boolean mask (possible: *some* completion satisfies).

Emitted cell values are always the original Python objects (the grid's
object columns), so results are bit-identical to the naive world-
enumeration oracle — ``tests/codd/test_codd_differential.py`` holds the
engine to exactly that standard, and ``benchmarks/bench_codd.py``
measures the speedup.
"""

from __future__ import annotations

import math
import operator
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Predicate,
    Project,
    Query,
    Rename,
    Scan,
    Select,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation

__all__ = [
    "MAX_STACKED_CELLS",
    "StackedTable",
    "estimate_stacked_cells",
    "unwrap_select_project",
    "resolve_select_project_shape",
    "certain_answers_vectorized",
    "possible_answers_vectorized",
]

#: Refuse to materialise a completion grid with more cells than this —
#: above it the engine's dispatcher falls back to the streaming row-wise
#: path, which never holds more than one completion in memory.
MAX_STACKED_CELLS = 20_000_000

#: Integers beyond this magnitude are not exactly representable as
#: float64, so columns containing them stay on the exact object path.
_FLOAT_EXACT_INT = 2**53


def _is_float_exact(value: Any) -> bool:
    """True iff ``value`` compares identically as a ``float64``."""
    if isinstance(value, bool):
        return True
    if isinstance(value, float):
        return not math.isnan(value)  # NaN breaks ``==`` reflexivity
    if isinstance(value, int):
        return -_FLOAT_EXACT_INT <= value <= _FLOAT_EXACT_INT
    return False


def _row_completion_count(row: Sequence[Any]) -> int:
    n = 1
    for cell in row:
        if isinstance(cell, Null):
            n *= len(cell.domain)
    return n


def estimate_stacked_cells(table: CoddTable) -> int:
    """Cells the stacked completion grid of ``table`` would hold (exact)."""
    return len(table.schema) * sum(
        _row_completion_count(row) for row in table.rows
    )


class StackedTable:
    """The pinned columnar completion grid of one Codd table.

    Column ``c`` holds, row segment by row segment, the value attribute
    ``c`` takes in every row-local completion; ``offsets[r]`` /
    ``counts[r]`` delimit row ``r``'s contiguous segment. Completion
    order within a segment matches
    :func:`repro.codd.certain._row_local_valuations` (the first NULL
    column varies slowest), so "the segment's first completion" is the
    same reference completion the row-wise path uses.
    """

    def __init__(self, table: CoddTable) -> None:
        self.table = table
        arity = len(table.schema)
        counts_list = [_row_completion_count(row) for row in table.rows]
        total = sum(counts_list)  # plain ints: a single row can overflow int64
        if total * arity > MAX_STACKED_CELLS:
            raise ValueError(
                f"completion grid of {total * arity} cells is above the "
                f"stacking cap {MAX_STACKED_CELLS}; use the row-wise path "
                "for this table"
            )
        counts = np.array(counts_list, dtype=np.int64)
        offsets = np.zeros(len(counts), dtype=np.int64)
        if len(counts) > 1:
            np.cumsum(counts[:-1], out=offsets[1:])
        # Build each column as one Python list, then fill a single object
        # array: list.extend + list-multiplication beat per-row numpy
        # allocations by an order of magnitude on wide tables, and the
        # common complete row costs one append per column.
        values: list[list[Any]] = [[] for _ in range(arity)]
        for row, n in zip(table.rows, counts):
            n = int(n)
            if n == 1:
                # Complete row, or NULLs with singleton domains only.
                for c, cell in enumerate(row):
                    values[c].append(
                        cell.domain[0] if isinstance(cell, Null) else cell
                    )
                continue
            inner = n  # completions spanned by one value of the next NULL
            for c, cell in enumerate(row):
                if isinstance(cell, Null):
                    # The j-th NULL varies with period prod(sizes after j),
                    # matching itertools.product order in the row-wise path.
                    inner //= len(cell.domain)
                    block: list[Any] = []
                    for value in cell.domain:
                        block.extend([value] * inner)
                    values[c].extend(block * (n // (inner * len(cell.domain))))
                else:
                    values[c].extend([cell] * n)
        self.columns: list[np.ndarray] = []
        for column_values in values:
            column = np.empty(total, dtype=object)
            column[:] = column_values
            self.columns.append(column)
        self.counts = counts
        self.offsets = offsets
        self.total = total
        #: Columns touched by a NULL anywhere (only these can vary within
        #: a row's segment, so only these need the constancy reduction).
        self.varying = tuple(
            any(isinstance(row[c], Null) for row in table.rows)
            for c in range(arity)
        )
        self._numeric: list[np.ndarray | None | bool] = [False] * arity

    @property
    def n_rows(self) -> int:
        return len(self.counts)

    def fingerprint(self) -> str:
        """The source table's content fingerprint (cache key)."""
        return self.table.fingerprint()

    def numeric_column(self, index: int) -> np.ndarray | None:
        """A cached ``float64`` view of a column, or ``None`` if the column
        holds a value that would not compare exactly as a float."""
        cached = self._numeric[index]
        if cached is False:  # not resolved yet (None is a valid answer)
            safe = all(
                all(_is_float_exact(v) for v in cell.domain)
                if isinstance(cell, Null)
                else _is_float_exact(cell)
                for cell in (row[index] for row in self.table.rows)
            )
            cached = (
                self.columns[index].astype(np.float64) if safe else None
            )
            self._numeric[index] = cached
        return cached

    def with_cell_fixed(self, row: int, column: int, value: Any) -> "StackedTable":
        """The grid for ``table.with_cell_fixed(row, column, value)`` by
        segment surgery instead of a full rebuild.

        Fixing one NULL keeps exactly the completions of row ``row`` where
        that NULL takes ``value`` — a strided sub-block of the row's
        segment (the j-th NULL varies with period ``prod(sizes after j)``,
        so the kept positions are computed structurally, never by value
        comparison). Every other segment is untouched, so the update is
        one slice-and-concatenate per column rather than re-walking every
        row's ``itertools.product`` — this is how
        :class:`repro.service.registry.CoddTableEntry` absorbs
        single-cell ``PATCH`` deltas while keeping its pinned grid warm.
        The result is bit-identical to ``StackedTable(new_table)``
        (``tests/fuzz/test_update_sequences.py`` holds it to that).
        """
        new_table = self.table.with_cell_fixed(row, column, value)
        cell = self.table.rows[row][column]
        domain = list(cell.domain)
        chosen = domain.index(value)
        n = int(self.counts[row])
        start = int(self.offsets[row])
        # Recover this NULL's variation period inside the segment (matches
        # the constructor's layout: the first NULL varies slowest).
        inner = n
        for c, other in enumerate(self.table.rows[row]):
            if isinstance(other, Null):
                inner //= len(other.domain)
                if c == column:
                    break
        keep_local = (np.arange(n, dtype=np.int64) // inner) % len(domain) == chosen
        n_keep = n // len(domain)

        derived = StackedTable.__new__(StackedTable)
        derived.table = new_table
        derived.columns = []
        for c, col in enumerate(self.columns):
            if c == column:
                segment = np.empty(n_keep, dtype=object)
                segment[:] = [value] * n_keep
            else:
                segment = col[start : start + n][keep_local]
            derived.columns.append(
                np.concatenate([col[:start], segment, col[start + n :]])
            )
        counts = self.counts.copy()
        counts[row] = n_keep
        offsets = np.zeros(len(counts), dtype=np.int64)
        if len(counts) > 1:
            np.cumsum(counts[:-1], out=offsets[1:])
        derived.counts = counts
        derived.offsets = offsets
        derived.total = self.total - (n - n_keep)
        arity = len(new_table.schema)
        derived.varying = tuple(
            any(isinstance(r[c], Null) for r in new_table.rows)
            for c in range(arity)
        )
        derived._numeric = []
        for c, cached in enumerate(self._numeric):
            if isinstance(cached, np.ndarray):
                derived._numeric.append(
                    derived.columns[c].astype(np.float64)
                )
            else:
                # Unresolved, or previously inexact (fixing a cell can only
                # remove values, so exactness may improve — re-resolve lazily).
                derived._numeric.append(False)
        return derived

    def __repr__(self) -> str:
        return (
            f"StackedTable(n_rows={self.n_rows}, arity={len(self.columns)}, "
            f"total_completions={self.total})"
        )


# ---------------------------------------------------------------------------
# Query-shape analysis
# ---------------------------------------------------------------------------


def unwrap_select_project(
    query: Query,
) -> tuple[Select | None, tuple[str, ...] | None, dict[str, str], Scan] | None:
    """Decompose ``π?(σ?(ρ?(Scan)))`` or return ``None`` if the shape differs.

    Returns ``(select_node, projected_attributes, rename_mapping, scan)``;
    either of the first two may be absent. The scan is returned so callers
    can validate the relation name it references (the dispatch bug where a
    query over ``person`` silently ran against a table bound as ``T`` came
    from dropping it).
    """
    project: tuple[str, ...] | None = None
    if isinstance(query, Project):
        project = query.attributes
        query = query.child
    select: Select | None = None
    if isinstance(query, Select):
        select = query
        query = query.child
    rename: dict[str, str] = {}
    if isinstance(query, Rename):
        rename = dict(query.mapping)
        query = query.child
    if isinstance(query, Scan):
        return select, project, rename, query
    return None


def check_scan_name(scan: Scan, names: Sequence[str]) -> None:
    """Raise the same ``KeyError`` the naive evaluator would if the query's
    scan references a relation outside the bound database."""
    if scan.relation not in names:
        raise KeyError(
            f"relation {scan.relation!r} not in database {sorted(names)}"
        )


# ---------------------------------------------------------------------------
# Vectorised predicate evaluation
# ---------------------------------------------------------------------------

_VECTOR_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _term_operand(
    term: Attribute | Literal, schema: tuple[str, ...], stacked: StackedTable
) -> tuple[Any, Any]:
    """``(object_operand, float_operand_or_None)`` for one comparison side."""
    if isinstance(term, Attribute):
        try:
            index = schema.index(term.name)
        except ValueError:
            raise KeyError(
                f"attribute {term.name!r} not in schema {tuple(schema)}"
            ) from None
        return stacked.columns[index], stacked.numeric_column(index)
    value = term.value
    return value, float(value) if _is_float_exact(value) else None


def _comparison_mask(
    node: Comparison, schema: tuple[str, ...], stacked: StackedTable
) -> np.ndarray:
    left, left_f = _term_operand(node.left, schema, stacked)
    right, right_f = _term_operand(node.right, schema, stacked)
    op = _VECTOR_OPS[node.op]
    if left_f is not None and right_f is not None:
        result = op(left_f, right_f)
    else:
        result = op(left, right)
    if np.ndim(result) == 0:  # literal-vs-literal comparison
        return np.full(stacked.total, bool(result))
    return np.asarray(result, dtype=bool)


def predicate_mask(
    pred: Predicate, schema: tuple[str, ...], stacked: StackedTable
) -> np.ndarray:
    """One boolean per stacked completion: does the predicate hold there?"""
    if isinstance(pred, Comparison):
        return _comparison_mask(pred, schema, stacked)
    if isinstance(pred, Conjunction):
        mask = np.ones(stacked.total, dtype=bool)
        for part in pred.parts:
            mask &= predicate_mask(part, schema, stacked)
        return mask
    if isinstance(pred, Disjunction):
        mask = np.zeros(stacked.total, dtype=bool)
        for part in pred.parts:
            mask |= predicate_mask(part, schema, stacked)
        return mask
    if isinstance(pred, Negation):
        return ~predicate_mask(pred.part, schema, stacked)
    raise TypeError(f"not a predicate: {pred!r}")


# ---------------------------------------------------------------------------
# The two evaluators
# ---------------------------------------------------------------------------


def resolve_select_project_shape(
    query: Query, table: CoddTable, name: str, kind: str
) -> tuple[Select | None, tuple[str, ...], tuple[str, ...], list[int]]:
    """``(select, schema, out_schema, out_indices)`` for a tractable query
    over ``table`` bound as ``name`` — the one shape-resolution (and
    name-validation) step the vectorized and row-wise paths share."""
    shape = unwrap_select_project(query)
    if shape is None:
        raise ValueError(
            "query is not of select-project(-rename) shape over a single Scan; "
            f"use {kind}_answers() for the general (naive) path"
        )
    select, project, rename, scan = shape
    check_scan_name(scan, (name,))
    schema = tuple(rename.get(a, a) for a in table.schema)
    out_schema = project if project is not None else schema
    out_indices = [schema.index(a) for a in out_schema]
    return select, schema, out_schema, out_indices


def _segment_all(mask: np.ndarray, stacked: StackedTable) -> np.ndarray:
    """Per-row AND over each row's contiguous completion segment."""
    return np.logical_and.reduceat(mask, stacked.offsets)


def _grid_for(stacked: StackedTable | None, table: CoddTable) -> StackedTable:
    """A grid usable for ``table``: the handed one when it matches by
    identity or content fingerprint (inline service tables are decoded
    fresh per request, so content equality is the match that matters),
    else a fresh build."""
    if stacked is not None and (
        stacked.table is table or stacked.fingerprint() == table.fingerprint()
    ):
        return stacked
    return StackedTable(table)


def certain_answers_vectorized(
    query: Query,
    table: CoddTable,
    name: str = "T",
    stacked: StackedTable | None = None,
) -> Relation:
    """Certain answers of a select-project(-rename) query, vectorised.

    A row contributes its (projected) first completion iff the predicate
    holds over the row's **whole** segment and every projected column is
    constant across the segment — the same row-local rule as the
    row-wise path, as one stacked pass plus ``reduceat`` reductions.
    ``stacked`` reuses a prepared grid (it must come from ``table``).
    """
    select, schema, out_schema, out_indices = resolve_select_project_shape(
        query, table, name, "certain"
    )
    if len(table) == 0:
        return Relation(out_schema, ())
    stacked = _grid_for(stacked, table)

    if select is not None:
        keep = _segment_all(predicate_mask(select.predicate, schema, stacked), stacked)
    else:
        keep = np.ones(stacked.n_rows, dtype=bool)

    first_index: np.ndarray | None = None
    for i in out_indices:
        if not stacked.varying[i]:
            continue  # no NULL ever touches this column: constant per row
        if first_index is None:
            first_index = np.repeat(stacked.offsets, stacked.counts)
        numeric = stacked.numeric_column(i)
        column = numeric if numeric is not None else stacked.columns[i]
        equal_first = np.asarray(column == column[first_index], dtype=bool)
        keep &= _segment_all(equal_first, stacked)

    rows = [
        tuple(stacked.columns[i][stacked.offsets[r]] for i in out_indices)
        for r in np.nonzero(keep)[0]
    ]
    return Relation(out_schema, rows)


def possible_answers_vectorized(
    query: Query,
    table: CoddTable,
    name: str = "T",
    stacked: StackedTable | None = None,
) -> Relation:
    """Possible answers, vectorised: some row, some completion satisfies."""
    select, schema, out_schema, out_indices = resolve_select_project_shape(
        query, table, name, "possible"
    )
    if len(table) == 0:
        return Relation(out_schema, ())
    stacked = _grid_for(stacked, table)

    if select is not None:
        satisfied = np.nonzero(predicate_mask(select.predicate, schema, stacked))[0]
    else:
        satisfied = slice(None)
    projected = [stacked.columns[i][satisfied] for i in out_indices]
    return Relation(out_schema, set(zip(*projected)))
