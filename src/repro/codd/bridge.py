"""The Figure-1 bridge: from a Codd table to an incomplete ML dataset.

The paper's opening figure runs the same incomplete table through both
worlds: a SQL query (certain answers) and an ML classifier (certain
predictions). :func:`codd_table_to_incomplete_dataset` is that bridge — it
turns a Codd table whose feature cells may be NULL into an
:class:`~repro.core.dataset.IncompleteDataset` whose per-row candidate sets
are the Cartesian products of the NULL domains (§2: "attribute-level data
repairs … merged together with Cartesian products").
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.codd.codd_table import CoddTable, Null
from repro.core.dataset import IncompleteDataset

__all__ = ["codd_table_to_incomplete_dataset"]


def codd_table_to_incomplete_dataset(
    table: CoddTable,
    feature_attributes: Sequence[str],
    label_attribute: str,
    max_candidates_per_row: int = 10_000,
) -> IncompleteDataset:
    """Convert a Codd table into the paper's incomplete-dataset model.

    Parameters
    ----------
    table:
        The source Codd table. Feature cells must be numeric constants or
        :class:`~repro.codd.codd_table.Null` markers with numeric domains;
        label cells must be non-NULL integers (the paper assumes no label
        uncertainty).
    feature_attributes:
        Which attributes become the ``d`` feature dimensions, in order.
    label_attribute:
        The attribute holding the class label.
    max_candidates_per_row:
        Guard against pathological per-row Cartesian blow-up.

    Returns
    -------
    IncompleteDataset
        One training row per table row; the candidate set of a row is the
        Cartesian product of its NULL-cell domains (a single candidate when
        the row is complete).
    """
    if not feature_attributes:
        raise ValueError(
            "feature_attributes must name at least one attribute; an empty "
            "list would produce a degenerate zero-dimensional dataset"
        )
    feat_idx = [table.attribute_index(a) for a in feature_attributes]
    label_idx = table.attribute_index(label_attribute)
    if label_idx in feat_idx:
        raise ValueError(f"label attribute {label_attribute!r} also listed as a feature")

    candidate_sets: list[np.ndarray] = []
    labels: list[int] = []
    for r, row in enumerate(table.rows):
        label_cell = row[label_idx]
        if isinstance(label_cell, Null):
            raise ValueError(
                f"row {r}: label attribute {label_attribute!r} is NULL; the CP "
                "data model assumes certain labels (Definition 1)"
            )
        try:
            label = int(label_cell)
        except (TypeError, ValueError):
            raise ValueError(
                f"row {r}: label {label_cell!r} is not an integer class label"
            ) from None
        if label != label_cell:  # e.g. 1.5 → int() would silently truncate
            raise ValueError(
                f"row {r}: label {label_cell!r} is not integral; refusing to "
                f"truncate it to {label}"
            )
        labels.append(label)

        axes: list[tuple[float, ...]] = []
        n_candidates = 1
        for idx in feat_idx:
            cell = row[idx]
            if isinstance(cell, Null):
                axis = tuple(float(v) for v in cell.domain)
            else:
                axis = (float(cell),)
            n_candidates *= len(axis)
            axes.append(axis)
        if n_candidates > max_candidates_per_row:
            raise ValueError(
                f"row {r} expands to {n_candidates} candidates, above the cap "
                f"{max_candidates_per_row}"
            )
        candidates = np.array(list(itertools.product(*axes)), dtype=np.float64)
        candidate_sets.append(candidates)

    return IncompleteDataset(candidate_sets, labels)
