"""The certain-answer engine: one front door, pluggable Codd backends.

The CP side of the repo routes every query through
:mod:`repro.core.planner` — a descriptor, a backend protocol with declared
capabilities, a process-wide registry, and a cost-model-lite planner. This
module is the same architecture for the *database* side of Figure 1, so
the serving stack (``/sql``, ``repro sql``) and the library front doors
(:func:`repro.codd.certain.certain_answers`) share one dispatch path:

* :class:`CoddAnswerBackend` is the executor protocol: ``supports`` /
  ``estimate_cost`` / ``certain`` / ``possible`` over a *database* (a
  name → :class:`~repro.codd.codd_table.CoddTable` mapping — one entry
  for the classic single-table case, several for joins).
* :func:`register_codd_backend` / :func:`get_codd_backend` /
  :func:`codd_backend_names` manage the registry;
  :func:`plan_codd_query` picks the cheapest capable backend and
  :func:`answer_query` executes the plan, returning a
  :class:`CoddAnswerResult` (the relation plus the plan that produced it).

Three backends ship by default:

``vectorized``
    :mod:`repro.codd.vectorized`: the stacked-completion-grid engine for
    select-project(-rename) queries whose grid fits the stacking cap.
    Prepared :class:`~repro.codd.vectorized.StackedTable` grids are kept
    in a small fingerprint-keyed LRU (and the service registry can hand
    its pinned grid in directly). Joins, unions, differences and GROUP BY
    aggregation route through the composite analysis in
    :mod:`repro.codd.joins` / :mod:`repro.codd.aggregate` — pair-table
    hash joins, set-operator combinators and the exact per-group state
    DP — with grid-backed leaf evaluation, whenever the exactness
    conditions hold.
``rowwise``
    The streaming per-row generators (one completion resident at a time)
    — the same query classes (composite analysis included), unbounded
    table size, pure-Python speed.
``naive``
    World enumeration with the enumeration cap, for every query shape,
    multi-table databases included (after
    :func:`repro.codd.certain.prune_database` shrinks the product). Every
    composite decline — a NULL row pairing twice, an incomplete source on
    both sides of a set operator, an aggregation tuple collision — lands
    here, so the fast paths are performance decisions, never semantic ones.

:func:`answer_query` first lowers the query through the logical optimizer
(:mod:`repro.codd.optimizer`, ``optimize=False`` opts out) and records the
rewrites on the result; any optimizer failure falls back to running the
query exactly as written, preserving error behaviour.

All backends return bit-identical :class:`~repro.codd.relation.Relation`
values for any query they all support
(``tests/codd/test_codd_differential.py``).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass

from repro.codd.algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.codd.certain import (
    MAX_NAIVE_WORLDS,
    certain_answers_database,
    certain_select_project_rowwise,
    possible_answers_database,
    possible_select_project_rowwise,
)
from repro.codd.codd_table import CoddTable
from repro.codd.joins import (
    Composite,
    FlatQuery,
    composite_analysis,
    composite_answer,
)
from repro.codd.plan import LogicalPlan
from repro.codd.relation import Relation
from repro.codd.vectorized import (
    MAX_STACKED_CELLS,
    StackedTable,
    certain_answers_vectorized,
    estimate_stacked_cells,
    possible_answers_vectorized,
    unwrap_select_project,
)

__all__ = [
    "MODES",
    "MAX_ROWWISE_CELLS",
    "CoddPlanError",
    "CoddAnswerPlan",
    "CoddAnswerResult",
    "CoddAnswerBackend",
    "register_codd_backend",
    "get_codd_backend",
    "codd_backend_names",
    "capable_codd_backends",
    "plan_codd_query",
    "answer_query",
    "scan_relations",
    "VectorizedCoddBackend",
    "RowwiseCoddBackend",
    "NaiveCoddBackend",
]

#: The two answer modes every backend serves.
MODES = ("certain", "possible")

#: The streaming row-wise path refuses queries whose completion scan would
#: exceed this many cells — ~10x the stacking cap, the point past which a
#: pure-Python scan stops being "slow" and becomes a wedged server thread.
#: Queries above every backend's bound fail fast at the naive world cap
#: instead of hanging.
MAX_ROWWISE_CELLS = 10 * MAX_STACKED_CELLS


class CoddPlanError(ValueError):
    """No backend can serve the query (or an explicit request is incapable)."""


@dataclass(frozen=True)
class CoddAnswerPlan:
    """The engine's decision: which backend answers, and why."""

    backend: str
    reason: str
    cost: float
    considered: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True, eq=False)
class CoddAnswerResult:
    """A certain/possible answer relation plus the plan that produced it.

    ``logical`` is the optimized :class:`~repro.codd.plan.LogicalPlan` the
    engine executed (``None`` when optimization was skipped or declined)
    and ``rewrites`` the rule applications that shaped it — what
    ``/sql?explain=1`` and ``repro sql --explain`` surface.
    """

    relation: Relation
    plan: CoddAnswerPlan
    mode: str
    logical: LogicalPlan | None = None
    rewrites: tuple[str, ...] = ()


def scan_relations(query: Query) -> list[str]:
    """The relation names a query scans, sorted and deduplicated."""
    names: set[str] = set()

    def walk(node: Query) -> None:
        if isinstance(node, Scan):
            names.add(node.relation)
        elif isinstance(node, (Select, Project, Rename, Aggregate)):
            walk(node.child)
        elif isinstance(node, (Join, Union, Difference)):
            walk(node.left)
            walk(node.right)
        else:  # pragma: no cover - exhaustive over Query
            raise TypeError(f"not a query: {node!r}")

    walk(query)
    return sorted(names)


def _database_worlds(database: Mapping[str, CoddTable]) -> int:
    total = 1
    for table in database.values():
        total *= table.n_worlds()
    return total


# ---------------------------------------------------------------------------
# The backend protocol and registry
# ---------------------------------------------------------------------------


class CoddAnswerBackend(ABC):
    """An executor for certain/possible-answer queries over Codd databases."""

    name: str = "abstract"

    @abstractmethod
    def supports(self, query: Query, database: Mapping[str, CoddTable]) -> bool:
        """True iff this backend can serve the query over this database."""

    @abstractmethod
    def estimate_cost(
        self, query: Query, database: Mapping[str, CoddTable]
    ) -> tuple[float, str]:
        """``(cost, reason)`` in the engine's abstract cost unit (one unit
        ≈ one evaluated row completion)."""

    @abstractmethod
    def certain(
        self,
        query: Query,
        database: Mapping[str, CoddTable],
        prepared: Mapping[str, StackedTable] | None = None,
    ) -> Relation:
        """``sure(Q, DB)``."""

    @abstractmethod
    def possible(
        self,
        query: Query,
        database: Mapping[str, CoddTable],
        prepared: Mapping[str, StackedTable] | None = None,
    ) -> Relation:
        """The union counterpart."""

    def answer(
        self,
        query: Query,
        database: Mapping[str, CoddTable],
        mode: str,
        prepared: Mapping[str, StackedTable] | None = None,
    ) -> Relation:
        if mode == "certain":
            return self.certain(query, database, prepared=prepared)
        if mode == "possible":
            return self.possible(query, database, prepared=prepared)
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")


_REGISTRY: OrderedDict[str, CoddAnswerBackend] = OrderedDict()


def register_codd_backend(
    backend: CoddAnswerBackend, replace: bool = False
) -> CoddAnswerBackend:
    """Add a backend to the process-wide registry (``replace`` to override)."""
    if not replace and backend.name in _REGISTRY:
        raise ValueError(f"codd backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_codd_backend(name: str) -> CoddAnswerBackend:
    """The registered backend of that name (:class:`CoddPlanError` if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CoddPlanError(
            f"unknown codd backend {name!r}; registered: {codd_backend_names()}"
        ) from None


def codd_backend_names() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def capable_codd_backends(
    query: Query, database: Mapping[str, CoddTable]
) -> list[CoddAnswerBackend]:
    """Every registered backend that can serve ``query`` over ``database``."""
    return [b for b in _REGISTRY.values() if b.supports(query, database)]


# ---------------------------------------------------------------------------
# Planning and execution
# ---------------------------------------------------------------------------


def plan_codd_query(
    query: Query,
    database: Mapping[str, CoddTable],
    backend: str = "auto",
) -> CoddAnswerPlan:
    """Choose the backend: explicit names are capability-checked, ``auto``
    takes the cheapest capable backend (registration order breaks ties)."""
    if backend != "auto":
        chosen = get_codd_backend(backend)
        if not chosen.supports(query, database):
            raise CoddPlanError(
                f"codd backend {backend!r} cannot serve this query "
                "(shape outside its class, or the table is too large for it)"
            )
        cost, _ = chosen.estimate_cost(query, database)
        return CoddAnswerPlan(
            backend=chosen.name,
            reason="requested explicitly",
            cost=cost,
            considered=((chosen.name, cost),),
        )
    candidates = capable_codd_backends(query, database)
    if not candidates:
        raise CoddPlanError("no registered codd backend can serve this query")
    scored = [(*b.estimate_cost(query, database), b) for b in candidates]
    best_cost, best_reason, best = min(scored, key=lambda item: item[0])
    return CoddAnswerPlan(
        backend=best.name,
        reason=best_reason,
        cost=best_cost,
        considered=tuple((b.name, cost) for cost, _, b in scored),
    )


def answer_query(
    query: Query,
    database: Mapping[str, CoddTable],
    mode: str = "certain",
    backend: str = "auto",
    prepared: Mapping[str, StackedTable] | None = None,
    optimize: bool = True,
) -> CoddAnswerResult:
    """Plan and run one certain/possible-answer query; the one call the
    dispatchers, the SQL service and the CLI all go through.

    ``prepared`` optionally hands pinned
    :class:`~repro.codd.vectorized.StackedTable` grids (keyed by relation
    name) to the vectorized backend — the service registry's warm state.

    With ``optimize`` on (the default) the query is first lowered to a
    :class:`~repro.codd.plan.LogicalPlan` and rewritten by
    :func:`repro.codd.optimizer.optimize`; planning and execution then run
    on the rewritten query, and when the naive backend is chosen the
    :func:`~repro.codd.optimizer.prune_rewrite` records join the rewrite
    trail.  Every rewrite is a per-world equivalence, so answers are
    unchanged; if lowering or rewriting fails for any reason the original
    query runs untouched, preserving the unoptimized error behaviour.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    logical: LogicalPlan | None = None
    rewrites: tuple[str, ...] = ()
    run_query = query
    if optimize:
        from repro.codd.optimizer import optimize_query

        try:
            optimized = optimize_query(query, database)
        except Exception:
            # Malformed queries must fail exactly where (and as) they did
            # before the optimizer existed — during evaluation, below.
            optimized = None
        if optimized is not None:
            logical = optimized.plan
            rewrites = optimized.rewrites
            run_query = optimized.query()
    plan = plan_codd_query(run_query, database, backend=backend)
    if plan.backend == "naive" and optimize and logical is not None:
        from repro.codd.optimizer import prune_rewrite

        try:
            _, prune_records = prune_rewrite(run_query, database)
        except Exception:
            prune_records = ()
        rewrites = rewrites + tuple(prune_records)
    relation = get_codd_backend(plan.backend).answer(
        run_query, database, mode, prepared=prepared
    )
    return CoddAnswerResult(
        relation=relation,
        plan=plan,
        mode=mode,
        logical=logical,
        rewrites=rewrites,
    )


# ---------------------------------------------------------------------------
# The default backends
# ---------------------------------------------------------------------------


def _single_scan_table(
    query: Query, database: Mapping[str, CoddTable]
) -> tuple[str, CoddTable] | None:
    """The (name, table) a select-project query scans, if shape and binding
    line up; ``None`` otherwise."""
    shape = unwrap_select_project(query)
    if shape is None:
        return None
    scan = shape[3]
    table = database.get(scan.relation)
    if table is None:
        return None
    return scan.relation, table


class VectorizedCoddBackend(CoddAnswerBackend):
    """The stacked-completion-grid engine (:mod:`repro.codd.vectorized`).

    Serves select-project(-rename) queries whose grid fits
    :data:`~repro.codd.vectorized.MAX_STACKED_CELLS`. Prepared grids are
    reused: a handed ``prepared`` mapping wins (the service registry pins
    one per Codd table), then a small fingerprint-keyed LRU.
    """

    name = "vectorized"

    def __init__(self, max_prepared: int = 8) -> None:
        if max_prepared < 1:
            raise ValueError(f"max_prepared must be positive, got {max_prepared}")
        self._prepared: OrderedDict[str, StackedTable] = OrderedDict()
        self._max_prepared = max_prepared
        self._lock = threading.Lock()

    def supports(self, query, database):
        bound = _single_scan_table(query, database)
        if bound is not None:
            return estimate_stacked_cells(bound[1]) <= MAX_STACKED_CELLS
        return composite_analysis(query, database, MAX_STACKED_CELLS) is not None

    def estimate_cost(self, query, database):
        bound = _single_scan_table(query, database)
        if bound is not None:
            return (
                float(estimate_stacked_cells(bound[1])),
                "one vectorised pass over the stacked completion grid",
            )
        composite = composite_analysis(query, database, MAX_STACKED_CELLS)
        assert composite is not None
        return (
            composite.estimated_cells(),
            "hash-joined pair tables / set combinators over stacked grids",
        )

    def _stacked_for(
        self,
        name: str,
        table: CoddTable,
        prepared: Mapping[str, StackedTable] | None,
    ) -> StackedTable:
        if prepared is not None:
            handed = prepared.get(name)
            if handed is not None and (
                handed.table is table
                or handed.fingerprint() == table.fingerprint()
            ):
                return handed
        key = table.fingerprint()
        with self._lock:
            stacked = self._prepared.get(key)
            if stacked is not None:
                self._prepared.move_to_end(key)
                return stacked
        stacked = StackedTable(table)
        with self._lock:
            self._prepared[key] = stacked
            self._prepared.move_to_end(key)
            while len(self._prepared) > self._max_prepared:
                self._prepared.popitem(last=False)
        return stacked

    def _evaluate_flat(
        self,
        flat: FlatQuery,
        mode: str,
        prepared: Mapping[str, StackedTable] | None,
    ) -> Relation:
        query = flat.to_query()
        stacked = self._stacked_for(flat.name, flat.table, prepared)
        evaluator, fallback = (
            (certain_answers_vectorized, certain_select_project_rowwise)
            if mode == "certain"
            else (possible_answers_vectorized, possible_select_project_rowwise)
        )
        try:
            return evaluator(query, flat.table, name=flat.name, stacked=stacked)
        except TypeError:
            # Mixed-type ordering comparisons: the grid evaluates every
            # stacked completion at once, so it can hit a non-comparable
            # pair the streaming path never reaches (it short-circuits per
            # row exactly like the naive oracle's per-world evaluation).
            # The reference path's answer-or-error is the semantics of
            # record, so replay the query there.
            return fallback(query, flat.table, name=flat.name)

    def _run(self, query, database, prepared, mode) -> Relation:
        bound = _single_scan_table(query, database)
        if bound is not None:
            # Run the original query directly so the pinned single-table
            # fast path stays byte-for-byte what it was.
            name, table = bound
            stacked = self._stacked_for(name, table, prepared)
            evaluator, fallback = (
                (certain_answers_vectorized, certain_select_project_rowwise)
                if mode == "certain"
                else (possible_answers_vectorized, possible_select_project_rowwise)
            )
            try:
                return evaluator(query, table, name=name, stacked=stacked)
            except TypeError:
                return fallback(query, table, name=name)
        composite = composite_analysis(query, database, MAX_STACKED_CELLS)
        if composite is None:
            raise CoddPlanError(
                "vectorized backend needs a select-project(-rename) query "
                "over a single bound Scan, or a join/set/aggregate tree it "
                "can flatten exactly"
            )
        return composite_answer(
            composite, mode, lambda flat, m: self._evaluate_flat(flat, m, prepared)
        )

    def certain(self, query, database, prepared=None):
        return self._run(query, database, prepared, "certain")

    def possible(self, query, database, prepared=None):
        return self._run(query, database, prepared, "possible")


class RowwiseCoddBackend(CoddAnswerBackend):
    """The streaming per-row tractable path: same select-project class as
    ``vectorized``, one completion resident at a time, memory-free but
    pure-Python — bounded by :data:`MAX_ROWWISE_CELLS` so a single
    pathological request cannot pin a server thread for hours."""

    name = "rowwise"

    def supports(self, query, database):
        bound = _single_scan_table(query, database)
        if bound is not None:
            return estimate_stacked_cells(bound[1]) <= MAX_ROWWISE_CELLS
        return composite_analysis(query, database, MAX_ROWWISE_CELLS) is not None

    def estimate_cost(self, query, database):
        bound = _single_scan_table(query, database)
        if bound is not None:
            # The same completions as the vectorized grid, each paying a
            # Python-level loop iteration instead of a vector-op share.
            return (
                8.0 * float(estimate_stacked_cells(bound[1])),
                "streaming per-row completion scan",
            )
        composite = composite_analysis(query, database, MAX_ROWWISE_CELLS)
        assert composite is not None
        return (
            8.0 * composite.estimated_cells(),
            "hash-joined pair tables / set combinators, streamed row-wise",
        )

    @staticmethod
    def _evaluate_flat(flat: FlatQuery, mode: str) -> Relation:
        query = flat.to_query()
        if mode == "certain":
            return certain_select_project_rowwise(query, flat.table, name=flat.name)
        return possible_select_project_rowwise(query, flat.table, name=flat.name)

    def _run(self, query, database, mode) -> Relation:
        bound = _single_scan_table(query, database)
        if bound is not None:
            name, table = bound
            if mode == "certain":
                return certain_select_project_rowwise(query, table, name=name)
            return possible_select_project_rowwise(query, table, name=name)
        composite = composite_analysis(query, database, MAX_ROWWISE_CELLS)
        if composite is None:
            raise CoddPlanError(
                "rowwise backend needs a select-project(-rename) query over "
                "a single bound Scan, or a join/set/aggregate tree it can "
                "flatten exactly"
            )
        return composite_answer(composite, mode, self._evaluate_flat)

    def certain(self, query, database, prepared=None):
        return self._run(query, database, "certain")

    def possible(self, query, database, prepared=None):
        return self._run(query, database, "possible")


class NaiveCoddBackend(CoddAnswerBackend):
    """Pruned world enumeration: any query shape, any number of tables.

    :func:`~repro.codd.certain.prune_database` first collapses unreferenced
    tables and drops rows no filter chain can accept; the enumeration cap
    applies to the *pruned* world product. The unpruned single-table
    oracles (:func:`~repro.codd.certain.certain_answers_naive`) stay
    available for differential testing.
    """

    name = "naive"

    def supports(self, query, database):
        return True

    def estimate_cost(self, query, database):
        worlds = _database_worlds(database)
        rows = sum(len(table) for table in database.values())
        # Each world materialises whole Relation objects and re-runs the
        # evaluator — far heavier per unit than a grid cell or a streamed
        # completion, hence the large constant factor.
        cost = float(min(worlds, 10 * MAX_NAIVE_WORLDS)) * max(rows, 1) * 32.0
        return cost, "pruned enumeration of the possible-world product"

    def certain(self, query, database, prepared=None):
        return certain_answers_database(query, database)

    def possible(self, query, database, prepared=None):
        return possible_answers_database(query, database)


# ---------------------------------------------------------------------------
# Default registry
# ---------------------------------------------------------------------------

register_codd_backend(VectorizedCoddBackend())
register_codd_backend(RowwiseCoddBackend())
register_codd_backend(NaiveCoddBackend())
