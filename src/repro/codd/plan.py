"""Logical plans: a schema-annotated IR between the algebra AST and engines.

:mod:`repro.codd.algebra` trees are what users (and the SQL front door)
build, but they carry no schema information — a ``Project`` does not know
what its child produces until evaluation time.  The optimizer needs that
information to decide, e.g., which side of a ``Join`` a filter conjunct can
move below.  This module lowers an :class:`~repro.codd.algebra.Query` into
a tree of frozen *plan nodes*, each annotated with its output schema
(inferred against a catalog of base-relation schemas), and converts back:

    ``Query`` --:func:`lower`--> ``PlanNode`` --:func:`to_query`--> ``Query``

The round trip is the identity on semantics: plan nodes mirror the algebra
one-to-one, so every rewrite in :mod:`repro.codd.optimizer` is a classical
set-semantics equivalence, valid in every possible world and therefore
valid for certain/possible answers.

:func:`render` pretty-prints a plan as an indented tree (the ``explain``
surface of the CLI), and :func:`plan_dict` produces the JSON-safe nested
form the HTTP broker returns for ``explain`` requests.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.codd.algebra import (
    Aggregate,
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Difference,
    Disjunction,
    Join,
    Literal,
    Negation,
    Predicate,
    Project,
    Query,
    Rename,
    Scan,
    Select,
    Union,
)

__all__ = [
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "ProjectNode",
    "RenameNode",
    "JoinNode",
    "UnionNode",
    "DifferenceNode",
    "AggregateNode",
    "LogicalPlan",
    "lower",
    "to_query",
    "render",
    "render_predicate",
    "plan_dict",
    "scan_node",
    "select_node",
    "project_node",
    "rename_node",
    "join_node",
    "union_node",
    "difference_node",
    "aggregate_node",
]


# ----------------------------------------------------------------------
# Plan nodes: algebra operators annotated with their output schema
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanNode:
    relation: str
    schema: tuple[str, ...]


@dataclass(frozen=True)
class SelectNode:
    child: "PlanNode"
    predicate: Predicate
    schema: tuple[str, ...]


@dataclass(frozen=True)
class ProjectNode:
    child: "PlanNode"
    attributes: tuple[str, ...]
    schema: tuple[str, ...]


@dataclass(frozen=True)
class RenameNode:
    child: "PlanNode"
    mapping: tuple[tuple[str, str], ...]
    schema: tuple[str, ...]


@dataclass(frozen=True)
class JoinNode:
    left: "PlanNode"
    right: "PlanNode"
    schema: tuple[str, ...]


@dataclass(frozen=True)
class UnionNode:
    left: "PlanNode"
    right: "PlanNode"
    schema: tuple[str, ...]


@dataclass(frozen=True)
class DifferenceNode:
    left: "PlanNode"
    right: "PlanNode"
    schema: tuple[str, ...]


@dataclass(frozen=True)
class AggregateNode:
    child: "PlanNode"
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    schema: tuple[str, ...]


PlanNode = (
    ScanNode
    | SelectNode
    | ProjectNode
    | RenameNode
    | JoinNode
    | UnionNode
    | DifferenceNode
    | AggregateNode
)


# ----------------------------------------------------------------------
# Schema-checked constructors (the only way rewrite rules build nodes)
# ----------------------------------------------------------------------
def scan_node(relation: str, schema: Sequence[str]) -> ScanNode:
    return ScanNode(relation, tuple(schema))


def select_node(child: PlanNode, predicate: Predicate) -> SelectNode:
    # Predicate attributes are intentionally *not* validated here: the
    # classical evaluator only resolves them row by row, so an unknown
    # attribute over an empty relation is not an error there either.
    return SelectNode(child, predicate, child.schema)


def project_node(child: PlanNode, attributes: Sequence[str]) -> ProjectNode:
    attrs = tuple(attributes)
    for name in attrs:
        if name not in child.schema:
            raise KeyError(f"attribute {name!r} not in schema {child.schema}")
    if len(set(attrs)) != len(attrs):
        raise ValueError(f"duplicate attribute names in projection {attrs}")
    return ProjectNode(child, attrs, attrs)


def rename_node(child: PlanNode, mapping: Mapping[str, str]) -> RenameNode:
    pairs = tuple(sorted(mapping.items()))
    renamer = dict(pairs)
    schema = tuple(renamer.get(name, name) for name in child.schema)
    if len(set(schema)) != len(schema):
        raise ValueError(f"duplicate attribute names in schema {schema}")
    return RenameNode(child, pairs, schema)


def join_node(left: PlanNode, right: PlanNode) -> JoinNode:
    extra = tuple(a for a in right.schema if a not in left.schema)
    return JoinNode(left, right, left.schema + extra)


def union_node(left: PlanNode, right: PlanNode) -> UnionNode:
    _check_compatible(left, right, "union")
    return UnionNode(left, right, left.schema)


def difference_node(left: PlanNode, right: PlanNode) -> DifferenceNode:
    _check_compatible(left, right, "difference")
    return DifferenceNode(left, right, left.schema)


def aggregate_node(
    child: PlanNode,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> AggregateNode:
    keys = tuple(group_by)
    specs = tuple(aggregates)
    for name in keys:
        if name not in child.schema:
            raise KeyError(f"group-by attribute {name!r} not in schema {child.schema}")
    for spec in specs:
        if spec.attribute is not None and spec.attribute not in child.schema:
            raise KeyError(
                f"aggregate attribute {spec.attribute!r} not in schema {child.schema}"
            )
    # Reuse the algebra node's own validation of funcs/aliases.
    Aggregate(Scan("_"), keys, specs)
    return AggregateNode(child, keys, specs, keys + tuple(s.alias for s in specs))


def _check_compatible(left: PlanNode, right: PlanNode, op: str) -> None:
    if left.schema != right.schema:
        raise ValueError(
            f"{op} needs identical schemas, got {left.schema} and {right.schema}"
        )


# ----------------------------------------------------------------------
# Lowering and raising
# ----------------------------------------------------------------------
def lower(query: Query, catalog: Mapping[str, Sequence[str]]) -> PlanNode:
    """Lower an algebra query to a schema-annotated plan tree.

    ``catalog`` maps relation names to their schemas (``LogicalPlan.catalog_of``
    builds one from any database-like mapping).  Raises :class:`KeyError` for
    unknown relations or projected/grouped attributes — the same error class
    evaluation would raise, just earlier.
    """
    if isinstance(query, Scan):
        try:
            schema = catalog[query.relation]
        except KeyError:
            raise KeyError(
                f"relation {query.relation!r} not in database {sorted(catalog)}"
            ) from None
        return scan_node(query.relation, schema)
    if isinstance(query, Select):
        return select_node(lower(query.child, catalog), query.predicate)
    if isinstance(query, Project):
        return project_node(lower(query.child, catalog), query.attributes)
    if isinstance(query, Rename):
        return rename_node(lower(query.child, catalog), dict(query.mapping))
    if isinstance(query, Join):
        return join_node(lower(query.left, catalog), lower(query.right, catalog))
    if isinstance(query, Union):
        return union_node(lower(query.left, catalog), lower(query.right, catalog))
    if isinstance(query, Difference):
        return difference_node(lower(query.left, catalog), lower(query.right, catalog))
    if isinstance(query, Aggregate):
        return aggregate_node(lower(query.child, catalog), query.group_by, query.aggregates)
    raise TypeError(f"not a query: {query!r}")


def to_query(node: PlanNode) -> Query:
    """Raise a plan tree back to the plain algebra AST the engines execute."""
    if isinstance(node, ScanNode):
        return Scan(node.relation)
    if isinstance(node, SelectNode):
        return Select(to_query(node.child), node.predicate)
    if isinstance(node, ProjectNode):
        return Project(to_query(node.child), node.attributes)
    if isinstance(node, RenameNode):
        return Rename(to_query(node.child), dict(node.mapping))
    if isinstance(node, JoinNode):
        return Join(to_query(node.left), to_query(node.right))
    if isinstance(node, UnionNode):
        return Union(to_query(node.left), to_query(node.right))
    if isinstance(node, DifferenceNode):
        return Difference(to_query(node.left), to_query(node.right))
    if isinstance(node, AggregateNode):
        return Aggregate(to_query(node.child), node.group_by, node.aggregates)
    raise TypeError(f"not a plan node: {node!r}")


# ----------------------------------------------------------------------
# The user-facing wrapper
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogicalPlan:
    """A plan tree plus the catalog it was inferred against."""

    root: PlanNode
    catalog: tuple[tuple[str, tuple[str, ...]], ...]

    @property
    def schema(self) -> tuple[str, ...]:
        return self.root.schema

    @classmethod
    def from_query(
        cls, query: Query, catalog: Mapping[str, Sequence[str]]
    ) -> "LogicalPlan":
        frozen = tuple(sorted((name, tuple(schema)) for name, schema in catalog.items()))
        return cls(lower(query, dict(frozen)), frozen)

    @staticmethod
    def catalog_of(database: Mapping[str, Any]) -> dict[str, tuple[str, ...]]:
        """Build a catalog from anything whose values expose ``.schema``."""
        return {name: tuple(table.schema) for name, table in database.items()}

    def with_root(self, root: PlanNode) -> "LogicalPlan":
        return LogicalPlan(root, self.catalog)

    def render(self) -> str:
        return render(self.root)


# ----------------------------------------------------------------------
# Rendering (CLI explain) and JSON form (wire explain)
# ----------------------------------------------------------------------
def render_predicate(pred: Predicate) -> str:
    """A compact SQL-ish rendering of a predicate tree."""
    if isinstance(pred, Comparison):
        return f"{_render_term(pred.left)} {pred.op} {_render_term(pred.right)}"
    if isinstance(pred, Conjunction):
        return "(" + " AND ".join(render_predicate(p) for p in pred.parts) + ")"
    if isinstance(pred, Disjunction):
        return "(" + " OR ".join(render_predicate(p) for p in pred.parts) + ")"
    if isinstance(pred, Negation):
        return f"NOT {render_predicate(pred.part)}"
    raise TypeError(f"not a predicate: {pred!r}")


def _render_term(term: Attribute | Literal) -> str:
    if isinstance(term, Attribute):
        return term.name
    return repr(term.value)


def _describe(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        return f"Scan {node.relation} :: {', '.join(node.schema)}"
    if isinstance(node, SelectNode):
        return f"Select {render_predicate(node.predicate)}"
    if isinstance(node, ProjectNode):
        return f"Project [{', '.join(node.attributes)}]"
    if isinstance(node, RenameNode):
        pairs = ", ".join(f"{old}->{new}" for old, new in node.mapping)
        return f"Rename {{{pairs}}}"
    if isinstance(node, JoinNode):
        return f"Join :: {', '.join(node.schema)}"
    if isinstance(node, UnionNode):
        return "Union"
    if isinstance(node, DifferenceNode):
        return "Difference"
    if isinstance(node, AggregateNode):
        aggs = ", ".join(
            f"{s.func}({s.attribute if s.attribute is not None else '*'}) AS {s.alias}"
            for s in node.aggregates
        )
        keys = ", ".join(node.group_by) if node.group_by else "()"
        return f"Aggregate group by {keys} :: {aggs}"
    raise TypeError(f"not a plan node: {node!r}")


def _children(node: PlanNode) -> tuple[PlanNode, ...]:
    if isinstance(node, (SelectNode, ProjectNode, RenameNode, AggregateNode)):
        return (node.child,)
    if isinstance(node, (JoinNode, UnionNode, DifferenceNode)):
        return (node.left, node.right)
    return ()


def render(node: PlanNode, indent: int = 0) -> str:
    """Pretty-print a plan as an indented tree."""
    lines = ["  " * indent + _describe(node)]
    for child in _children(node):
        lines.append(render(child, indent + 1))
    return "\n".join(lines)


def plan_dict(node: PlanNode) -> dict[str, Any]:
    """A JSON-safe nested dict of the plan tree (the wire ``explain`` form)."""
    out: dict[str, Any] = {"op": type(node).__name__.removesuffix("Node").lower(),
                           "schema": list(node.schema)}
    if isinstance(node, ScanNode):
        out["relation"] = node.relation
    elif isinstance(node, SelectNode):
        out["predicate"] = render_predicate(node.predicate)
    elif isinstance(node, ProjectNode):
        out["attributes"] = list(node.attributes)
    elif isinstance(node, RenameNode):
        out["mapping"] = {old: new for old, new in node.mapping}
    elif isinstance(node, AggregateNode):
        out["group_by"] = list(node.group_by)
        out["aggregates"] = [
            {"func": s.func, "attribute": s.attribute, "alias": s.alias}
            for s in node.aggregates
        ]
    children = _children(node)
    if len(children) == 1:
        out["input"] = plan_dict(children[0])
    elif children:
        out["inputs"] = [plan_dict(c) for c in children]
    return out
