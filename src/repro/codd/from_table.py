"""From a dirty mixed-type table to a Codd table.

The data side of the library (:mod:`repro.data`) represents dirtiness as
NaN / missing-category cells; the database side (:mod:`repro.codd`)
represents it as NULL variables over finite domains. This module converts
the former into the latter — missing numeric cells get the column's repair
candidates (min/p25/mean/p75/max) as their domain, missing categorical
cells the column's top categories — so the *same file* can answer both of
Figure 1's questions: certain answers to a SQL query and certain
predictions of a classifier.
"""

from __future__ import annotations

import numpy as np

from repro.codd.codd_table import CoddTable, Null
from repro.data.io import CsvSchema
from repro.data.repairs import RepairSpace
from repro.data.table import MISSING_CATEGORY, Table

__all__ = ["codd_table_from_dirty_table"]


def codd_table_from_dirty_table(
    table: Table,
    schema: CsvSchema | None = None,
    repair_space: RepairSpace | None = None,
) -> CoddTable:
    """Convert a dirty :class:`Table` into a :class:`CoddTable`.

    Parameters
    ----------
    table:
        The dirty table; missing cells become NULL variables.
    schema:
        Optional CSV schema. With it, categorical codes and labels are
        decoded back to their original strings (so SQL predicates can say
        ``brand = 'acme'``); without it, integer codes are used.
    repair_space:
        Repair candidates defining the NULL domains; built from ``table``
        with defaults when omitted.

    Returns
    -------
    CoddTable
        Schema is ``numeric_names + categorical_names + [label]``; the label
        column is always complete.
    """
    if repair_space is None:
        repair_space = RepairSpace(table)
    label_name = schema.label_name if schema is not None else "label"
    out_schema = list(table.numeric_names) + list(table.categorical_names) + [label_name]

    def decode_cat(column_index: int, code: int):
        if schema is None:
            return int(code)
        name = table.categorical_names[column_index]
        encoding = schema.category_encodings[name]
        if 0 <= code < len(encoding):
            return encoding[code]
        return f"<other:{code}>"  # repair candidates include a fresh "other" code

    rows = []
    for r in range(table.n_rows):
        cells: list[object] = []
        for j in range(table.n_numeric):
            value = table.numeric[r, j]
            if np.isnan(value):
                domain = [float(v) for v in repair_space.numeric_candidates[j]]
                cells.append(Null(domain))
            else:
                cells.append(float(value))
        for j in range(table.n_categorical):
            code = int(table.categorical[r, j])
            if code == MISSING_CATEGORY:
                domain = [decode_cat(j, c) for c in repair_space.categorical_candidates[j]]
                cells.append(Null(domain))
            else:
                cells.append(decode_cat(j, code))
        label = int(table.labels[r])
        cells.append(schema.decode_label(label) if schema is not None else label)
        rows.append(cells)
    return CoddTable(out_schema, rows)
