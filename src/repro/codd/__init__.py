"""Codd tables, c-tables and certain answers (the database side of Figure 1).

The paper motivates *certain predictions* as the machine-learning analogue of
*certain answers* over incomplete databases: a Codd table with ``n`` NULL
variables over finite domains represents exponentially many possible worlds,
and a query answer is *certain* when it appears in the answer over every
world.  This subpackage implements that database side of the bridge:

* :mod:`repro.codd.relation` — complete relations with named attributes and
  set semantics;
* :mod:`repro.codd.algebra` — a small relational-algebra AST (select,
  project, join, union, difference, rename) with an analysable predicate
  language;
* :mod:`repro.codd.codd_table` — Codd tables: relations whose cells may hold
  NULL variables with finite domains, inducing a set of possible worlds;
* :mod:`repro.codd.certain` — certain and possible answers, both by naive
  world enumeration and by the tractable three-valued evaluation for
  select-project queries;
* :mod:`repro.codd.ctable` — conditional tables (c-tables), a strong
  representation system closed under the full algebra;
* :mod:`repro.codd.bridge` — the Figure-1 bridge: turning a Codd table with
  a label column into an :class:`~repro.core.dataset.IncompleteDataset` so
  the CP queries can run where the SQL queries stop.
"""

from repro.codd.aggregate import summarize
from repro.codd.algebra import (
    Aggregate,
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Difference,
    Disjunction,
    Join,
    Literal,
    Negation,
    Project,
    Query,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
)
from repro.codd.bridge import codd_table_to_incomplete_dataset
from repro.codd.certain import (
    certain_answers,
    certain_answers_database,
    certain_answers_naive,
    certain_answers_select_project,
    possible_answers,
    possible_answers_database,
    possible_answers_naive,
    possible_answers_select_project,
    prune_database,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.engine import (
    CoddAnswerBackend,
    CoddAnswerPlan,
    CoddAnswerResult,
    CoddPlanError,
    answer_query,
    capable_codd_backends,
    codd_backend_names,
    get_codd_backend,
    plan_codd_query,
    register_codd_backend,
    scan_relations,
)
from repro.codd.vectorized import (
    StackedTable,
    certain_answers_vectorized,
    possible_answers_vectorized,
)
from repro.codd.ctable import (
    CTable,
    ConditionalRow,
    ctable_certain_answers,
    ctable_certain_rows,
    ctable_possible_answers,
    evaluate_ctable,
)
from repro.codd.from_table import codd_table_from_dirty_table
from repro.codd.optimizer import optimize, optimize_query, prune_rewrite
from repro.codd.plan import LogicalPlan, plan_dict
from repro.codd.relation import Relation
from repro.codd.sql import SqlError, parse_sql, referenced_tables

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "Attribute",
    "CTable",
    "CoddAnswerBackend",
    "CoddAnswerPlan",
    "CoddAnswerResult",
    "CoddPlanError",
    "CoddTable",
    "Comparison",
    "ConditionalRow",
    "Conjunction",
    "Difference",
    "Disjunction",
    "Join",
    "Literal",
    "LogicalPlan",
    "Negation",
    "Null",
    "Project",
    "Query",
    "Relation",
    "Rename",
    "Scan",
    "Select",
    "StackedTable",
    "Union",
    "answer_query",
    "capable_codd_backends",
    "certain_answers",
    "certain_answers_database",
    "certain_answers_naive",
    "certain_answers_select_project",
    "certain_answers_vectorized",
    "codd_backend_names",
    "codd_table_from_dirty_table",
    "codd_table_to_incomplete_dataset",
    "ctable_certain_answers",
    "ctable_certain_rows",
    "ctable_possible_answers",
    "evaluate",
    "evaluate_ctable",
    "get_codd_backend",
    "optimize",
    "optimize_query",
    "parse_sql",
    "plan_codd_query",
    "plan_dict",
    "possible_answers",
    "possible_answers_database",
    "possible_answers_naive",
    "possible_answers_select_project",
    "possible_answers_vectorized",
    "prune_database",
    "prune_rewrite",
    "referenced_tables",
    "register_codd_backend",
    "scan_relations",
    "summarize",
    "SqlError",
]
