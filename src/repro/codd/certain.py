"""Certain and possible answers over Codd tables.

Implements the paper's §1 definition

    ``sure(Q, T) = ∩ { Q(I) | I ∈ rep(T) }``

three ways:

* :func:`certain_answers_naive` / :func:`possible_answers_naive` — literal
  world enumeration, usable as a test oracle on small tables (this is the
  same role :mod:`repro.core.bruteforce` plays for the CP queries);
* :func:`certain_answers_select_project` — the classic tractable evaluation
  for select-project queries over a single Codd table: because every NULL
  variable appears in exactly one cell, rows are independent, and a constant
  tuple is certain iff **some row yields it under every valuation of that
  row's own variables**. Since PR 5 the per-row check runs on the columnar
  engine of :mod:`repro.codd.vectorized` (stacked completion arrays, one
  vectorised predicate pass, per-row ``reduceat`` reductions); the original
  streaming per-row generators survive as :func:`certain_select_project_rowwise`
  — the memory-bounded fallback the ``rowwise`` backend serves when a grid
  would exceed :data:`repro.codd.vectorized.MAX_STACKED_CELLS`.
* :func:`certain_answers_database` / :func:`possible_answers_database` —
  multi-table databases (worlds are products of per-table worlds). Before
  enumerating, :func:`prune_database` shrinks the product: tables the query
  never scans collapse to a single world, and rows that cannot pass the
  filter chain above *any* of their table's scans are dropped — both sound
  for arbitrary queries, and together often the difference between an
  enumerable product and a blown cap.

:func:`certain_answers` / :func:`possible_answers` dispatch through the
backend registry of :mod:`repro.codd.engine` (vectorized → rowwise → naive
by cost). Both validate the ``name=`` binding against the query's
:class:`~repro.codd.algebra.Scan` — a query over ``person`` no longer
silently evaluates against a table bound as ``T``.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from typing import Any

from repro.codd.algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation
from repro.codd.vectorized import (
    certain_answers_vectorized,
    possible_answers_vectorized,
    resolve_select_project_shape,
)

__all__ = [
    "certain_answers",
    "certain_answers_database",
    "certain_answers_naive",
    "certain_answers_select_project",
    "certain_select_project_rowwise",
    "possible_answers",
    "possible_answers_database",
    "possible_answers_naive",
    "possible_answers_select_project",
    "possible_select_project_rowwise",
    "prune_database",
]

#: Refuse naive enumeration beyond this many worlds.
MAX_NAIVE_WORLDS = 1_000_000

#: Rows whose local completion count exceeds this are conservatively kept
#: by :func:`prune_database` (checking them would cost more than they save).
MAX_PRUNE_COMPLETIONS = 4_096


# ----------------------------------------------------------------------
# Naive oracle: enumerate every world
# ----------------------------------------------------------------------
def _check_enumerable(table: CoddTable) -> None:
    n = table.n_worlds()
    if n > MAX_NAIVE_WORLDS:
        raise ValueError(
            f"table has {n} possible worlds, above the naive-enumeration cap "
            f"{MAX_NAIVE_WORLDS}; use the tractable select-project evaluation"
        )


def certain_answers_naive(query: Query, table: CoddTable, name: str = "T") -> Relation:
    """``sure(Q, T)`` by intersecting ``Q`` over every possible world.

    ``name`` is the relation name the query's :class:`Scan` nodes refer to.
    """
    _check_enumerable(table)
    result: Relation | None = None
    for world in table.possible_worlds():
        answer = evaluate(query, {name: world})
        if result is None:
            result = answer
        else:
            result = result.with_rows(result.rows & answer.rows)
        if not result.rows:
            break  # the intersection can only shrink
    assert result is not None  # at least one world always exists
    return result


def possible_answers_naive(query: Query, table: CoddTable, name: str = "T") -> Relation:
    """The union counterpart: tuples appearing in *some* world's answer."""
    _check_enumerable(table)
    result: Relation | None = None
    for world in table.possible_worlds():
        answer = evaluate(query, {name: world})
        result = answer if result is None else result.with_rows(result.rows | answer.rows)
    assert result is not None
    return result


# ----------------------------------------------------------------------
# Multi-table databases (worlds are products of per-table worlds)
# ----------------------------------------------------------------------
def _iter_database_worlds(database: Mapping[str, CoddTable]):
    # The first table's worlds stream lazily (itertools.product would
    # materialise them all up front — for the common single-table case
    # that is the whole world set, and certain-answer enumeration breaks
    # early once the intersection empties); the remaining tables' worlds
    # are re-iterated and so are materialised once each.
    names = sorted(database)
    rest_worlds = [list(database[name].possible_worlds()) for name in names[1:]]
    for first in database[names[0]].possible_worlds():
        for combo in itertools.product(*rest_worlds):
            yield dict(zip(names, (first, *combo)))


def _check_database_enumerable(database: Mapping[str, CoddTable]) -> None:
    total = 1
    for table in database.values():
        total *= table.n_worlds()
    if total > MAX_NAIVE_WORLDS:
        raise ValueError(
            f"database has {total} possible worlds, above the naive-enumeration "
            f"cap {MAX_NAIVE_WORLDS}"
        )


def _first_world_table(table: CoddTable) -> CoddTable:
    """The table with every NULL fixed to its first domain value (1 world)."""
    if table.is_complete():
        return table
    rows = [
        tuple(
            cell.domain[0] if isinstance(cell, Null) else cell for cell in row
        )
        for row in table.rows
    ]
    return CoddTable(table.schema, rows)


def _scan_chains(query: Query) -> dict[str, list[Query]]:
    """Map each scanned relation name to the maximal unary (σ/π/ρ) chain
    rooted above each of its :class:`Scan` occurrences.

    A chain equal to the bare ``Scan`` (or containing no ``Select``)
    filters nothing; :func:`prune_database` treats such occurrences as
    keeping every row.
    """
    chains: dict[str, list[Query]] = {}

    def chain_scan(node: Query) -> Scan | None:
        while isinstance(node, (Select, Project, Rename)):
            node = node.child
        return node if isinstance(node, Scan) else None

    def walk(node: Query) -> None:
        scan = chain_scan(node)
        if scan is not None:
            chains.setdefault(scan.relation, []).append(node)
            return
        if isinstance(node, (Select, Project, Rename)):
            walk(node.child)
        elif isinstance(node, Aggregate):
            walk(node.child)
        elif isinstance(node, (Join, Union, Difference)):
            walk(node.left)
            walk(node.right)
        else:  # pragma: no cover - exhaustive over Query
            raise TypeError(f"not a query: {node!r}")

    walk(query)
    return chains


def _chain_filters(chain: Query) -> bool:
    node = chain
    while isinstance(node, (Select, Project, Rename)):
        if isinstance(node, Select):
            return True
        node = node.child
    return False


def _row_local_valuations(row: tuple[Any, ...]):
    """All completions of one row, enumerating only its own NULL domains."""
    null_cols = [c for c, cell in enumerate(row) if isinstance(cell, Null)]
    domains = [row[c].domain for c in null_cols]
    for combo in itertools.product(*domains):
        cells = list(row)
        for c, value in zip(null_cols, combo):
            cells[c] = value
        yield tuple(cells)


def _row_can_contribute(
    row: tuple[Any, ...], schema: tuple[str, ...], name: str, chains: list[Query]
) -> bool:
    """Can some completion of ``row`` survive some scan occurrence's filters?"""
    n_completions = 1
    for cell in row:
        if isinstance(cell, Null):
            n_completions *= len(cell.domain)
            if n_completions > MAX_PRUNE_COMPLETIONS:
                return True  # conservatively keep expensive rows
    for chain in chains:
        for completion in _row_local_valuations(row):
            if evaluate(chain, {name: Relation(schema, [completion])}).rows:
                return True
    return False


def prune_database(
    query: Query, database: Mapping[str, CoddTable]
) -> dict[str, CoddTable]:
    """Shrink a database's world product without changing any query answer.

    Two sound reductions, applied before naive multi-table enumeration:

    * a table the query never scans is collapsed to one arbitrary world
      (its variables cannot influence the answer);
    * a row is dropped when, at **every** scan occurrence of its table,
      the unary select chain directly above that scan rejects **all** of
      the row's local completions — such a row contributes nothing to the
      relation value flowing upward in any world, so removing it (and its
      variables, multiplicatively shrinking the world product) is sound
      even under ``Difference`` / ``Negation`` higher up.

    Rows under a bare (unfiltered) scan occurrence are always kept, as are
    rows whose local completion count exceeds ``MAX_PRUNE_COMPLETIONS``.
    """
    chains = _scan_chains(query)
    pruned: dict[str, CoddTable] = {}
    for name, table in database.items():
        occurrences = chains.get(name)
        if occurrences is None:
            pruned[name] = _first_world_table(table)
            continue
        if any(not _chain_filters(chain) for chain in occurrences):
            pruned[name] = table
            continue
        kept = [
            row
            for row in table.rows
            if _row_can_contribute(row, table.schema, name, occurrences)
        ]
        pruned[name] = (
            table if len(kept) == len(table.rows) else CoddTable(table.schema, kept)
        )
    return pruned


def certain_answers_database(
    query: Query, database: Mapping[str, CoddTable], prune: bool = True
) -> Relation:
    """``sure(Q, DB)`` over several Codd tables (e.g. a join across two).

    Worlds of the database are the products of each table's worlds (tables
    are independent); answers certain in every combination are returned.
    ``prune=True`` (default) first applies :func:`prune_database`, so the
    world-count guard is checked against the pruned product — often the
    difference between an answer and a blown enumeration cap.
    """
    pruned = dict(prune_database(query, database) if prune else database)
    _check_database_enumerable(pruned)
    result: Relation | None = None
    for world in _iter_database_worlds(pruned):
        answer = evaluate(query, world)
        result = answer if result is None else result.with_rows(result.rows & answer.rows)
        if not result.rows:
            break
    assert result is not None
    return result


def possible_answers_database(
    query: Query, database: Mapping[str, CoddTable], prune: bool = True
) -> Relation:
    """Union counterpart of :func:`certain_answers_database`."""
    pruned = dict(prune_database(query, database) if prune else database)
    _check_database_enumerable(pruned)
    result: Relation | None = None
    for world in _iter_database_worlds(pruned):
        answer = evaluate(query, world)
        result = answer if result is None else result.with_rows(result.rows | answer.rows)
    assert result is not None
    return result


# ----------------------------------------------------------------------
# Tractable select-project evaluation
# ----------------------------------------------------------------------
def certain_select_project_rowwise(
    query: Query, table: CoddTable, name: str = "T"
) -> Relation:
    """The streaming per-row reference path (one completion in memory at a
    time); semantics identical to :func:`certain_answers_select_project`.

    Correctness argument (rows independent because every variable appears in
    one cell): a constant tuple ``u`` is in ``Q(I)`` for every world ``I``
    iff some row produces ``u`` under **all** of its own completions — if
    every row had a failing completion, combining those completions would
    build a world whose answer misses ``u``.
    """
    select, schema, out_schema, out_indices = resolve_select_project_shape(
        query, table, name, "certain"
    )
    certain_rows: set[tuple[Any, ...]] = set()
    for row in table.rows:
        completions = iter(_row_local_valuations(row))
        first = next(completions)
        if select is not None and not select.predicate.holds(schema, first):
            continue
        candidate = tuple(first[i] for i in out_indices)
        ok = True
        for completion in completions:
            if select is not None and not select.predicate.holds(schema, completion):
                ok = False
                break
            if tuple(completion[i] for i in out_indices) != candidate:
                ok = False
                break
        if ok:
            certain_rows.add(candidate)
    return Relation(out_schema, certain_rows)


def possible_select_project_rowwise(
    query: Query, table: CoddTable, name: str = "T"
) -> Relation:
    """Streaming possible answers: some row, some completion."""
    select, schema, out_schema, out_indices = resolve_select_project_shape(
        query, table, name, "possible"
    )
    possible_rows: set[tuple[Any, ...]] = set()
    for row in table.rows:
        for completion in _row_local_valuations(row):
            if select is None or select.predicate.holds(schema, completion):
                possible_rows.add(tuple(completion[i] for i in out_indices))
    return Relation(out_schema, possible_rows)


def certain_answers_select_project(
    query: Query, table: CoddTable, name: str = "T"
) -> Relation:
    """Certain answers for a select-project(-rename) query over one Codd
    table, served by the vectorised columnar engine.

    Mixed-type ordering comparisons the stacked grid cannot evaluate all
    at once are replayed on the streaming row-wise path, whose
    short-circuit order matches the naive oracle's per-world evaluation —
    so this front door answers (or errors) exactly like the reference.
    """
    try:
        return certain_answers_vectorized(query, table, name=name)
    except TypeError:
        return certain_select_project_rowwise(query, table, name=name)


def possible_answers_select_project(
    query: Query, table: CoddTable, name: str = "T"
) -> Relation:
    """Possible answers for the same query fragment, vectorised (with the
    same row-wise replay on mixed-type ordering comparisons)."""
    try:
        return possible_answers_vectorized(query, table, name=name)
    except TypeError:
        return possible_select_project_rowwise(query, table, name=name)


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def certain_answers(
    query: Query, table: CoddTable, name: str = "T", backend: str = "auto"
) -> Relation:
    """``sure(Q, T)``: the cheapest capable engine backend (vectorised grid
    when the shape and size allow, streaming row-wise, else naive
    enumeration with the world-count guard). ``backend`` forces one."""
    from repro.codd.engine import answer_query

    return answer_query(query, {name: table}, mode="certain", backend=backend).relation


def possible_answers(
    query: Query, table: CoddTable, name: str = "T", backend: str = "auto"
) -> Relation:
    """Possible answers through the same engine dispatch."""
    from repro.codd.engine import answer_query

    return answer_query(query, {name: table}, mode="possible", backend=backend).relation
