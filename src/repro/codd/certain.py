"""Certain and possible answers over Codd tables.

Implements the paper's §1 definition

    ``sure(Q, T) = ∩ { Q(I) | I ∈ rep(T) }``

two ways:

* :func:`certain_answers_naive` / :func:`possible_answers_naive` — literal
  world enumeration, usable as a test oracle on small tables (this is the
  same role :mod:`repro.core.bruteforce` plays for the CP queries);
* :func:`certain_answers_select_project` — the classic tractable evaluation
  for select-project queries over a single Codd table: because every NULL
  variable appears in exactly one cell, rows are independent, and a constant
  tuple is certain iff **some row yields it under every valuation of that
  row's own variables**. The per-row check enumerates only the row-local
  domain product (the paper's ``M``-bounded candidate sets), never the
  global ``M^n`` world set.

:func:`certain_answers` dispatches: the tractable path when the query shape
allows it, the naive path (with a world-count guard) otherwise.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.codd.algebra import Project, Query, Rename, Scan, Select, evaluate
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation

__all__ = [
    "certain_answers",
    "certain_answers_database",
    "certain_answers_naive",
    "certain_answers_select_project",
    "possible_answers",
    "possible_answers_database",
    "possible_answers_naive",
]

#: Refuse naive enumeration beyond this many worlds.
MAX_NAIVE_WORLDS = 1_000_000


# ----------------------------------------------------------------------
# Naive oracle: enumerate every world
# ----------------------------------------------------------------------
def _check_enumerable(table: CoddTable) -> None:
    n = table.n_worlds()
    if n > MAX_NAIVE_WORLDS:
        raise ValueError(
            f"table has {n} possible worlds, above the naive-enumeration cap "
            f"{MAX_NAIVE_WORLDS}; use the tractable select-project evaluation"
        )


def certain_answers_naive(query: Query, table: CoddTable, name: str = "T") -> Relation:
    """``sure(Q, T)`` by intersecting ``Q`` over every possible world.

    ``name`` is the relation name the query's :class:`Scan` nodes refer to.
    """
    _check_enumerable(table)
    result: Relation | None = None
    for world in table.possible_worlds():
        answer = evaluate(query, {name: world})
        if result is None:
            result = answer
        else:
            result = result.with_rows(result.rows & answer.rows)
        if not result.rows:
            break  # the intersection can only shrink
    assert result is not None  # at least one world always exists
    return result


def possible_answers_naive(query: Query, table: CoddTable, name: str = "T") -> Relation:
    """The union counterpart: tuples appearing in *some* world's answer."""
    _check_enumerable(table)
    result: Relation | None = None
    for world in table.possible_worlds():
        answer = evaluate(query, {name: world})
        result = answer if result is None else result.with_rows(result.rows | answer.rows)
    assert result is not None
    return result


# ----------------------------------------------------------------------
# Multi-table databases (worlds are products of per-table worlds)
# ----------------------------------------------------------------------
def _iter_database_worlds(database: dict[str, CoddTable]):
    names = sorted(database)
    world_iters = [list(database[name].possible_worlds()) for name in names]
    for combo in itertools.product(*world_iters):
        yield dict(zip(names, combo))


def _check_database_enumerable(database: dict[str, CoddTable]) -> None:
    total = 1
    for table in database.values():
        total *= table.n_worlds()
    if total > MAX_NAIVE_WORLDS:
        raise ValueError(
            f"database has {total} possible worlds, above the naive-enumeration "
            f"cap {MAX_NAIVE_WORLDS}"
        )


def certain_answers_database(query: Query, database: dict[str, CoddTable]) -> Relation:
    """``sure(Q, DB)`` over several Codd tables (e.g. a join across two).

    Worlds of the database are the products of each table's worlds (tables
    are independent); answers certain in every combination are returned.
    Naive enumeration with the usual world-count guard.
    """
    _check_database_enumerable(database)
    result: Relation | None = None
    for world in _iter_database_worlds(database):
        answer = evaluate(query, world)
        result = answer if result is None else result.with_rows(result.rows & answer.rows)
        if not result.rows:
            break
    assert result is not None
    return result


def possible_answers_database(query: Query, database: dict[str, CoddTable]) -> Relation:
    """Union counterpart of :func:`certain_answers_database`."""
    _check_database_enumerable(database)
    result: Relation | None = None
    for world in _iter_database_worlds(database):
        answer = evaluate(query, world)
        result = answer if result is None else result.with_rows(result.rows | answer.rows)
    assert result is not None
    return result


# ----------------------------------------------------------------------
# Tractable select-project evaluation
# ----------------------------------------------------------------------
def _unwrap_select_project(
    query: Query,
) -> tuple[Select | None, tuple[str, ...] | None, dict[str, str]] | None:
    """Decompose ``π?(σ?(ρ?(Scan)))`` or return None if the shape differs.

    Returns ``(select_node, projected_attributes, rename_mapping)``; any of
    the first two may be absent.
    """
    project: tuple[str, ...] | None = None
    if isinstance(query, Project):
        project = query.attributes
        query = query.child
    select: Select | None = None
    if isinstance(query, Select):
        select = query
        query = query.child
    rename: dict[str, str] = {}
    if isinstance(query, Rename):
        rename = dict(query.mapping)
        query = query.child
    if isinstance(query, Scan):
        return select, project, rename
    return None


def _row_local_valuations(row: tuple[Any, ...]):
    """All completions of one row, enumerating only its own NULL domains."""
    null_cols = [c for c, cell in enumerate(row) if isinstance(cell, Null)]
    domains = [row[c].domain for c in null_cols]
    for combo in itertools.product(*domains):
        cells = list(row)
        for c, value in zip(null_cols, combo):
            cells[c] = value
        yield tuple(cells)


def certain_answers_select_project(query: Query, table: CoddTable) -> Relation:
    """Certain answers for a select-project(-rename) query over one Codd table.

    Correctness argument (rows independent because every variable appears in
    one cell): a constant tuple ``u`` is in ``Q(I)`` for every world ``I``
    iff some row produces ``u`` under **all** of its own completions — if
    every row had a failing completion, combining those completions would
    build a world whose answer misses ``u``.
    """
    shape = _unwrap_select_project(query)
    if shape is None:
        raise ValueError(
            "query is not of select-project(-rename) shape over a single Scan; "
            "use certain_answers() for the general (naive) path"
        )
    select, project, rename = shape
    schema = tuple(rename.get(a, a) for a in table.schema)
    out_schema = project if project is not None else schema
    out_indices = [schema.index(a) for a in out_schema]

    certain_rows: set[tuple[Any, ...]] = set()
    for row in table.rows:
        completions = iter(_row_local_valuations(row))
        first = next(completions)
        if select is not None and not select.predicate.holds(schema, first):
            continue
        candidate = tuple(first[i] for i in out_indices)
        ok = True
        for completion in completions:
            if select is not None and not select.predicate.holds(schema, completion):
                ok = False
                break
            if tuple(completion[i] for i in out_indices) != candidate:
                ok = False
                break
        if ok:
            certain_rows.add(candidate)
    return Relation(out_schema, certain_rows)


def possible_answers_select_project(query: Query, table: CoddTable) -> Relation:
    """Possible answers for the same query fragment: some row, some completion."""
    shape = _unwrap_select_project(query)
    if shape is None:
        raise ValueError(
            "query is not of select-project(-rename) shape over a single Scan; "
            "use possible_answers() for the general (naive) path"
        )
    select, project, rename = shape
    schema = tuple(rename.get(a, a) for a in table.schema)
    out_schema = project if project is not None else schema
    out_indices = [schema.index(a) for a in out_schema]

    possible_rows: set[tuple[Any, ...]] = set()
    for row in table.rows:
        for completion in _row_local_valuations(row):
            if select is None or select.predicate.holds(schema, completion):
                possible_rows.add(tuple(completion[i] for i in out_indices))
    return Relation(out_schema, possible_rows)


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def certain_answers(query: Query, table: CoddTable, name: str = "T") -> Relation:
    """``sure(Q, T)``: tractable path when possible, naive enumeration otherwise."""
    if _unwrap_select_project(query) is not None:
        return certain_answers_select_project(query, table)
    return certain_answers_naive(query, table, name=name)


def possible_answers(query: Query, table: CoddTable, name: str = "T") -> Relation:
    """Possible answers: tractable path when possible, naive enumeration otherwise."""
    if _unwrap_select_project(query) is not None:
        return possible_answers_select_project(query, table)
    return possible_answers_naive(query, table, name=name)
