"""A small relational-algebra AST and evaluator over complete relations.

The AST is deliberately analysable rather than opaque: predicates are built
from :class:`Attribute`, :class:`Literal` and :class:`Comparison` nodes
combined with :class:`Conjunction` / :class:`Disjunction` / :class:`Negation`.
This lets :mod:`repro.codd.certain` evaluate the same predicate under
three-valued logic over incomplete cells, and lets :mod:`repro.codd.ctable`
propagate predicates into row conditions.

Queries are trees of :class:`Scan`, :class:`Select`, :class:`Project`,
:class:`Join`, :class:`Union`, :class:`Difference`, :class:`Rename` and
:class:`Aggregate` nodes; :func:`evaluate` runs a query against a database,
a mapping from relation name to :class:`~repro.codd.relation.Relation`.

:class:`Aggregate` gives the algebra SUMMARIZE-style grouping: ``GROUP BY``
attributes plus ``COUNT``/``SUM``/``MAX``/``MIN`` over the *set* of child
tuples (set semantics: duplicate child tuples collapse before aggregation,
so the classical evaluator stays the single source of truth for what every
possible world computes).
"""

from __future__ import annotations

import math

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.codd.relation import Relation

__all__ = [
    "Attribute",
    "Literal",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "Negation",
    "Predicate",
    "Term",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Difference",
    "Rename",
    "Aggregate",
    "AggregateSpec",
    "AGGREGATE_FUNCS",
    "aggregate_column",
    "Query",
    "evaluate",
]


# ----------------------------------------------------------------------
# Terms: the leaves of a predicate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Attribute:
    """A reference to an attribute of the input schema."""

    name: str

    def resolve(self, schema: Sequence[str], row: Sequence[Any]) -> Any:
        try:
            return row[list(schema).index(self.name)]
        except ValueError:
            raise KeyError(f"attribute {self.name!r} not in schema {tuple(schema)}") from None


@dataclass(frozen=True)
class Literal:
    """A constant value."""

    value: Any

    def resolve(self, schema: Sequence[str], row: Sequence[Any]) -> Any:
        return self.value


Term = Attribute | Literal

_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """``left op right`` where ``op`` is one of ``== != < <= > >=``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return bool(
            _COMPARATORS[self.op](
                self.left.resolve(schema, row), self.right.resolve(schema, row)
            )
        )


@dataclass(frozen=True)
class Conjunction:
    """Logical AND of sub-predicates."""

    parts: tuple["Predicate", ...]

    def __init__(self, *parts: "Predicate") -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return all(p.holds(schema, row) for p in self.parts)


@dataclass(frozen=True)
class Disjunction:
    """Logical OR of sub-predicates."""

    parts: tuple["Predicate", ...]

    def __init__(self, *parts: "Predicate") -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return any(p.holds(schema, row) for p in self.parts)


@dataclass(frozen=True)
class Negation:
    """Logical NOT of a sub-predicate."""

    part: "Predicate"

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return not self.part.holds(schema, row)


Predicate = Comparison | Conjunction | Disjunction | Negation


def predicate_attributes(pred: Predicate) -> set[str]:
    """All attribute names a predicate reads (used by the certain-answer rules)."""
    if isinstance(pred, Comparison):
        names = set()
        for term in (pred.left, pred.right):
            if isinstance(term, Attribute):
                names.add(term.name)
        return names
    if isinstance(pred, (Conjunction, Disjunction)):
        out: set[str] = set()
        for part in pred.parts:
            out |= predicate_attributes(part)
        return out
    if isinstance(pred, Negation):
        return predicate_attributes(pred.part)
    raise TypeError(f"not a predicate: {pred!r}")


# ----------------------------------------------------------------------
# Query nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scan:
    """A base-relation reference by name."""

    relation: str


@dataclass(frozen=True)
class Select:
    """``σ_pred(child)``."""

    child: "Query"
    predicate: Predicate


@dataclass(frozen=True)
class Project:
    """``π_attributes(child)``."""

    child: "Query"
    attributes: tuple[str, ...]

    def __init__(self, child: "Query", attributes: Sequence[str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "attributes", tuple(attributes))


@dataclass(frozen=True)
class Join:
    """Natural join of two sub-queries."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class Union:
    """Set union of two union-compatible sub-queries."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class Difference:
    """Set difference ``left - right``."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class Rename:
    """Attribute renaming via a mapping (missing attributes kept)."""

    child: "Query"
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: "Query", mapping: Mapping[str, str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))


#: Aggregate functions understood by :class:`AggregateSpec`.
AGGREGATE_FUNCS = ("count", "sum", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a SUMMARIZE: ``func(attribute) AS alias``.

    ``attribute`` is ``None`` only for ``COUNT(*)``.  ``COUNT(attribute)``
    counts non-``None`` values, matching the SQL convention (``None`` cells
    only ever arise from aggregates over empty value sets, never from base
    tables — the wire layer rejects them there).
    """

    func: str
    attribute: str | None
    alias: str

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.func != "count" and self.attribute is None:
            raise ValueError(f"{self.func}(*) is not defined; name an attribute")
        if not self.alias:
            raise ValueError("an aggregate needs a non-empty output alias")


@dataclass(frozen=True)
class Aggregate:
    """``GROUP BY group_by`` + aggregate list over the child's tuple set.

    Output schema is ``group_by + (spec.alias, ...)``.  With an empty
    ``group_by`` this is a global aggregate and always yields exactly one
    row (``COUNT`` 0 and ``None`` for the value aggregates on empty input),
    matching SQL.
    """

    child: "Query"
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __init__(
        self,
        child: "Query",
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        if not self.aggregates:
            raise ValueError("Aggregate needs at least one aggregate (use Project to group-only)")
        out = self.group_by + tuple(spec.alias for spec in self.aggregates)
        if len(set(out)) != len(out):
            raise ValueError(f"duplicate output names in aggregate schema {out}")


Query = Scan | Select | Project | Join | Union | Difference | Rename | Aggregate


def is_positive(query: Query) -> bool:
    """True iff the query uses no ``Difference`` and no ``Negation``.

    Positive (monotone) queries are the fragment for which possible-world
    reasoning behaves monotonically; the tractable certain-answer rules in
    :mod:`repro.codd.certain` require this.
    """
    if isinstance(query, Scan):
        return True
    if isinstance(query, Select):
        return _predicate_positive(query.predicate) and is_positive(query.child)
    if isinstance(query, (Project, Rename)):
        return is_positive(query.child)
    if isinstance(query, (Join, Union)):
        return is_positive(query.left) and is_positive(query.right)
    if isinstance(query, Difference):
        return False
    if isinstance(query, Aggregate):
        # COUNT/SUM shrink when rows are added to a group, so aggregates
        # are not monotone even over positive children.
        return False
    raise TypeError(f"not a query: {query!r}")


def _predicate_positive(pred: Predicate) -> bool:
    if isinstance(pred, Comparison):
        return True
    if isinstance(pred, (Conjunction, Disjunction)):
        return all(_predicate_positive(p) for p in pred.parts)
    if isinstance(pred, Negation):
        return False
    raise TypeError(f"not a predicate: {pred!r}")


# ----------------------------------------------------------------------
# Evaluation over complete relations
# ----------------------------------------------------------------------
def evaluate(query: Query, database: Mapping[str, Relation]) -> Relation:
    """Evaluate ``query`` against a database of complete relations."""
    if isinstance(query, Scan):
        try:
            return database[query.relation]
        except KeyError:
            raise KeyError(
                f"relation {query.relation!r} not in database {sorted(database)}"
            ) from None
    if isinstance(query, Select):
        child = evaluate(query.child, database)
        return child.with_rows(
            row for row in child if query.predicate.holds(child.schema, row)
        )
    if isinstance(query, Project):
        return evaluate(query.child, database).project(query.attributes)
    if isinstance(query, Join):
        return evaluate(query.left, database).natural_join(evaluate(query.right, database))
    if isinstance(query, Union):
        return evaluate(query.left, database).union(evaluate(query.right, database))
    if isinstance(query, Difference):
        return evaluate(query.left, database).difference(evaluate(query.right, database))
    if isinstance(query, Rename):
        return evaluate(query.child, database).renamed(dict(query.mapping))
    if isinstance(query, Aggregate):
        return _evaluate_aggregate(query, evaluate(query.child, database))
    raise TypeError(f"not a query: {query!r}")


# ----------------------------------------------------------------------
# Aggregation over a complete relation
# ----------------------------------------------------------------------
def aggregate_column(func: str, values: Sequence[Any]) -> Any:
    """Apply one aggregate function to the non-``None`` values of a group.

    Deterministic regardless of input order: integer sums use exact integer
    arithmetic, and any float in the group routes the whole sum through
    ``math.fsum`` over ``float()``-converted values (correctly rounded, so
    order-insensitive).  This pins down the exact bits every evaluation
    path — naive world enumeration, rowwise, vectorized — must reproduce.
    """
    present = [v for v in values if v is not None]
    if func == "count":
        return len(present)
    if not present:
        return None
    if func == "min":
        return min(present)
    if func == "max":
        return max(present)
    if func == "sum":
        if all(isinstance(v, int) for v in present):  # bool is an int subclass
            return sum(int(v) for v in present)
        return math.fsum(float(v) for v in present)
    raise ValueError(f"unknown aggregate function {func!r}")


def _evaluate_aggregate(query: Aggregate, child: Relation) -> Relation:
    schema = child.schema
    key_idx = [child.attribute_index(a) for a in query.group_by]
    spec_idx = [
        None if spec.attribute is None else child.attribute_index(spec.attribute)
        for spec in query.aggregates
    ]
    groups: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
    if not query.group_by:
        groups[()] = []  # a global aggregate has one group even on empty input
    for row in child:
        groups.setdefault(tuple(row[i] for i in key_idx), []).append(row)
    out_schema = query.group_by + tuple(spec.alias for spec in query.aggregates)
    out_rows = []
    for key, rows in groups.items():
        aggs = tuple(
            aggregate_column(
                spec.func,
                [True for _ in rows] if idx is None else [row[idx] for row in rows],
            )
            for spec, idx in zip(query.aggregates, spec_idx)
        )
        out_rows.append(key + aggs)
    return Relation(out_schema, out_rows)
