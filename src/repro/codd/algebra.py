"""A small relational-algebra AST and evaluator over complete relations.

The AST is deliberately analysable rather than opaque: predicates are built
from :class:`Attribute`, :class:`Literal` and :class:`Comparison` nodes
combined with :class:`Conjunction` / :class:`Disjunction` / :class:`Negation`.
This lets :mod:`repro.codd.certain` evaluate the same predicate under
three-valued logic over incomplete cells, and lets :mod:`repro.codd.ctable`
propagate predicates into row conditions.

Queries are trees of :class:`Scan`, :class:`Select`, :class:`Project`,
:class:`Join`, :class:`Union`, :class:`Difference` and :class:`Rename`
nodes; :func:`evaluate` runs a query against a database, a mapping from
relation name to :class:`~repro.codd.relation.Relation`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.codd.relation import Relation

__all__ = [
    "Attribute",
    "Literal",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "Negation",
    "Predicate",
    "Term",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Difference",
    "Rename",
    "Query",
    "evaluate",
]


# ----------------------------------------------------------------------
# Terms: the leaves of a predicate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Attribute:
    """A reference to an attribute of the input schema."""

    name: str

    def resolve(self, schema: Sequence[str], row: Sequence[Any]) -> Any:
        try:
            return row[list(schema).index(self.name)]
        except ValueError:
            raise KeyError(f"attribute {self.name!r} not in schema {tuple(schema)}") from None


@dataclass(frozen=True)
class Literal:
    """A constant value."""

    value: Any

    def resolve(self, schema: Sequence[str], row: Sequence[Any]) -> Any:
        return self.value


Term = Attribute | Literal

_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """``left op right`` where ``op`` is one of ``== != < <= > >=``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return bool(
            _COMPARATORS[self.op](
                self.left.resolve(schema, row), self.right.resolve(schema, row)
            )
        )


@dataclass(frozen=True)
class Conjunction:
    """Logical AND of sub-predicates."""

    parts: tuple["Predicate", ...]

    def __init__(self, *parts: "Predicate") -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return all(p.holds(schema, row) for p in self.parts)


@dataclass(frozen=True)
class Disjunction:
    """Logical OR of sub-predicates."""

    parts: tuple["Predicate", ...]

    def __init__(self, *parts: "Predicate") -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return any(p.holds(schema, row) for p in self.parts)


@dataclass(frozen=True)
class Negation:
    """Logical NOT of a sub-predicate."""

    part: "Predicate"

    def holds(self, schema: Sequence[str], row: Sequence[Any]) -> bool:
        return not self.part.holds(schema, row)


Predicate = Comparison | Conjunction | Disjunction | Negation


def predicate_attributes(pred: Predicate) -> set[str]:
    """All attribute names a predicate reads (used by the certain-answer rules)."""
    if isinstance(pred, Comparison):
        names = set()
        for term in (pred.left, pred.right):
            if isinstance(term, Attribute):
                names.add(term.name)
        return names
    if isinstance(pred, (Conjunction, Disjunction)):
        out: set[str] = set()
        for part in pred.parts:
            out |= predicate_attributes(part)
        return out
    if isinstance(pred, Negation):
        return predicate_attributes(pred.part)
    raise TypeError(f"not a predicate: {pred!r}")


# ----------------------------------------------------------------------
# Query nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scan:
    """A base-relation reference by name."""

    relation: str


@dataclass(frozen=True)
class Select:
    """``σ_pred(child)``."""

    child: "Query"
    predicate: Predicate


@dataclass(frozen=True)
class Project:
    """``π_attributes(child)``."""

    child: "Query"
    attributes: tuple[str, ...]

    def __init__(self, child: "Query", attributes: Sequence[str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "attributes", tuple(attributes))


@dataclass(frozen=True)
class Join:
    """Natural join of two sub-queries."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class Union:
    """Set union of two union-compatible sub-queries."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class Difference:
    """Set difference ``left - right``."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class Rename:
    """Attribute renaming via a mapping (missing attributes kept)."""

    child: "Query"
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: "Query", mapping: Mapping[str, str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))


Query = Scan | Select | Project | Join | Union | Difference | Rename


def is_positive(query: Query) -> bool:
    """True iff the query uses no ``Difference`` and no ``Negation``.

    Positive (monotone) queries are the fragment for which possible-world
    reasoning behaves monotonically; the tractable certain-answer rules in
    :mod:`repro.codd.certain` require this.
    """
    if isinstance(query, Scan):
        return True
    if isinstance(query, Select):
        return _predicate_positive(query.predicate) and is_positive(query.child)
    if isinstance(query, (Project, Rename)):
        return is_positive(query.child)
    if isinstance(query, (Join, Union)):
        return is_positive(query.left) and is_positive(query.right)
    if isinstance(query, Difference):
        return False
    raise TypeError(f"not a query: {query!r}")


def _predicate_positive(pred: Predicate) -> bool:
    if isinstance(pred, Comparison):
        return True
    if isinstance(pred, (Conjunction, Disjunction)):
        return all(_predicate_positive(p) for p in pred.parts)
    if isinstance(pred, Negation):
        return False
    raise TypeError(f"not a predicate: {pred!r}")


# ----------------------------------------------------------------------
# Evaluation over complete relations
# ----------------------------------------------------------------------
def evaluate(query: Query, database: Mapping[str, Relation]) -> Relation:
    """Evaluate ``query`` against a database of complete relations."""
    if isinstance(query, Scan):
        try:
            return database[query.relation]
        except KeyError:
            raise KeyError(
                f"relation {query.relation!r} not in database {sorted(database)}"
            ) from None
    if isinstance(query, Select):
        child = evaluate(query.child, database)
        return child.with_rows(
            row for row in child if query.predicate.holds(child.schema, row)
        )
    if isinstance(query, Project):
        return evaluate(query.child, database).project(query.attributes)
    if isinstance(query, Join):
        return evaluate(query.left, database).natural_join(evaluate(query.right, database))
    if isinstance(query, Union):
        return evaluate(query.left, database).union(evaluate(query.right, database))
    if isinstance(query, Difference):
        return evaluate(query.left, database).difference(evaluate(query.right, database))
    if isinstance(query, Rename):
        return evaluate(query.child, database).renamed(dict(query.mapping))
    raise TypeError(f"not a query: {query!r}")
